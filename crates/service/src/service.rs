//! The query service: a bounded worker pool over per-tenant hot-swappable
//! [`EngineSnapshot`]s, with one shared LRU interpretation cache in front.
//!
//! ## Life of a query
//!
//! 1. [`QueryService::query`] resolves the request's tenant (the default
//!    tenant unless [`QueryRequest::tenant`] named another), canonicalizes
//!    the input ([`soda_core::normalize_query`]) and probes the cache under
//!    (normalized query, tenant-folded snapshot fingerprint, page
//!    coordinates).  A hit is answered immediately on the caller's thread —
//!    no queueing, no pipeline.
//! 2. A miss becomes a job in the tenant's queue lane.  Admission control
//!    blocks the submitting thread while the lane is at its per-tenant
//!    quota or the whole queue is at capacity — backpressure instead of
//!    unbounded memory growth, and no tenant can squat the entire queue.
//! 3. A worker pops the next job round-robin across the tenant lanes, runs
//!    the five-step pipeline via [`EngineSnapshot::search_paged`], stores
//!    the page in the cache and completes the caller's [`JobHandle`] with a
//!    [`QueryResponse`].
//!
//! Concurrent misses on one key are **coalesced**: the first miss enqueues
//! the job and registers it in a pending-jobs map; every further submission
//! of the same key while that job is in flight just attaches a waiter to the
//! pending entry instead of enqueuing a duplicate, so N concurrent identical
//! cold queries execute the pipeline exactly once.  The cache probe, the
//! pending check and the completion hand-off happen under one lock, which is
//! never held across the pipeline itself.
//!
//! ## Multi-tenant hosting
//!
//! One service hosts many tenants: the boot snapshot is the **default**
//! tenant, and [`QueryService::add_tenant`] registers further warehouses at
//! runtime (each wrapped in its own [`SnapshotHandle`], tracked by the
//! [`TenantRegistry`]).  All tenants share
//! the worker pool, the queue, the cache and the global probe-thread budget
//! ([`soda_core::ProbeBudget`]) — isolation comes from keys and quotas, not
//! duplication:
//!
//! * Cache keys fold the tenant fingerprint into the snapshot fingerprint
//!   ([`soda_core::TenantId::fold`]); the fold is the identity for the
//!   default tenant, so single-tenant deployments keep byte-identical
//!   fingerprints (and persisted cache files) across the upgrade.
//! * The queue keeps one lane per tenant, scanned round-robin, with an
//!   admission quota of `ceil(capacity / tenants)` slots per tenant — a
//!   tenant flooding cold queries saturates its own lane and blocks *its
//!   own* submitters, while other tenants' warm hits (which never queue)
//!   and cold queries proceed.
//! * Mutations are tenant-scoped: [`QueryService::admin`] returns a
//!   [`TenantAdmin`] facade whose `reload` / `rebuild_shards` /
//!   `refresh_graph` / `ingest` / `ingest_owned` / `compact` /
//!   `clear_cache` touch exactly one tenant's snapshot and cached pages.
//!
//! ## Hot snapshot swapping
//!
//! Every submission pins the snapshot that is current *at submission time* —
//! the job carries that `Arc` to the worker, so a concurrent reload never
//! changes what an in-flight query computes; new submissions load the new
//! generation.  The cache key carries the tenant-folded
//! [`EngineSnapshot::cache_fingerprint`] (configuration ⊕ generation
//! vector), which also scopes the coalescing map: a pending cold query keyed
//! against generation G can only ever hand its page to waiters that also
//! pinned G — a post-swap requester computes a different key and recomputes
//! against the new snapshot.  No queries are drained, dropped or errored by
//! a swap.
//!
//! ## Streaming ingestion
//!
//! [`TenantAdmin::ingest`] absorbs a row-level change feed into a new
//! generation of that tenant's snapshot without rebuilding any index
//! partition: the events land in per-shard side logs that every probe
//! merges on the fly.  A background compaction worker (opt-in via
//! [`ServiceConfig::compaction`]) sweeps **every** tenant — nudged by every
//! ingest and on a poll interval — and folds a shard's log into a rebuilt
//! partition once it crosses the policy budget.  Data-only swaps (ingest,
//! shard rebuild, compaction) run a *generation-aware retention* pass over
//! the tenant's cached pages instead of the wholesale purge: pages whose
//! recorded probes provably never consulted a dirty shard are re-keyed to
//! the new fingerprint ([`CacheStats::retained`](crate::CacheStats)),
//! everything else of that tenant's superseded generation is purged.  Other
//! tenants' pages are never touched.
//!
//! Shutdown is graceful: dropping the service stops intake (stopping the
//! compaction worker first), lets the workers drain every queued job
//! (resolving their coalesced waiters), then joins them.
//!
//! ## Durable restart
//!
//! A service started through [`QueryService::recover`] with a
//! [`DurabilityConfig`] survives crashes: every ingest appends the feed to
//! an on-disk [`FeedJournal`] *before* the engine absorbs it (write-ahead),
//! and every compaction / swap writes a [`Checkpoint`] that folds the
//! replay prefix away, so the journal stays bounded.  On the next boot,
//! `recover` replays the journal — checkpoint first, then the feeds
//! appended after it — and restores the recorded generation stamps, so the
//! recovered engine serves **byte-identical pages under the same cache
//! fingerprints** as the instance that died.  A torn tail (crash
//! mid-append) is truncated; a journal written under a different engine
//! configuration is a hard error.
//!
//! Tenants registered on a durable service get their **own** journal under
//! `tenants/<name>-<fingerprint>/` ([`soda_journal::tenant_journal_dir`]),
//! header-stamped with the tenant fingerprint so one tenant's history can
//! never replay into another's snapshot; [`QueryService::add_tenant`]
//! replays it against the snapshot the caller hands in.
//!
//! On a *graceful* drain (dropping the service) the warm entries of the
//! interpretation cache are additionally serialized to a page-cache file,
//! which `recover` reloads — so the first repeated queries after a restart
//! are answered at warm-hit latency instead of re-running the pipeline.  The
//! cache file is best-effort: a stale, torn or foreign file is ignored
//! (counted in [`DurabilityMetrics::cache_pages_stale`]), never an error.
//!
//! One caveat: the metadata **graph is not journaled** — `recover` (and
//! `add_tenant`) take the graph as part of the snapshot, so after a
//! [`TenantAdmin::refresh_graph`] the operator must hand the refreshed
//! graph to the next recovery.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use soda_core::codec::{decode_page, decode_probe_dep, encode_page, encode_probe_dep};
use soda_core::{
    normalize_query, ChangeFeed, CompactionPolicy, Database, EngineSnapshot, MetaGraph, ProbeDep,
    ProbeRecorder, ResultPage, RetentionGate, SnapshotHandle, SodaConfig, SodaError, StepTimings,
    TenantId,
};
use soda_journal::frame::{read_frame_file, write_frame_file};
use soda_journal::{journal_path, tenant_journal_dir, Checkpoint, FeedJournal, FsyncPolicy};
use soda_relation::codec::{CodecError, CodecResult, Decoder, Encoder};
use soda_trace::prom::{MetricKind, PromWriter};
use soda_trace::{
    names, BoundedLog, CollectingSink, HeadDecision, NoopSink, OpEvent, QueryTrace, SampleReason,
    Sampler, SpanId, TraceId, TraceSink, TraceValue,
};

use crate::cache::{CacheKey, LruCache};
use crate::metrics::{
    DurabilityMetrics, IngestMetrics, LatencyRecorder, LatencySummary, ServiceMetrics,
    TenantMetrics,
};
use crate::slo::{
    alert_state, availability_burn_rate, latency_burn_rate, AlertState, BurnAlert, SloConfig,
};
use crate::tenants::{TenantAdmin, TenantRegistry, TenantState};

/// Magic of the persistent page-cache file (the journal has its own,
/// [`soda_journal::JOURNAL_MAGIC`]).  `2` is the format version — bumped
/// with the frame-file header when it grew the tenant-fingerprint field;
/// version-`1` cache files written before tenancy still load (the frame
/// reader accepts both layouts).
const CACHE_MAGIC: [u8; 8] = *b"SODACSH2";

/// File name of the persistent page cache under the durability directory.
const CACHE_FILE: &str = "pages.cache";

/// Tuning knobs of the service.
///
/// Construct fluently from the defaults — the builder methods are consuming
/// setters over the same public fields, so struct-literal construction
/// keeps working and `Default` semantics are unchanged:
///
/// ```
/// use soda_service::ServiceConfig;
/// let config = ServiceConfig::default().workers(2).queue_capacity(64);
/// assert_eq!(config.workers, 2);
/// assert_eq!(config.cache_capacity, ServiceConfig::default().cache_capacity);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads executing the pipeline.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before submissions block.
    pub queue_capacity: usize,
    /// Maximum result pages held by the interpretation cache.
    pub cache_capacity: usize,
    /// When set, a background compaction worker folds ingestion side logs
    /// into rebuilt index partitions once they cross the policy's budget
    /// (`None` — the default — leaves compaction to explicit
    /// [`TenantAdmin::compact`] calls).
    pub compaction: Option<CompactionConfig>,
    /// When set, every executed query is traced through a
    /// [`CollectingSink`] and a query whose **end-to-end** latency (queue
    /// wait included) reaches the threshold lands its full span tree in the
    /// slow-query log ([`QueryService::slow_queries`]).  `None` — the
    /// default — keeps the zero-cost [`NoopSink`] on the worker path.
    pub slow_query_threshold: Option<Duration>,
    /// Capacity of the slow-query log (oldest captures are evicted).
    pub slow_query_log: usize,
    /// Capacity of the operational-event log
    /// ([`QueryService::events`]: swaps, ingests, compactions,
    /// checkpoints, recoveries, slow queries).
    pub event_log: usize,
    /// When set, always-on adaptive trace sampling: every tenant draws
    /// deterministic head-sampling decisions at the configured rate, tail
    /// rules retain slow and anomalous queries regardless of the draw, and
    /// retained span trees land in per-tenant bounded rings
    /// ([`QueryService::sampled_traces`]) with their trace ids attached to
    /// the latency histograms as OpenMetrics exemplars.  `None` — the
    /// default — keeps sampling entirely off the hot path.
    pub sampling: Option<SamplingConfig>,
    /// When set, per-tenant SLO burn-rate tracking: every completed query
    /// lands in a rolling multi-window ring, and
    /// [`QueryService::alerts`] / the `soda_slo_*` families surface the
    /// fast- and slow-window burn rates against the declared objectives.
    pub slo: Option<SloConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 256,
            cache_capacity: 1024,
            compaction: None,
            slow_query_threshold: None,
            slow_query_log: 32,
            event_log: 256,
            sampling: None,
            slo: None,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker-pool size.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the queue capacity.
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets the interpretation-cache capacity.
    pub fn cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Enables the background compaction worker.
    pub fn compaction(mut self, compaction: CompactionConfig) -> Self {
        self.compaction = Some(compaction);
        self
    }

    /// Enables slow-query capture past `threshold`.
    pub fn slow_query_threshold(mut self, threshold: Duration) -> Self {
        self.slow_query_threshold = Some(threshold);
        self
    }

    /// Sets the slow-query log capacity.
    pub fn slow_query_log(mut self, slow_query_log: usize) -> Self {
        self.slow_query_log = slow_query_log;
        self
    }

    /// Sets the operational-event log capacity.
    pub fn event_log(mut self, event_log: usize) -> Self {
        self.event_log = event_log;
        self
    }

    /// Enables always-on adaptive trace sampling.
    pub fn sampling(mut self, sampling: SamplingConfig) -> Self {
        self.sampling = Some(sampling);
        self
    }

    /// Enables per-tenant SLO burn-rate tracking.
    pub fn slo(mut self, slo: SloConfig) -> Self {
        self.slo = Some(slo);
        self
    }
}

/// Configuration of always-on adaptive trace sampling
/// ([`ServiceConfig::sampling`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingConfig {
    /// Head-sampling probability in `[0, 1]`: the fraction of queries whose
    /// full span tree is captured regardless of latency.
    pub rate: f64,
    /// Seed of the deterministic decision sequence.  Each tenant's sampler
    /// is seeded with `seed ^ tenant_fingerprint`, so co-hosted tenants draw
    /// independent — but individually reproducible — sequences.
    pub seed: u64,
    /// Capacity of each tenant's sampled-trace ring
    /// ([`QueryService::sampled_traces`]).
    pub trace_log: usize,
    /// Tail rule: retain a query whose end-to-end latency exceeds this
    /// multiple of the tenant's running mean (`None` disables the anomaly
    /// rule; the slow rule always follows
    /// [`ServiceConfig::slow_query_threshold`]).
    pub anomaly_factor: Option<f64>,
    /// Completed queries the anomaly rule waits for before trusting the
    /// running mean.
    pub anomaly_min_samples: u64,
    /// Per-tenant head-rate overrides (tenant name → rate); tenants without
    /// an override use [`rate`](Self::rate).
    pub tenant_rates: Vec<(String, f64)>,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            rate: 0.01,
            seed: 0x50DA,
            trace_log: 32,
            anomaly_factor: None,
            anomaly_min_samples: 32,
            tenant_rates: Vec::new(),
        }
    }
}

impl SamplingConfig {
    /// Sets the head-sampling rate.
    pub fn rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Sets the decision-sequence seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-tenant sampled-trace ring capacity.
    pub fn trace_log(mut self, trace_log: usize) -> Self {
        self.trace_log = trace_log;
        self
    }

    /// Enables the tail anomaly rule at `factor` times the running mean.
    pub fn anomaly_factor(mut self, factor: f64) -> Self {
        self.anomaly_factor = Some(factor);
        self
    }

    /// Sets the anomaly rule's warm-up sample count.
    pub fn anomaly_min_samples(mut self, samples: u64) -> Self {
        self.anomaly_min_samples = samples;
        self
    }

    /// Overrides the head-sampling rate for one tenant.
    pub fn tenant_rate(mut self, tenant: impl Into<String>, rate: f64) -> Self {
        self.tenant_rates.push((tenant.into(), rate));
        self
    }
}

/// One retained trace: a query the adaptive sampler decided to keep, with
/// the full span tree of what served it (a pipeline execution, or a
/// synthesized `cache_hit` root for warm hits).  Retained per tenant in a
/// bounded ring ([`QueryService::sampled_traces`]).
#[derive(Debug, Clone)]
pub struct SampledTrace {
    /// The tenant the query belonged to.
    pub tenant: TenantId,
    /// The sampler-assigned trace id (16 lowercase hex digits) — the same
    /// id the latency histograms carry as an OpenMetrics exemplar.
    pub trace_id: String,
    /// The business user's input text, verbatim.
    pub input: String,
    /// Why the trace was kept: `"head"`, `"tail_slow"` or `"tail_anomaly"`.
    pub reason: &'static str,
    /// End-to-end latency (submission to completion).
    pub total: Duration,
    /// The span tree.
    pub trace: QueryTrace,
}

/// Configuration of the background compaction worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionConfig {
    /// The side-log budget past which a shard is folded.
    pub policy: CompactionPolicy,
    /// How often the worker re-checks the budget on its own.  Every
    /// ingest additionally nudges it awake, so a threshold crossing is
    /// acted on promptly even with a long interval.
    pub poll_interval: Duration,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        Self {
            policy: CompactionPolicy::default(),
            poll_interval: Duration::from_millis(250),
        }
    }
}

/// Where and how the service persists its crash-safety state.
///
/// The directory holds the default tenant's two files: `feed.journal` (the
/// write-ahead feed journal, [`soda_journal::journal_path`]) and
/// `pages.cache` (the warm result pages serialized on a graceful drain),
/// plus one `tenants/<name>-<fingerprint>/` journal directory per tenant
/// registered through [`QueryService::add_tenant`].  Pass the same
/// directory to [`QueryService::recover`] on every boot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Directory holding the journal and the page-cache file (created if
    /// missing).
    pub dir: PathBuf,
    /// Whether every journal append forces the bytes to disk before the
    /// engine absorbs the feed.  [`FsyncPolicy::Always`] (the default) makes
    /// acknowledged ingests survive power loss; [`FsyncPolicy::Never`]
    /// trades that for append latency.
    pub fsync: FsyncPolicy,
    /// Whether a graceful drain serializes the warm cache pages to disk
    /// (and recovery reloads them).  Default true.
    pub persist_cache: bool,
}

impl DurabilityConfig {
    /// Durability under `dir` with the safe defaults: fsync on every append,
    /// cache persistence on.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            persist_cache: true,
        }
    }
}

/// What [`QueryService::recover`] found and rebuilt, for operator logging.
/// The same figures stay observable afterwards via
/// [`ServiceMetrics::durability`](crate::ServiceMetrics).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// True when no journal existed and a fresh one was created (first boot).
    pub journal_created: bool,
    /// True when the journal began with a checkpoint whose table contents
    /// and generation stamps were applied over the base database.
    pub checkpoint_applied: bool,
    /// Rows the applied checkpoint carried.
    pub checkpoint_rows: usize,
    /// Journaled feeds re-absorbed, in append order.
    pub replayed_feeds: u64,
    /// Journaled feeds the engine rejected again (deterministically — they
    /// were rejected when first ingested, too).
    pub rejected_feeds: u64,
    /// Bytes of torn or corrupt journal tail truncated before replay.
    pub truncated_bytes: u64,
    /// Persisted pages restored into the warm cache.
    pub cache_pages_restored: u64,
    /// Persisted pages discarded as stale (fingerprint mismatch or
    /// undecodable entry).
    pub cache_pages_stale: u64,
}

/// The journal, the dirty-table ledger and the recovery counters of one
/// tenant, held under one mutex on its
/// [`TenantState`](crate::tenants::TenantState) (lock order: tenant swap
/// lock → durability → store; `metrics()` takes it alone).
pub(crate) struct DurabilityState {
    pub(crate) journal: FeedJournal,
    /// Where the warm pages go on a graceful drain.
    pub(crate) cache_path: PathBuf,
    pub(crate) persist_cache: bool,
    /// Stamped into both file headers; [`QueryService::recover`] refuses a
    /// journal carrying a different one.
    pub(crate) config_fingerprint: u64,
    /// Every table a journaled feed (or an applied checkpoint) has touched
    /// since the base database.  A checkpoint must re-record **all** of them
    /// — recovery applies it over the unchanged base database, so a table
    /// omitted from one checkpoint would silently revert to its base
    /// content.  The set therefore only ever grows.
    pub(crate) dirty_tables: BTreeSet<String>,
    pub(crate) journal_appends: u64,
    pub(crate) checkpoints: u64,
    pub(crate) checkpoint_failures: u64,
    pub(crate) replayed_feeds: u64,
    pub(crate) rejected_replays: u64,
    pub(crate) truncated_bytes: u64,
    pub(crate) cache_pages_restored: u64,
    pub(crate) cache_pages_stale: u64,
}

/// Serializes one warm cache entry for the page-cache file: the full key
/// (the fingerprint included — recovery filters on it) plus the page and the
/// retention evidence, so a restored entry behaves exactly like the original
/// across later data-only swaps.
fn encode_cache_entry(key: &CacheKey, entry: &CachedPage) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_str(&key.normalized);
    enc.put_u64(key.snapshot_fingerprint);
    enc.put_usize(key.page);
    enc.put_usize(key.page_size);
    encode_page(&mut enc, &entry.page);
    enc.put_u64(entry.touched_mask);
    enc.put_bool(entry.touched_overflow);
    enc.put_usize(entry.deps.len());
    for dep in entry.deps.iter() {
        encode_probe_dep(&mut enc, dep);
    }
    enc.into_bytes()
}

/// Inverse of [`encode_cache_entry`]; trailing bytes are an error so a
/// miscounted frame cannot half-decode.
fn decode_cache_entry(bytes: &[u8]) -> CodecResult<(CacheKey, CachedPage)> {
    let mut dec = Decoder::new(bytes);
    let key = CacheKey {
        normalized: dec.get_str()?,
        snapshot_fingerprint: dec.get_u64()?,
        page: dec.get_usize()?,
        page_size: dec.get_usize()?,
    };
    let page = decode_page(&mut dec)?;
    let touched_mask = dec.get_u64()?;
    let touched_overflow = dec.get_bool()?;
    let n = dec.get_usize()?;
    if n > dec.remaining() {
        return Err(CodecError::BadLength);
    }
    let mut deps = Vec::with_capacity(n);
    for _ in 0..n {
        deps.push(decode_probe_dep(&mut dec)?);
    }
    if !dec.is_empty() {
        return Err(CodecError::BadLength);
    }
    Ok((
        key,
        CachedPage {
            page,
            touched_mask,
            touched_overflow,
            deps: Arc::new(deps),
        },
    ))
}

/// One query as submitted by a client — the single request surface of the
/// service.  Build fluently:
///
/// ```no_run
/// use soda_service::QueryRequest;
/// let request = QueryRequest::new("wealthy customers")
///     .page(1)
///     .tenant("acme")
///     .traced();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// The business user's input text.
    pub input: String,
    /// Zero-based page of the ranked result list.
    pub page: usize,
    /// Page size (clamped to at least 1 by the engine).
    pub page_size: usize,
    /// The tenant whose snapshot answers the query (the default tenant
    /// unless [`tenant`](Self::tenant) selected another).
    pub tenant: TenantId,
    /// When true the query executes **traced** on the caller's thread,
    /// bypassing cache, queue and coalescing, and the response carries the
    /// folded span tree ([`QueryResponse::trace`]).
    pub traced: bool,
}

impl QueryRequest {
    /// A request for the first page (size 10, the paper's result page),
    /// against the default tenant, untraced.
    pub fn new(input: impl Into<String>) -> Self {
        Self {
            input: input.into(),
            page: 0,
            page_size: 10,
            tenant: TenantId::default(),
            traced: false,
        }
    }

    /// Selects a page.
    pub fn page(mut self, page: usize) -> Self {
        self.page = page;
        self
    }

    /// Selects a page size.
    pub fn page_size(mut self, page_size: usize) -> Self {
        self.page_size = page_size;
        self
    }

    /// Routes the query to a hosted tenant's snapshot.
    pub fn tenant(mut self, tenant: impl Into<TenantId>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Requests a traced execution: the query runs on the caller's thread —
    /// bypassing the cache, the queue and the coalescing map, so the trace
    /// reflects a full computation — and the response carries the span
    /// tree.  The served page is byte-identical to the untraced answer.
    pub fn traced(mut self) -> Self {
        self.traced = true;
        self
    }
}

/// One answered query, yielded by [`JobHandle::wait`]: the served page
/// plus, for [`traced`](QueryRequest::traced) requests, the folded span
/// tree (the `query` root with the five stage spans and per-shard probe
/// sub-spans underneath).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The served result page.
    pub page: ResultPage,
    /// The span tree — `Some` exactly when the request was traced.
    pub trace: Option<QueryTrace>,
}

impl QueryResponse {
    fn untraced(page: ResultPage) -> Self {
        Self { page, trace: None }
    }
}

/// One result page together with the span tree its traced execution
/// produced, returned by the deprecated [`QueryService::submit_traced`].
/// New code reads the same figures off [`QueryResponse`].
#[derive(Debug, Clone)]
pub struct TracedQuery {
    /// The answer, exactly as an untraced submission would produce it.
    pub page: ResultPage,
    /// The folded span tree: the `query` root with the five stage spans and
    /// per-shard probe sub-spans underneath.
    pub trace: QueryTrace,
}

/// One slow-query capture: a query whose end-to-end latency reached
/// [`ServiceConfig::slow_query_threshold`], with the full span tree of its
/// execution.  Retained in a bounded log ([`QueryService::slow_queries`]).
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The business user's input text, verbatim.
    pub input: String,
    /// Name of the tenant the query was routed to.
    pub tenant: String,
    /// End-to-end latency (submission to completion).
    pub total: Duration,
    /// Time spent waiting in the queue before a worker picked the job up.
    pub queue_wait: Duration,
    /// Pipeline execution time (dequeue to completion).
    pub execution: Duration,
    /// The span tree of the execution.
    pub trace: QueryTrace,
}

/// Errors surfaced by the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The engine rejected or failed the query.
    Engine(SodaError),
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The worker completing this job disappeared (only possible if a worker
    /// panicked mid-query).
    Disconnected,
    /// The feed journal or page cache could not be written or recovered
    /// (rendered to text because `std::io::Error` is not `Clone`).  Surfaced
    /// by [`QueryService::recover`] and by an [`TenantAdmin::ingest`]
    /// whose write-ahead append failed — such a feed is **not** absorbed, so
    /// the engine never serves rows the journal would lose in a crash.
    Durability(String),
    /// The request (or admin call) named a tenant the service does not
    /// host.
    UnknownTenant(String),
    /// [`QueryService::add_tenant`] was given an id that is already hosted.
    TenantExists(String),
    /// [`QueryService::add_tenant`] was given an id whose 64-bit
    /// fingerprint collides with an already-hosted tenant's (the default
    /// tenant's reserved `0` included).  Tenant isolation — cache keying,
    /// queue lanes, journal directories — rests on distinct fingerprints,
    /// so a colliding tenant is rejected up front instead of silently
    /// sharing another tenant's state.
    TenantFingerprintCollision {
        /// The rejected tenant id.
        tenant: String,
        /// The already-hosted tenant it collides with.
        existing: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Engine(e) => write!(f, "engine error: {e}"),
            ServiceError::ShuttingDown => write!(f, "the query service is shutting down"),
            ServiceError::Disconnected => write!(f, "the worker serving this job disappeared"),
            ServiceError::Durability(msg) => write!(f, "durability error: {msg}"),
            ServiceError::UnknownTenant(tenant) => write!(f, "unknown tenant `{tenant}`"),
            ServiceError::TenantExists(tenant) => {
                write!(f, "tenant `{tenant}` is already hosted")
            }
            ServiceError::TenantFingerprintCollision { tenant, existing } => write!(
                f,
                "tenant `{tenant}` has the same fingerprint as hosted tenant \
                 `{existing}`; rename it to keep tenant state disjoint"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SodaError> for ServiceError {
    fn from(e: SodaError) -> Self {
        ServiceError::Engine(e)
    }
}

/// Outcome of one served query.
pub type JobResult = Result<QueryResponse, ServiceError>;

/// What the worker channels carry: the raw page.  [`JobHandle::wait`]
/// wraps it into the public [`QueryResponse`] shape, so the hot path never
/// allocates a trace option per waiter.
type WireResult = Result<ResultPage, ServiceError>;

/// A claim on the result of a submitted query.
///
/// Cache hits, traced executions and errors are resolved at submission
/// time; misses resolve when a worker finishes the job.
/// [`wait`](Self::wait) blocks until then.
#[derive(Debug)]
pub struct JobHandle {
    inner: HandleInner,
}

#[derive(Debug)]
enum HandleInner {
    Ready(Box<JobResult>),
    Pending(mpsc::Receiver<WireResult>),
}

impl JobHandle {
    fn ready(result: JobResult) -> Self {
        Self {
            inner: HandleInner::Ready(Box::new(result)),
        }
    }

    fn pending(rx: mpsc::Receiver<WireResult>) -> Self {
        Self {
            inner: HandleInner::Pending(rx),
        }
    }

    /// True when the result is already available (`wait` will not block).
    pub fn is_ready(&self) -> bool {
        matches!(self.inner, HandleInner::Ready(_))
    }

    /// Blocks until the query completes and returns its result.
    pub fn wait(self) -> JobResult {
        match self.inner {
            HandleInner::Ready(result) => *result,
            HandleInner::Pending(rx) => rx
                .recv()
                .unwrap_or(Err(ServiceError::Disconnected))
                .map(QueryResponse::untraced),
        }
    }
}

struct Job {
    key: CacheKey,
    input: String,
    page: usize,
    page_size: usize,
    /// The snapshot generation pinned at submission time: the worker runs
    /// the pipeline against exactly this snapshot, so a swap that lands
    /// between submission and execution cannot change the answer (or leak a
    /// new-generation page under an old-generation key).
    engine: Arc<EngineSnapshot>,
    /// The tenant the job belongs to, for per-tenant accounting and the
    /// still-live check against *that* tenant's current fingerprint.
    tenant: Arc<TenantState>,
    /// The head-sampling decision drawn at submission time (`None` when the
    /// tenant samples nothing) — drawn up front so the worker knows whether
    /// to collect a span tree *before* the pipeline runs.
    head: Option<HeadDecision>,
    submitted: Instant,
    tx: mpsc::Sender<WireResult>,
}

/// The bounded job queue: one lane per tenant, scanned round-robin by the
/// workers, so a deep lane delays only its own tenant's jobs.
struct QueueState {
    /// `(tenant fingerprint, lane)` — created on first use and kept for the
    /// service lifetime (tenant counts are small, a linear scan wins).
    lanes: Vec<(u64, VecDeque<Job>)>,
    /// The lane the next round-robin scan starts from.
    cursor: usize,
    /// Queued jobs across all lanes (the figure the global capacity check
    /// and [`QueryService::queue_depth`] report).
    total: usize,
    shutdown: bool,
}

impl QueueState {
    /// Jobs currently queued in `lane`'s tenant lane.
    fn depth_of(&self, lane: u64) -> usize {
        self.lanes
            .iter()
            .find(|(fp, _)| *fp == lane)
            .map_or(0, |(_, jobs)| jobs.len())
    }

    fn push(&mut self, lane: u64, job: Job) {
        match self.lanes.iter_mut().find(|(fp, _)| *fp == lane) {
            Some((_, jobs)) => jobs.push_back(job),
            None => {
                let mut jobs = VecDeque::new();
                jobs.push_back(job);
                self.lanes.push((lane, jobs));
            }
        }
        self.total += 1;
    }

    /// Pops the next job, scanning the lanes round-robin from the cursor —
    /// each pop serves the next non-empty tenant lane, so a tenant with a
    /// flooded lane gets at most its fair turn.
    fn pop_round_robin(&mut self) -> Option<Job> {
        if self.total == 0 {
            return None;
        }
        let n = self.lanes.len();
        for i in 0..n {
            let idx = (self.cursor + i) % n;
            if let Some(job) = self.lanes[idx].1.pop_front() {
                self.cursor = (idx + 1) % n;
                self.total -= 1;
                return Some(job);
            }
        }
        None
    }

    /// Per-lane depths, for the fairness gauges in `metrics()`.
    fn lane_depths(&self) -> HashMap<u64, usize> {
        self.lanes
            .iter()
            .map(|(fp, jobs)| (*fp, jobs.len()))
            .collect()
    }
}

/// The per-tenant admission quota: an even split of the queue, rounded up,
/// never below one slot.  A tenant whose lane is at quota blocks its own
/// submitters while every other tenant keeps its share of the queue.
fn admission_quota(capacity: usize, tenants: usize) -> usize {
    capacity.div_ceil(tenants.max(1)).max(1)
}

/// One submission waiting on another submission's in-flight computation.
struct Waiter {
    submitted: Instant,
    tx: mpsc::Sender<WireResult>,
}

/// A cached result page together with what its query actually consulted —
/// the evidence [`EngineSnapshot::retains_page`] needs to carry the page
/// across a data-only snapshot swap instead of purging it.
#[derive(Debug, Clone)]
struct CachedPage {
    page: ResultPage,
    /// Bitmask of the shards the query's base-data probes scanned.
    touched_mask: u64,
    /// True when a shard index beyond the mask width was touched (the page
    /// is then never retained across a swap).
    touched_overflow: bool,
    /// The phrases the query probed and the probe tokens they selected
    /// (`Arc` so cache hits clone cheaply).
    deps: Arc<Vec<ProbeDep>>,
}

/// The cache and the pending-jobs map live under ONE mutex so that
/// probe-then-register is atomic: between a cache miss and the pending
/// registration no completion can slip through unobserved.
struct StoreState {
    cache: LruCache<CacheKey, CachedPage>,
    /// Keys with a job in flight (queued or executing), each with the
    /// waiters coalesced onto it.  An entry is created by the submission
    /// that enqueues the job and removed by the worker at completion (or by
    /// the submitter itself when shutdown aborts the enqueue).
    pending: HashMap<CacheKey, Vec<Waiter>>,
    /// Full pipeline executions performed by the workers.
    pipeline_executions: u64,
    /// Submissions that attached to an in-flight job instead of enqueuing.
    coalesced: u64,
}

struct Shared {
    /// Every hosted tenant — the default tenant (the boot snapshot) plus
    /// whatever [`QueryService::add_tenant`] registered.  The lifetime
    /// counters below aggregate across tenants; the per-tenant split lives
    /// on each [`TenantState`].
    tenants: TenantRegistry,
    /// Snapshot swaps performed (full reloads + per-shard rebuilds), all
    /// tenants.
    reloads: AtomicU64,
    /// Streaming-ingestion lifetime counters, all tenants.
    ingests: AtomicU64,
    ingest_events: AtomicU64,
    ingest_rows: AtomicU64,
    /// Copy-on-write sharing counters: rows appended to mutable tails,
    /// tables the derive copied, tables it structurally shared.
    ingest_rows_appended: AtomicU64,
    ingest_tables_copied: AtomicU64,
    ingest_tables_shared: AtomicU64,
    compactions: AtomicU64,
    compacted_shards: AtomicU64,
    /// Shutdown flag + wakeup signal of the background compaction worker
    /// (present even without one; ingest nudges are then no-ops).
    compactor_shutdown: Mutex<bool>,
    compactor_wake: Condvar,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    queue_capacity: usize,
    store: Mutex<StoreState>,
    latency: Mutex<LatencyRecorder>,
    started: Instant,
    /// End-to-end latency past which a worker captures the full span tree
    /// (`None` — the default — disables tracing on the worker path).
    slow_query_threshold: Option<Duration>,
    /// Queries that crossed the threshold (lifetime, evictions included).
    slow_queries: AtomicU64,
    /// The captured slow queries, newest-`slow_query_log` retained.
    slow_log: Mutex<BoundedLog<SlowQuery>>,
    /// Operational history: swaps, ingests, compactions, checkpoints,
    /// recoveries and slow queries, newest-`event_log` retained.
    events: Mutex<BoundedLog<OpEvent>>,
    /// The durability configuration the service booted with (`None` for a
    /// non-durable service) — [`QueryService::add_tenant`] derives each new
    /// tenant's journal directory from it.  The per-tenant journal *state*
    /// lives on each [`TenantState`].
    durability_config: Option<DurabilityConfig>,
    /// Serializes [`QueryService::add_tenant`] end to end, so the duplicate
    /// / fingerprint-collision check and the journal recovery form one
    /// atomic episode — two racing registrations of the same id must never
    /// both hold a write handle to the same journal file.  Never taken on
    /// the query path.
    add_tenants: Mutex<()>,
    /// The configuration the service booted with — [`QueryService::add_tenant`]
    /// builds each new tenant's sampler and SLO window from it, and the SLO
    /// evaluation reads the objectives off it.
    config: ServiceConfig,
    /// Last observed state of each `(tenant, objective)` burn alert, so
    /// [`QueryService::alerts`] emits one `slo_burn` event per transition
    /// instead of one per poll.
    alert_states: Mutex<HashMap<(String, &'static str), AlertState>>,
}

impl Shared {
    /// Records a query answered without executing the pipeline (cache hit
    /// or coalesced waiter).
    fn record_hit(&self, submitted: Instant) {
        self.latency
            .lock()
            .expect("latency recorder poisoned")
            .record_hit(submitted.elapsed());
    }

    /// Records an executed query with its queue-wait / execution split and
    /// the per-stage timings.
    fn record_executed(
        &self,
        e2e: Duration,
        queue_wait: Duration,
        execution: Duration,
        timings: Option<&StepTimings>,
    ) {
        self.latency
            .lock()
            .expect("latency recorder poisoned")
            .record_executed(e2e, queue_wait, execution, timings);
    }

    /// Appends one operational event (stamped with its sequence number, the
    /// originating tenant and the offset from service start) to the bounded
    /// event log.
    fn event(&self, kind: &'static str, tenant: &TenantId, detail: String) {
        let at = self.started.elapsed();
        let mut events = self.events.lock().expect("event log poisoned");
        let seq = events.pushed() + 1;
        events.push(OpEvent {
            seq,
            at,
            kind,
            tenant: tenant.as_str().to_string(),
            detail,
        });
    }

    /// Records one completed query in the tenant's rolling SLO window — a
    /// no-op when [`ServiceConfig::slo`] is off.
    fn record_slo(&self, tenant: &TenantState, e2e: Duration, ok: bool) {
        if let Some(slo) = &tenant.slo {
            slo.lock()
                .expect("slo window poisoned")
                .record(self.started.elapsed(), e2e, ok);
        }
    }

    /// Retains one sampled trace: pushes it into the tenant's bounded ring
    /// and attaches its trace id to the end-to-end latency histograms
    /// (service-wide and per-tenant) as the exemplar of the bucket this
    /// query landed in.  Locks are taken one at a time, never nested.
    fn capture_sampled(
        &self,
        tenant: &TenantState,
        trace_id: TraceId,
        reason: SampleReason,
        input: &str,
        e2e: Duration,
        trace: QueryTrace,
    ) {
        let id = trace_id.to_string();
        self.latency
            .lock()
            .expect("latency poisoned")
            .annotate_exemplar(e2e, &id);
        tenant
            .e2e
            .lock()
            .expect("tenant latency recorder poisoned")
            .annotate_exemplar(e2e, &id);
        tenant.sampled_total.fetch_add(1, Ordering::Relaxed);
        tenant
            .sampled
            .lock()
            .expect("sampled-trace ring poisoned")
            .push(SampledTrace {
                tenant: tenant.id.clone(),
                trace_id: id,
                input: input.to_string(),
                reason: reason.as_str(),
                total: e2e,
                trace,
            });
    }
}

/// Synthesizes the span tree of a warm cache hit: a `query` root holding a
/// single [`names::CACHE_HIT`] event — what a sampled (or traced) request
/// records when the page is served from the cache instead of re-running
/// the pipeline.
fn cache_hit_trace(input: &str, e2e: Duration) -> QueryTrace {
    let sink = CollectingSink::new();
    let root = sink.begin_span(names::QUERY, SpanId::NONE);
    sink.event(
        names::CACHE_HIT,
        root,
        vec![
            ("input", TraceValue::from(input)),
            (
                "e2e_us",
                TraceValue::from(u64::try_from(e2e.as_micros()).unwrap_or(u64::MAX)),
            ),
        ],
    );
    sink.end_span(root);
    sink.finish()
}

/// Event-detail suffix naming the tenant — empty for the default tenant,
/// so single-tenant operational logs read exactly as before the
/// multi-tenant redesign.
fn tenant_suffix(tenant: &TenantState) -> String {
    if tenant.id.is_default() {
        String::new()
    } else {
        format!(", tenant {}", tenant.id)
    }
}
/// A long-lived, thread-safe, multi-tenant SODA query service.
///
/// ```
/// use std::sync::Arc;
/// use soda_core::{EngineSnapshot, SodaConfig};
/// use soda_service::{QueryRequest, QueryService, ServiceConfig};
///
/// let warehouse = soda_warehouse::minibank::build(42);
/// let snapshot = EngineSnapshot::build(
///     Arc::new(warehouse.database),
///     Arc::new(warehouse.graph),
///     SodaConfig::default(),
/// );
/// let service = QueryService::start(Arc::new(snapshot), ServiceConfig::default());
///
/// let response = service.query(QueryRequest::new("Sara Guttinger")).wait().unwrap();
/// assert!(!response.page.results.is_empty());
///
/// // The repeat is answered from the cache.
/// let again = service.query(QueryRequest::new("sara   guttinger")).wait().unwrap();
/// assert_eq!(response.page, again.page);
/// assert_eq!(service.metrics().cache.hits, 1);
/// ```
pub struct QueryService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    compactor: Option<JoinHandle<()>>,
}

impl QueryService {
    /// Starts the worker pool over a shared engine snapshot, which becomes
    /// the **default tenant**'s warehouse (wrapped in a [`SnapshotHandle`]
    /// internally, so it can be reloaded later without restarting the
    /// pool).  Further tenants join through
    /// [`add_tenant`](Self::add_tenant).
    pub fn start(engine: Arc<EngineSnapshot>, config: ServiceConfig) -> Self {
        Self::start_with(SnapshotHandle::new(engine), config, None)
    }

    /// The constructor shared by [`start`](Self::start) and
    /// [`recover`](Self::recover): wraps an already-prepared handle (recovery
    /// restores generation stamps and replays feeds before any worker
    /// exists) and spawns the pool.
    fn start_with(
        handle: SnapshotHandle,
        config: ServiceConfig,
        durability: Option<(DurabilityState, DurabilityConfig)>,
    ) -> Self {
        let (state, durability_config) = match durability {
            Some((state, config)) => (Some(state), Some(config)),
            None => (None, None),
        };
        let default = Arc::new(TenantState::new(
            TenantId::default(),
            handle,
            state,
            &config,
        ));
        let shared = Arc::new(Shared {
            tenants: TenantRegistry::new(default),
            reloads: AtomicU64::new(0),
            ingests: AtomicU64::new(0),
            ingest_events: AtomicU64::new(0),
            ingest_rows: AtomicU64::new(0),
            ingest_rows_appended: AtomicU64::new(0),
            ingest_tables_copied: AtomicU64::new(0),
            ingest_tables_shared: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            compacted_shards: AtomicU64::new(0),
            compactor_shutdown: Mutex::new(false),
            compactor_wake: Condvar::new(),
            queue: Mutex::new(QueueState {
                lanes: Vec::new(),
                cursor: 0,
                total: 0,
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_capacity: config.queue_capacity.max(1),
            store: Mutex::new(StoreState {
                cache: LruCache::new(config.cache_capacity),
                pending: HashMap::new(),
                pipeline_executions: 0,
                coalesced: 0,
            }),
            latency: Mutex::new(LatencyRecorder::new()),
            started: Instant::now(),
            slow_query_threshold: config.slow_query_threshold,
            slow_queries: AtomicU64::new(0),
            slow_log: Mutex::new(BoundedLog::new(config.slow_query_log)),
            events: Mutex::new(BoundedLog::new(config.event_log)),
            durability_config,
            add_tenants: Mutex::new(()),
            config: config.clone(),
            alert_states: Mutex::new(HashMap::new()),
        });
        // CI parity knob: SODA_TEST_TENANTS=n hosts n-1 idle "shadow"
        // tenants over the same engine, so the whole suite exercises a
        // genuinely multi-tenant service (lanes, quotas, registry) without
        // any test changing.  The shadows take no traffic and are not
        // durable, so aggregate metrics and on-disk state are unchanged.
        if let Some(extra) = std::env::var("SODA_TEST_TENANTS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|n| *n > 1)
        {
            for i in 1..extra {
                let engine = shared.tenants.default_tenant().handle.load();
                let _ = shared.tenants.register(Arc::new(TenantState::new(
                    TenantId::new(format!("shadow-{i}")),
                    SnapshotHandle::new(engine),
                    None,
                    &shared.config,
                )));
            }
        }
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("soda-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn service worker")
            })
            .collect();
        let compactor = config.compaction.map(|compaction| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("soda-compactor".to_string())
                .spawn(move || compactor_loop(&shared, &compaction))
                .expect("failed to spawn compaction worker")
        });
        Self {
            shared,
            workers,
            compactor,
        }
    }

    /// Boots a **durable** service from the journal under
    /// [`DurabilityConfig::dir`], creating it when missing — this is both
    /// the first-boot and the post-crash entry point.  The recovered
    /// snapshot becomes the default tenant; tenants registered through
    /// [`add_tenant`](Self::add_tenant) recover from their own journals at
    /// registration time.
    ///
    /// `base_db` and `graph` must be the warehouse and metadata graph the
    /// journaled history started from (the graph is *not* journaled; after a
    /// [`TenantAdmin::refresh_graph`] pass the refreshed one).
    /// Recovery then replays the journal: the latest checkpoint's table
    /// contents are applied over `base_db` and its generation stamps are
    /// restored, every feed appended after it is re-absorbed in order, and —
    /// because absorbed state answers identically to a rebuild over the same
    /// rows — the recovered engine serves byte-identical pages under the
    /// same cache fingerprints as the instance that died.  Warm pages
    /// persisted by a graceful drain are reloaded into the cache when they
    /// still match.
    ///
    /// Errors are [`ServiceError::Durability`] for journal I/O, decode or
    /// checkpoint-apply failures — including a journal written under a
    /// different engine configuration, which must not be silently dropped —
    /// and [`ServiceError::Engine`] for malformed generation stamps.  A
    /// torn journal tail and any page-cache problem are *not* errors: the
    /// tail is truncated and the cache file ignored, both reported in the
    /// [`RecoveryReport`].
    pub fn recover(
        base_db: Arc<Database>,
        graph: Arc<MetaGraph>,
        config: SodaConfig,
        service: ServiceConfig,
        durability: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), ServiceError> {
        std::fs::create_dir_all(&durability.dir).map_err(|e| {
            ServiceError::Durability(format!("creating {}: {e}", durability.dir.display()))
        })?;
        let config_fingerprint = config.fingerprint();
        // The default tenant's journal is stamped with tenant fingerprint 0
        // (the fold identity), which is also what pre-tenancy journals carry
        // — existing durability directories recover unchanged.
        let (journal, replay) = FeedJournal::recover(
            &journal_path(&durability.dir),
            config_fingerprint,
            TenantId::default().fingerprint(),
            durability.fsync,
        )
        .map_err(|e| ServiceError::Durability(e.to_string()))?;
        let mut report = RecoveryReport {
            journal_created: replay.created,
            truncated_bytes: replay.truncated_bytes,
            ..RecoveryReport::default()
        };
        let (checkpoint, feeds) = replay.into_plan();

        // The checkpoint's tables land over the base database; everything it
        // did not record keeps its base content (which is why checkpoints
        // re-record every table ever touched).
        let mut dirty_tables = BTreeSet::new();
        let db = match &checkpoint {
            Some(cp) => {
                let mut db = (*base_db).clone();
                for (name, rows) in &cp.tables {
                    let table = db.table_mut(name).map_err(|e| {
                        ServiceError::Durability(format!("applying checkpoint to `{name}`: {e}"))
                    })?;
                    table.truncate();
                    table.insert_all(rows.iter().cloned()).map_err(|e| {
                        ServiceError::Durability(format!("applying checkpoint to `{name}`: {e}"))
                    })?;
                    report.checkpoint_rows += rows.len();
                    dirty_tables.insert(name.clone());
                }
                report.checkpoint_applied = true;
                Arc::new(db)
            }
            None => base_db,
        };
        let handle = SnapshotHandle::new(Arc::new(EngineSnapshot::build(db, graph, config)));
        if let Some(cp) = &checkpoint {
            handle
                .restore_generations(cp.generation, &cp.shard_generations)
                .map_err(ServiceError::Engine)?;
        }
        for feed in feeds {
            // A replay rejection is deterministic — the feed was rejected
            // when first ingested too (it reached the journal write-ahead) —
            // so it is counted, not fatal.  Feeds are consumed: replay moves
            // rows through the same copy-on-write path as live ingestion.
            let tables = feed.tables();
            match handle.absorb_owned(feed) {
                Ok(_) => {
                    report.replayed_feeds += 1;
                    dirty_tables.extend(tables);
                }
                Err(_) => report.rejected_feeds += 1,
            }
        }

        // The page cache is strictly best-effort: a missing, foreign, torn
        // or stale file restores nothing and fails nothing.  Entries are
        // kept only when their fingerprint matches the *recovered* snapshot
        // — queries will actually look them up under that key.
        let cache_path = durability.dir.join(CACHE_FILE);
        let live = handle.load().cache_fingerprint();
        let mut restored = Vec::new();
        if durability.persist_cache {
            if let Ok(Some(scan)) = read_frame_file(&cache_path, CACHE_MAGIC) {
                if scan.fingerprint == config_fingerprint {
                    for payload in &scan.frames {
                        match decode_cache_entry(payload) {
                            Ok((key, entry)) if key.snapshot_fingerprint == live => {
                                restored.push((key, entry));
                            }
                            _ => report.cache_pages_stale += 1,
                        }
                    }
                } else {
                    report.cache_pages_stale += scan.frames.len() as u64;
                }
            }
        }
        report.cache_pages_restored = restored.len() as u64;

        let state = DurabilityState {
            journal,
            cache_path,
            persist_cache: durability.persist_cache,
            config_fingerprint,
            dirty_tables,
            journal_appends: 0,
            checkpoints: 0,
            checkpoint_failures: 0,
            replayed_feeds: report.replayed_feeds,
            rejected_replays: report.rejected_feeds,
            truncated_bytes: report.truncated_bytes,
            cache_pages_restored: report.cache_pages_restored,
            cache_pages_stale: report.cache_pages_stale,
        };
        let service = Self::start_with(handle, service, Some((state, durability)));
        {
            // The file was written oldest-first, so sequential re-insertion
            // reproduces the drained cache's recency order.
            let mut store = service.shared.store.lock().expect("store poisoned");
            for (key, entry) in restored {
                store.cache.insert(key, entry);
            }
        }
        service.shared.event(
            "recovery",
            &TenantId::default(),
            format!(
                "checkpoint {}, {} feeds replayed, {} rejected, {} bytes truncated, \
                 {} pages restored",
                if report.checkpoint_applied {
                    "applied"
                } else {
                    "absent"
                },
                report.replayed_feeds,
                report.rejected_feeds,
                report.truncated_bytes,
                report.cache_pages_restored,
            ),
        );
        Ok((service, report))
    }

    /// Registers a new tenant: `engine` becomes what queries routed via
    /// [`QueryRequest::tenant`] are answered from.  The tenant gets its own
    /// [`SnapshotHandle`] (so its reloads and ingests never block another
    /// tenant's), its own queue lane and quota, and — on a durable service —
    /// its own write-ahead journal under `tenants/<name>-<fingerprint>/`,
    /// which is replayed over `engine` right here (so a re-registered
    /// tenant resumes exactly where its journaled history left off).
    ///
    /// Rejects the default id with [`ServiceError::TenantExists`] (the
    /// default tenant always exists), any already-registered id, and an id
    /// whose fingerprint collides with a hosted tenant's
    /// ([`ServiceError::TenantFingerprintCollision`] — fingerprints are the
    /// isolation boundary for cache keys, queue lanes and journal
    /// directories, so a collision must never be hosted).
    pub fn add_tenant(
        &self,
        id: impl Into<TenantId>,
        engine: Arc<EngineSnapshot>,
    ) -> Result<(), ServiceError> {
        let id = id.into();
        // One registration at a time: the validation below and the journal
        // recovery must be atomic, or two racing calls with the same id
        // would both open (and possibly truncate/replay) the same journal
        // file before `register` rejects the loser.
        let _adding = self
            .shared
            .add_tenants
            .lock()
            .expect("tenant registration lock poisoned");
        if id.is_default() {
            return Err(ServiceError::TenantExists(id.as_str().to_string()));
        }
        // Validate *before* the journal side effects — a rejected tenant
        // (duplicate or fingerprint collision) must not create or replay
        // any journal directory.  In particular, a named tenant whose
        // fingerprint collides with `0` would otherwise map onto the
        // default tenant's top-level journal.
        self.shared.tenants.validate_new(&id)?;
        let handle = SnapshotHandle::new(engine);
        let durability = match &self.shared.durability_config {
            Some(config) => Some(recover_tenant_journal(&id, &handle, config)?),
            None => None,
        };
        let replayed = durability.as_ref().map_or(0, |d| d.replayed_feeds);
        let tenant = Arc::new(TenantState::new(
            id,
            handle,
            durability,
            &self.shared.config,
        ));
        self.shared.tenants.register(Arc::clone(&tenant))?;
        self.shared.event(
            "add_tenant",
            &tenant.id,
            format!("tenant {}, {replayed} feeds replayed", tenant.id),
        );
        Ok(())
    }

    /// The ids of every hosted tenant, the default tenant first.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.shared
            .tenants
            .all()
            .iter()
            .map(|t| t.id.clone())
            .collect()
    }

    /// The administration facade for one tenant — every mutation of what
    /// that tenant serves (`reload`, `rebuild_shards`, `refresh_graph`,
    /// `ingest`, `ingest_owned`, `compact`, `clear_cache`) lives on the
    /// returned [`TenantAdmin`], scoped to exactly that tenant.
    pub fn admin(&self, tenant: impl Into<TenantId>) -> Result<TenantAdmin<'_>, ServiceError> {
        let id = tenant.into();
        match self.shared.tenants.resolve(&id) {
            Some(tenant) => Ok(TenantAdmin {
                service: self,
                tenant,
            }),
            None => Err(ServiceError::UnknownTenant(id.as_str().to_string())),
        }
    }

    /// Submits one query — the single request surface of the service.
    ///
    /// The request's tenant (default unless [`QueryRequest::tenant`] named
    /// another) is resolved first; an unknown tenant resolves the handle
    /// immediately with [`ServiceError::UnknownTenant`].  A
    /// [`traced`](QueryRequest::traced) request executes on the calling
    /// thread — bypassing cache, queue and coalescing, so the trace
    /// reflects a full computation — and returns a resolved handle whose
    /// response carries the span tree.  Untraced requests return
    /// immediately with a resolved handle on a cache hit or a parse error;
    /// coalesce onto an identical in-flight job when one exists; otherwise
    /// enqueue the job in the tenant's lane, blocking while the lane is at
    /// its admission quota or the queue at capacity (backpressure).
    pub fn query(&self, request: QueryRequest) -> JobHandle {
        let submitted = Instant::now();
        let Some(tenant) = self.shared.tenants.resolve(&request.tenant) else {
            return JobHandle::ready(Err(ServiceError::UnknownTenant(
                request.tenant.as_str().to_string(),
            )));
        };
        if request.traced {
            return JobHandle::ready(self.run_traced(&tenant, &request, submitted));
        }
        let normalized = match normalize_query(&request.input) {
            Ok(n) => n,
            Err(e) => return JobHandle::ready(Err(ServiceError::Engine(e))),
        };
        // Pin the tenant's current snapshot for this submission's whole
        // life: the key carries its tenant-folded fingerprint (so cache hits
        // and coalescing stay within one tenant and one generation) and the
        // job carries the Arc (so the worker computes against the same
        // generation the key names).
        let engine = tenant.handle.load();
        let key = CacheKey {
            normalized,
            snapshot_fingerprint: tenant.id.fold(engine.cache_fingerprint()),
            page: request.page,
            page_size: request.page_size.max(1),
        };

        // One critical section decides the submission's fate: cache hit,
        // coalesce onto an in-flight job, or become the job that computes.
        // Bind the outcome before touching the latency lock — holding the
        // store guard while recording would nest locks that `metrics()`
        // takes in another order.
        enum Probe {
            Hit(ResultPage),
            Coalesced(mpsc::Receiver<WireResult>),
            Compute,
        }
        let probe = {
            let mut store = self.shared.store.lock().expect("store poisoned");
            if let Some(entry) = store.cache.get(&key) {
                Probe::Hit(entry.page)
            } else if let Some(waiters) = store.pending.get_mut(&key) {
                let (tx, rx) = mpsc::channel();
                waiters.push(Waiter { submitted, tx });
                store.coalesced += 1;
                Probe::Coalesced(rx)
            } else {
                store.pending.insert(key.clone(), Vec::new());
                Probe::Compute
            }
        };
        match probe {
            Probe::Hit(page) => {
                self.shared.record_hit(submitted);
                tenant.warm_hits.fetch_add(1, Ordering::Relaxed);
                let e2e = submitted.elapsed();
                tenant.record_response(e2e);
                self.shared.record_slo(&tenant, e2e, true);
                // The sampler sees warm hits too — always-on sampling covers
                // the *normal* serving path, not just pipeline executions.
                // A kept hit records a synthesized `cache_hit` span tree.
                if let Some(sampler) = &tenant.sampler {
                    let head = sampler.head_sample();
                    if let Some(reason) = sampler.decide(head.sampled, e2e) {
                        self.shared.capture_sampled(
                            &tenant,
                            head.trace_id,
                            reason,
                            &request.input,
                            e2e,
                            cache_hit_trace(&request.input, e2e),
                        );
                    }
                }
                return JobHandle::ready(Ok(QueryResponse::untraced(page)));
            }
            Probe::Coalesced(rx) => return JobHandle::pending(rx),
            Probe::Compute => {}
        }

        let (tx, rx) = mpsc::channel();
        let lane = tenant.id.fingerprint();
        let job = Job {
            key: key.clone(),
            input: request.input,
            page: request.page,
            page_size: request.page_size,
            engine,
            head: tenant.sampler.as_ref().map(|s| s.head_sample()),
            tenant: Arc::clone(&tenant),
            submitted,
            tx,
        };
        // Admission control: block while the whole queue is at capacity OR
        // this tenant's lane is at its fair share of it.  The quota is what
        // keeps one tenant's cold-query storm from squatting every slot —
        // the flooding tenant's own submitters block here while other
        // tenants still find room in their lanes.  The quota is recomputed
        // on every predicate evaluation (the tenant count is one cheap
        // RwLock read), so a submitter that sleeps through an `add_tenant`
        // wakes up to the tightened share instead of a stale, larger one.
        let mut state = self.shared.queue.lock().expect("queue poisoned");
        let mut waited = false;
        while (state.total >= self.shared.queue_capacity
            || state.depth_of(lane)
                >= admission_quota(self.shared.queue_capacity, self.shared.tenants.len()))
            && !state.shutdown
        {
            waited = true;
            state = self.shared.not_full.wait(state).expect("queue poisoned");
        }
        if waited {
            tenant.admission_waits.fetch_add(1, Ordering::Relaxed);
        }
        if state.shutdown {
            drop(state);
            // The job will never run: withdraw the pending entry and resolve
            // any waiters that coalesced onto it in the meantime.
            let waiters = {
                let mut store = self.shared.store.lock().expect("store poisoned");
                store.pending.remove(&key).unwrap_or_default()
            };
            for waiter in waiters {
                let _ = waiter.tx.send(Err(ServiceError::ShuttingDown));
            }
            return JobHandle::ready(Err(ServiceError::ShuttingDown));
        }
        state.push(lane, job);
        drop(state);
        self.shared.not_empty.notify_one();
        JobHandle::pending(rx)
    }

    /// The traced execution behind [`query`](Self::query): probes the
    /// cache like any untraced submission — a warm page is served as a
    /// cache hit whose trace is a synthesized `cache_hit` root, exactly
    /// what the untraced path would have answered — and a miss runs the
    /// pipeline on the caller's thread through a [`CollectingSink`] and a
    /// [`ProbeRecorder`].  The served page is byte-identical to the
    /// untraced answer either way — tracing never changes an answer.
    fn run_traced(
        &self,
        tenant: &Arc<TenantState>,
        request: &QueryRequest,
        submitted: Instant,
    ) -> JobResult {
        // Normalize first: a malformed input fails identically whether or
        // not some page happens to be warm.
        let normalized = normalize_query(&request.input).map_err(ServiceError::Engine)?;
        let engine = tenant.handle.load();
        let key = CacheKey {
            normalized,
            snapshot_fingerprint: tenant.id.fold(engine.cache_fingerprint()),
            page: request.page,
            page_size: request.page_size.max(1),
        };
        let cached = self
            .shared
            .store
            .lock()
            .expect("store poisoned")
            .cache
            .get(&key);
        if let Some(entry) = cached {
            self.shared.record_hit(submitted);
            tenant.warm_hits.fetch_add(1, Ordering::Relaxed);
            let e2e = submitted.elapsed();
            tenant.record_response(e2e);
            self.shared.record_slo(tenant, e2e, true);
            return Ok(QueryResponse {
                page: entry.page,
                trace: Some(cache_hit_trace(&request.input, e2e)),
            });
        }
        let sink = CollectingSink::new();
        let recorder = ProbeRecorder::new();
        let (page, timings) = engine
            .search_paged_observed(
                &request.input,
                request.page,
                request.page_size,
                Some(&recorder),
                &sink,
            )
            .map_err(ServiceError::Engine)?;
        let e2e = submitted.elapsed();
        self.shared
            .store
            .lock()
            .expect("store poisoned")
            .pipeline_executions += 1;
        tenant.executions.fetch_add(1, Ordering::Relaxed);
        self.shared
            .record_executed(e2e, Duration::ZERO, e2e, Some(&timings));
        tenant.record_response(e2e);
        self.shared.record_slo(tenant, e2e, true);
        Ok(QueryResponse {
            page,
            trace: Some(sink.finish()),
        })
    }

    /// Deprecated spelling of [`query`](Self::query).
    #[deprecated(note = "use `query` — the handle now yields a `QueryResponse`")]
    pub fn submit(&self, request: QueryRequest) -> JobHandle {
        self.query(request)
    }

    /// Submits a batch and waits for every result, preserving order.
    ///
    /// Deprecated: collect [`query`](Self::query) handles and wait on each —
    /// submission still interleaves with execution exactly as it did here.
    #[deprecated(note = "collect `query` handles and wait on each")]
    pub fn submit_batch(&self, requests: Vec<QueryRequest>) -> Vec<JobResult> {
        let handles: Vec<JobHandle> = requests.into_iter().map(|r| self.query(r)).collect();
        handles.into_iter().map(JobHandle::wait).collect()
    }

    /// Runs one query **traced** and returns the page with its span tree.
    ///
    /// Deprecated: [`query`](Self::query) with
    /// [`QueryRequest::traced`] yields the same execution, page and trace on
    /// the [`QueryResponse`].
    #[deprecated(note = "use `query` with `QueryRequest::traced`")]
    pub fn submit_traced(&self, request: QueryRequest) -> Result<TracedQuery, ServiceError> {
        let response = self.query(request.traced()).wait()?;
        let trace = response
            .trace
            .expect("a traced request always carries a trace");
        Ok(TracedQuery {
            page: response.page,
            trace,
        })
    }

    /// A point-in-time snapshot of the service's health, the per-tenant
    /// fairness split ([`ServiceMetrics::tenants`]) included.
    pub fn metrics(&self) -> ServiceMetrics {
        // One lock at a time, never nested: query() takes store then
        // latency, so holding latency while locking store here would invert
        // the order and risk a deadlock.
        let (completed, latency, queue_wait, execution, stages) = {
            let recorder = self.shared.latency.lock().expect("latency poisoned");
            (
                recorder.count(),
                recorder.summary(),
                recorder.queue_wait_summary(),
                recorder.execution_summary(),
                recorder.stage_summaries(),
            )
        };
        let uptime = self.shared.started.elapsed();
        let uptime_secs = uptime.as_secs_f64();
        let qps = if uptime_secs > 0.0 {
            completed as f64 / uptime_secs
        } else {
            0.0
        };
        let (cache, pipeline_executions, coalesced) = {
            let store = self.shared.store.lock().expect("store poisoned");
            (
                store.cache.stats(),
                store.pipeline_executions,
                store.coalesced,
            )
        };
        let (queue_depth, lane_depths) = {
            let state = self.shared.queue.lock().expect("queue poisoned");
            (state.total, state.lane_depths())
        };
        let tenants = self
            .shared
            .tenants
            .all()
            .iter()
            .map(|t| {
                let (completed, latency) = {
                    let hist = t.e2e.lock().expect("tenant latency recorder poisoned");
                    (hist.count(), LatencySummary::of(&hist))
                };
                TenantMetrics {
                    tenant: t.id.as_str().to_string(),
                    completed,
                    qps: if uptime_secs > 0.0 {
                        completed as f64 / uptime_secs
                    } else {
                        0.0
                    },
                    latency,
                    warm_hits: t.warm_hits.load(Ordering::Relaxed),
                    executions: t.executions.load(Ordering::Relaxed),
                    admission_waits: t.admission_waits.load(Ordering::Relaxed),
                    slow_queries: t.slow_queries.load(Ordering::Relaxed),
                    sampled_traces: t.sampled_total.load(Ordering::Relaxed),
                    queue_depth: lane_depths.get(&t.id.fingerprint()).copied().unwrap_or(0),
                    generation: t.handle.generation(),
                    reloads: t.reloads.load(Ordering::Relaxed),
                    ingest_feeds: t.ingest_feeds.load(Ordering::Relaxed),
                    compactions: t.compactions.load(Ordering::Relaxed),
                    durability: durability_metrics(&t.durability),
                }
            })
            .collect();
        // Re-sampled from the live handle on every call (not captured at
        // construction), so the per-shard gauges and the generation always
        // describe the snapshot that is serving *now*, including after a
        // swap.  The top-level figures describe the default tenant; the
        // per-tenant split is in `tenants`.
        let default = self.shared.tenants.default_tenant();
        let snapshot = default.handle.load();
        ServiceMetrics {
            uptime,
            completed,
            qps,
            latency,
            queue_wait,
            execution,
            stages,
            cache,
            pipeline_executions,
            coalesced,
            slow_queries: self.shared.slow_queries.load(Ordering::Relaxed),
            queue_depth,
            workers: self.workers.len(),
            generation: snapshot.generation(),
            reloads: self.shared.reloads.load(Ordering::Relaxed),
            ingest: IngestMetrics {
                ingests: self.shared.ingests.load(Ordering::Relaxed),
                events: self.shared.ingest_events.load(Ordering::Relaxed),
                rows: self.shared.ingest_rows.load(Ordering::Relaxed),
                rows_appended: self.shared.ingest_rows_appended.load(Ordering::Relaxed),
                tables_copied: self.shared.ingest_tables_copied.load(Ordering::Relaxed),
                tables_shared: self.shared.ingest_tables_shared.load(Ordering::Relaxed),
                compactions: self.shared.compactions.load(Ordering::Relaxed),
                compacted_shards: self.shared.compacted_shards.load(Ordering::Relaxed),
            },
            shards: snapshot.shard_stats(),
            durability: durability_metrics(&default.durability),
            tenants,
        }
    }

    /// Renders the service's health as a Prometheus text-exposition
    /// document (format 0.0.4): the lifetime counters and point-in-time
    /// gauges of [`metrics`](Self::metrics), the per-tenant fairness
    /// families (`soda_tenant_*`, one sample per hosted tenant, labelled
    /// `tenant="<name>"`) and the latency **histograms** (end-to-end, queue
    /// wait, execution, per-stage and per-tenant, all in seconds) — the
    /// full-fidelity surface a scrape-based monitoring stack ingests.
    ///
    /// The document always validates against
    /// [`soda_trace::prom::validate`]; the metric names and label sets are a
    /// stable interface, pinned by a golden test.
    pub fn metrics_text(&self) -> String {
        let m = self.metrics();
        let mut w = PromWriter::new();

        w.header(
            "soda_uptime_seconds",
            "Time since the service started.",
            MetricKind::Gauge,
        );
        w.value("soda_uptime_seconds", &[], m.uptime.as_secs_f64());
        w.header(
            "soda_queries_completed_total",
            "Queries answered (cache hits included).",
            MetricKind::Counter,
        );
        w.int_value("soda_queries_completed_total", &[], m.completed);
        w.header(
            "soda_pipeline_executions_total",
            "Full pipeline executions (cache misses actually computed).",
            MetricKind::Counter,
        );
        w.int_value("soda_pipeline_executions_total", &[], m.pipeline_executions);
        w.header(
            "soda_coalesced_total",
            "Submissions that joined an identical in-flight computation.",
            MetricKind::Counter,
        );
        w.int_value("soda_coalesced_total", &[], m.coalesced);
        w.header(
            "soda_slow_queries_total",
            "Queries whose end-to-end latency reached the slow-query threshold.",
            MetricKind::Counter,
        );
        w.int_value("soda_slow_queries_total", &[], m.slow_queries);
        w.header(
            "soda_queue_depth",
            "Jobs currently waiting in the queue.",
            MetricKind::Gauge,
        );
        w.int_value("soda_queue_depth", &[], m.queue_depth as u64);
        w.header(
            "soda_workers",
            "Size of the worker pool.",
            MetricKind::Gauge,
        );
        w.int_value("soda_workers", &[], m.workers as u64);
        w.header(
            "soda_generation",
            "Generation of the snapshot currently being served.",
            MetricKind::Gauge,
        );
        w.int_value("soda_generation", &[], m.generation);
        w.header(
            "soda_reloads_total",
            "Snapshot swaps performed (full reloads and per-shard rebuilds).",
            MetricKind::Counter,
        );
        w.int_value("soda_reloads_total", &[], m.reloads);

        w.header(
            "soda_cache_hits_total",
            "Interpretation-cache hits.",
            MetricKind::Counter,
        );
        w.int_value("soda_cache_hits_total", &[], m.cache.hits);
        w.header(
            "soda_cache_misses_total",
            "Interpretation-cache misses.",
            MetricKind::Counter,
        );
        w.int_value("soda_cache_misses_total", &[], m.cache.misses);
        w.header(
            "soda_cache_evicted_total",
            "Pages evicted by LRU capacity pressure.",
            MetricKind::Counter,
        );
        w.int_value("soda_cache_evicted_total", &[], m.cache.evictions);
        w.header(
            "soda_cache_purged_total",
            "Pages purged by snapshot swaps.",
            MetricKind::Counter,
        );
        w.int_value("soda_cache_purged_total", &[], m.cache.purged);
        w.header(
            "soda_cache_retained_total",
            "Pages carried across data-only swaps by retention proofs.",
            MetricKind::Counter,
        );
        w.int_value("soda_cache_retained_total", &[], m.cache.retained);
        w.header(
            "soda_cache_pages",
            "Result pages currently cached.",
            MetricKind::Gauge,
        );
        w.int_value("soda_cache_pages", &[], m.cache.len as u64);

        w.header(
            "soda_ingest_feeds_total",
            "Change feeds absorbed by streaming ingestion.",
            MetricKind::Counter,
        );
        w.int_value("soda_ingest_feeds_total", &[], m.ingest.ingests);
        w.header(
            "soda_ingest_events_total",
            "Row events those feeds carried.",
            MetricKind::Counter,
        );
        w.int_value("soda_ingest_events_total", &[], m.ingest.events);
        w.header(
            "soda_ingest_rows_total",
            "Rows those events carried.",
            MetricKind::Counter,
        );
        w.int_value("soda_ingest_rows_total", &[], m.ingest.rows);
        w.header(
            "soda_ingest_rows_appended_total",
            "Rows appended to copy-on-write table tails by ingestion.",
            MetricKind::Counter,
        );
        w.int_value(
            "soda_ingest_rows_appended_total",
            &[],
            m.ingest.rows_appended,
        );
        w.header(
            "soda_ingest_tables_copied_total",
            "Tables the copy-on-write snapshot derives actually copied.",
            MetricKind::Counter,
        );
        w.int_value(
            "soda_ingest_tables_copied_total",
            &[],
            m.ingest.tables_copied,
        );
        w.header(
            "soda_ingest_tables_shared_total",
            "Tables structurally shared (untouched) across those derives.",
            MetricKind::Counter,
        );
        w.int_value(
            "soda_ingest_tables_shared_total",
            &[],
            m.ingest.tables_shared,
        );
        w.header(
            "soda_compactions_total",
            "Side-log compactions performed.",
            MetricKind::Counter,
        );
        w.int_value("soda_compactions_total", &[], m.ingest.compactions);
        w.header(
            "soda_compacted_shards_total",
            "Side logs folded into rebuilt partitions.",
            MetricKind::Counter,
        );
        w.int_value(
            "soda_compacted_shards_total",
            &[],
            m.ingest.compacted_shards,
        );

        w.header(
            "soda_shard_probes_total",
            "Inverted-index probes served, per shard of the live snapshot.",
            MetricKind::Counter,
        );
        for (shard, probes) in m.shards.probes.iter().enumerate() {
            w.int_value(
                "soda_shard_probes_total",
                &[("shard", shard.to_string())],
                *probes,
            );
        }
        w.header(
            "soda_shard_postings",
            "Frozen index postings, per shard of the live snapshot.",
            MetricKind::Gauge,
        );
        for (shard, postings) in m.shards.index_postings.iter().enumerate() {
            w.int_value(
                "soda_shard_postings",
                &[("shard", shard.to_string())],
                *postings as u64,
            );
        }
        w.header(
            "soda_shard_log_postings",
            "Ingestion side-log postings awaiting compaction, per shard.",
            MetricKind::Gauge,
        );
        for (shard, postings) in m.shards.log_postings.iter().enumerate() {
            w.int_value(
                "soda_shard_log_postings",
                &[("shard", shard.to_string())],
                *postings as u64,
            );
        }

        if m.durability.enabled {
            w.header(
                "soda_journal_bytes",
                "Current size of the feed journal.",
                MetricKind::Gauge,
            );
            w.int_value("soda_journal_bytes", &[], m.durability.journal_bytes);
            w.header(
                "soda_journal_appends_total",
                "Change feeds appended to the journal since this instance started.",
                MetricKind::Counter,
            );
            w.int_value(
                "soda_journal_appends_total",
                &[],
                m.durability.journal_appends,
            );
            w.header(
                "soda_checkpoints_total",
                "Checkpoints written (each truncates the journal).",
                MetricKind::Counter,
            );
            w.int_value("soda_checkpoints_total", &[], m.durability.checkpoints);
            w.header(
                "soda_checkpoint_failures_total",
                "Checkpoint attempts that failed (journal left replayable).",
                MetricKind::Counter,
            );
            w.int_value(
                "soda_checkpoint_failures_total",
                &[],
                m.durability.checkpoint_failures,
            );
        }

        // The per-tenant fairness split: one sample per hosted tenant,
        // labelled with the tenant name — how an operator sees which tenant
        // is flooding, which is starving and whether admission control is
        // biting.
        w.header(
            "soda_tenant_queries_completed_total",
            "Queries answered, per tenant.",
            MetricKind::Counter,
        );
        for t in &m.tenants {
            w.int_value(
                "soda_tenant_queries_completed_total",
                &[("tenant", t.tenant.clone())],
                t.completed,
            );
        }
        w.header(
            "soda_tenant_qps",
            "Answered queries per second of uptime, per tenant.",
            MetricKind::Gauge,
        );
        for t in &m.tenants {
            w.value("soda_tenant_qps", &[("tenant", t.tenant.clone())], t.qps);
        }
        w.header(
            "soda_tenant_warm_hits_total",
            "Submissions answered from the cache at submission time, per tenant.",
            MetricKind::Counter,
        );
        for t in &m.tenants {
            w.int_value(
                "soda_tenant_warm_hits_total",
                &[("tenant", t.tenant.clone())],
                t.warm_hits,
            );
        }
        w.header(
            "soda_tenant_pipeline_executions_total",
            "Full pipeline executions, per tenant.",
            MetricKind::Counter,
        );
        for t in &m.tenants {
            w.int_value(
                "soda_tenant_pipeline_executions_total",
                &[("tenant", t.tenant.clone())],
                t.executions,
            );
        }
        w.header(
            "soda_tenant_admission_waits_total",
            "Submissions that blocked in admission control, per tenant.",
            MetricKind::Counter,
        );
        for t in &m.tenants {
            w.int_value(
                "soda_tenant_admission_waits_total",
                &[("tenant", t.tenant.clone())],
                t.admission_waits,
            );
        }
        w.header(
            "soda_tenant_slow_queries_total",
            "Queries whose end-to-end latency reached the slow-query threshold, per tenant.",
            MetricKind::Counter,
        );
        for t in &m.tenants {
            w.int_value(
                "soda_tenant_slow_queries_total",
                &[("tenant", t.tenant.clone())],
                t.slow_queries,
            );
        }
        w.header(
            "soda_tenant_sampled_traces_total",
            "Span trees retained by the adaptive trace sampler, per tenant.",
            MetricKind::Counter,
        );
        for t in &m.tenants {
            w.int_value(
                "soda_tenant_sampled_traces_total",
                &[("tenant", t.tenant.clone())],
                t.sampled_traces,
            );
        }
        w.header(
            "soda_tenant_queue_depth",
            "Jobs currently waiting in the tenant's queue lane.",
            MetricKind::Gauge,
        );
        for t in &m.tenants {
            w.int_value(
                "soda_tenant_queue_depth",
                &[("tenant", t.tenant.clone())],
                t.queue_depth as u64,
            );
        }
        w.header(
            "soda_tenant_generation",
            "Generation of the snapshot the tenant currently serves.",
            MetricKind::Gauge,
        );
        for t in &m.tenants {
            w.int_value(
                "soda_tenant_generation",
                &[("tenant", t.tenant.clone())],
                t.generation,
            );
        }
        w.header(
            "soda_tenant_reloads_total",
            "Snapshot swaps performed, per tenant.",
            MetricKind::Counter,
        );
        for t in &m.tenants {
            w.int_value(
                "soda_tenant_reloads_total",
                &[("tenant", t.tenant.clone())],
                t.reloads,
            );
        }
        w.header(
            "soda_tenant_ingest_feeds_total",
            "Change feeds absorbed, per tenant.",
            MetricKind::Counter,
        );
        for t in &m.tenants {
            w.int_value(
                "soda_tenant_ingest_feeds_total",
                &[("tenant", t.tenant.clone())],
                t.ingest_feeds,
            );
        }
        w.header(
            "soda_tenant_compactions_total",
            "Side-log compactions performed, per tenant.",
            MetricKind::Counter,
        );
        for t in &m.tenants {
            w.int_value(
                "soda_tenant_compactions_total",
                &[("tenant", t.tenant.clone())],
                t.compactions,
            );
        }
        // Per-tenant journaling is only live on a durable service — like
        // the service-wide journal families, these are omitted otherwise.
        // (Shadow tenants host no journal and report zeros.)
        if m.durability.enabled {
            w.header(
                "soda_tenant_journal_bytes",
                "Current size of the tenant's feed journal in bytes.",
                MetricKind::Gauge,
            );
            for t in &m.tenants {
                w.int_value(
                    "soda_tenant_journal_bytes",
                    &[("tenant", t.tenant.clone())],
                    t.durability.journal_bytes,
                );
            }
            w.header(
                "soda_tenant_journal_appends_total",
                "Change feeds appended to the tenant's journal.",
                MetricKind::Counter,
            );
            for t in &m.tenants {
                w.int_value(
                    "soda_tenant_journal_appends_total",
                    &[("tenant", t.tenant.clone())],
                    t.durability.journal_appends,
                );
            }
            w.header(
                "soda_tenant_checkpoints_total",
                "Checkpoints written to the tenant's journal.",
                MetricKind::Counter,
            );
            for t in &m.tenants {
                w.int_value(
                    "soda_tenant_checkpoints_total",
                    &[("tenant", t.tenant.clone())],
                    t.durability.checkpoints,
                );
            }
            w.header(
                "soda_tenant_replayed_feeds_total",
                "Journaled feeds re-absorbed when the tenant was recovered.",
                MetricKind::Counter,
            );
            for t in &m.tenants {
                w.int_value(
                    "soda_tenant_replayed_feeds_total",
                    &[("tenant", t.tenant.clone())],
                    t.durability.replayed_feeds,
                );
            }
        }

        // The SLO burn-rate families — present exactly when an SLO is
        // declared, one sample per (tenant, objective).  Read-only: the
        // alert-transition ledger is only advanced by `alerts()`.
        if let Some(slo) = &self.shared.config.slo {
            let evaluated = self.evaluate_slo();
            w.header(
                "soda_slo_target",
                "Declared objective target fraction, per tenant and objective.",
                MetricKind::Gauge,
            );
            for (_, alert) in &evaluated {
                let target = match alert.objective {
                    "latency" => slo.latency_target,
                    _ => slo.availability_target,
                };
                w.value(
                    "soda_slo_target",
                    &[
                        ("tenant", alert.tenant.clone()),
                        ("objective", alert.objective.to_string()),
                    ],
                    target,
                );
            }
            w.header(
                "soda_slo_fast_burn_rate",
                "Error-budget burn rate over the fast window, per tenant and objective.",
                MetricKind::Gauge,
            );
            for (_, alert) in &evaluated {
                w.value(
                    "soda_slo_fast_burn_rate",
                    &[
                        ("tenant", alert.tenant.clone()),
                        ("objective", alert.objective.to_string()),
                    ],
                    alert.fast_burn,
                );
            }
            w.header(
                "soda_slo_slow_burn_rate",
                "Error-budget burn rate over the slow window, per tenant and objective.",
                MetricKind::Gauge,
            );
            for (_, alert) in &evaluated {
                w.value(
                    "soda_slo_slow_burn_rate",
                    &[
                        ("tenant", alert.tenant.clone()),
                        ("objective", alert.objective.to_string()),
                    ],
                    alert.slow_burn,
                );
            }
            w.header(
                "soda_slo_alert_state",
                "Multi-window burn-alert state (0 = ok, 1 = pending, 2 = firing).",
                MetricKind::Gauge,
            );
            for (_, alert) in &evaluated {
                w.int_value(
                    "soda_slo_alert_state",
                    &[
                        ("tenant", alert.tenant.clone()),
                        ("objective", alert.objective.to_string()),
                    ],
                    alert.state.code(),
                );
            }
        }

        // The histogram families render under the latency lock (taken alone,
        // consistent with the one-lock-at-a-time rule of `metrics`).
        self.shared
            .latency
            .lock()
            .expect("latency poisoned")
            .write_prometheus(&mut w);
        w.header(
            "soda_tenant_query_duration_seconds",
            "End-to-end query latency, per tenant.",
            MetricKind::Histogram,
        );
        for t in self.shared.tenants.all() {
            let hist = t.e2e.lock().expect("tenant latency recorder poisoned");
            w.histogram(
                "soda_tenant_query_duration_seconds",
                &[("tenant", t.id.as_str().to_string())],
                &hist,
            );
        }
        w.finish()
    }

    /// A snapshot of the operational-event log, oldest retained entry
    /// first: snapshot swaps, ingests, compactions, checkpoints, recoveries,
    /// tenant registrations and slow-query captures, each with a sequence
    /// number and an offset from service start.  Bounded by
    /// [`ServiceConfig::event_log`].
    pub fn events(&self) -> Vec<OpEvent> {
        self.shared
            .events
            .lock()
            .expect("event log poisoned")
            .to_vec()
    }

    /// A snapshot of the slow-query log, oldest retained capture first.
    /// Populated only when [`ServiceConfig::slow_query_threshold`] is set;
    /// bounded by [`ServiceConfig::slow_query_log`].
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.shared
            .slow_log
            .lock()
            .expect("slow-query log poisoned")
            .to_vec()
    }

    /// One tenant's operational events, oldest retained entry first — the
    /// tenant-filtered view of [`events`](Self::events).
    pub fn events_for(&self, tenant: impl Into<TenantId>) -> Result<Vec<OpEvent>, ServiceError> {
        let id = tenant.into();
        if self.shared.tenants.resolve(&id).is_none() {
            return Err(ServiceError::UnknownTenant(id.as_str().to_string()));
        }
        Ok(self
            .events()
            .into_iter()
            .filter(|e| e.tenant == id.as_str())
            .collect())
    }

    /// One tenant's slow-query captures, oldest retained capture first —
    /// the tenant-filtered view of [`slow_queries`](Self::slow_queries).
    pub fn slow_queries_for(
        &self,
        tenant: impl Into<TenantId>,
    ) -> Result<Vec<SlowQuery>, ServiceError> {
        let id = tenant.into();
        if self.shared.tenants.resolve(&id).is_none() {
            return Err(ServiceError::UnknownTenant(id.as_str().to_string()));
        }
        Ok(self
            .slow_queries()
            .into_iter()
            .filter(|s| s.tenant == id.as_str())
            .collect())
    }

    /// One tenant's sampled traces, oldest retained first — the span trees
    /// the adaptive sampler kept ([`ServiceConfig::sampling`]), each with
    /// its trace id, retention reason and end-to-end latency.  Bounded by
    /// [`SamplingConfig::trace_log`]; empty when sampling is off.
    pub fn sampled_traces(
        &self,
        tenant: impl Into<TenantId>,
    ) -> Result<Vec<SampledTrace>, ServiceError> {
        let id = tenant.into();
        match self.shared.tenants.resolve(&id) {
            Some(tenant) => Ok(tenant
                .sampled
                .lock()
                .expect("sampled-trace ring poisoned")
                .to_vec()),
            None => Err(ServiceError::UnknownTenant(id.as_str().to_string())),
        }
    }

    /// Evaluates every tenant's burn rates against the declared objectives
    /// ([`ServiceConfig::slo`]), emits one `slo_burn` [`OpEvent`] per
    /// alert-state *transition*, and returns the alerts that are currently
    /// pending or firing (an all-healthy fleet returns an empty vector).
    ///
    /// The multi-window rule: an alert **fires** only when both the fast
    /// and the slow window burn faster than [`SloConfig::burn_threshold`];
    /// one window alone marks it **pending**.  Returns an empty vector when
    /// no SLO is configured.
    pub fn alerts(&self) -> Vec<BurnAlert> {
        let evaluated = self.evaluate_slo();
        let transitions: Vec<(TenantId, BurnAlert, AlertState)> = {
            let mut states = self
                .shared
                .alert_states
                .lock()
                .expect("alert states poisoned");
            evaluated
                .iter()
                .filter_map(|(tenant, alert)| {
                    let prev = states
                        .insert((alert.tenant.clone(), alert.objective), alert.state)
                        .unwrap_or(AlertState::Ok);
                    (prev != alert.state).then(|| (tenant.id.clone(), alert.clone(), prev))
                })
                .collect()
        };
        for (id, alert, prev) in transitions {
            self.shared.event(
                "slo_burn",
                &id,
                format!(
                    "{} alert {} (was {}): fast burn {:.2}, slow burn {:.2}",
                    alert.objective,
                    alert.state.as_str(),
                    prev.as_str(),
                    alert.fast_burn,
                    alert.slow_burn,
                ),
            );
        }
        evaluated
            .into_iter()
            .map(|(_, alert)| alert)
            .filter(|a| a.state != AlertState::Ok)
            .collect()
    }

    /// Burn-rate evaluation shared by [`alerts`](Self::alerts) and the
    /// `soda_slo_*` metric families: folds each tenant's fast and slow
    /// windows and scores both objectives.  Read-only — the transition
    /// ledger is only touched by `alerts`.
    fn evaluate_slo(&self) -> Vec<(Arc<TenantState>, BurnAlert)> {
        let Some(slo) = &self.shared.config.slo else {
            return Vec::new();
        };
        let now = self.shared.started.elapsed();
        let mut out = Vec::new();
        for tenant in self.shared.tenants.all() {
            let Some(window) = &tenant.slo else { continue };
            let (fast, slow) = {
                let w = window.lock().expect("slo window poisoned");
                (
                    w.merged(now, slo.fast_window),
                    w.merged(now, slo.slow_window),
                )
            };
            let objective = slo.objective_for(tenant.id.as_str());
            let fast_burn = latency_burn_rate(&fast, objective, slo.latency_target);
            let slow_burn = latency_burn_rate(&slow, objective, slo.latency_target);
            out.push((
                Arc::clone(&tenant),
                BurnAlert {
                    tenant: tenant.id.as_str().to_string(),
                    objective: "latency",
                    fast_burn,
                    slow_burn,
                    state: alert_state(fast_burn, slow_burn, slo.burn_threshold),
                },
            ));
            let fast_burn = availability_burn_rate(&fast, slo.availability_target);
            let slow_burn = availability_burn_rate(&slow, slo.availability_target);
            out.push((
                Arc::clone(&tenant),
                BurnAlert {
                    tenant: tenant.id.as_str().to_string(),
                    objective: "availability",
                    fast_burn,
                    slow_burn,
                    state: alert_state(fast_burn, slow_burn, slo.burn_threshold),
                },
            ));
        }
        out
    }

    /// Deprecated spelling of the default tenant's
    /// [`TenantAdmin::clear_cache`].
    #[deprecated(note = "use `admin(TenantId::default())` — mutations are tenant-scoped")]
    pub fn clear_cache(&self) {
        self.clear_cache_for(self.shared.tenants.default_tenant());
    }

    /// Jobs currently waiting in the queue, all tenant lanes combined.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("queue poisoned").total
    }

    /// Size of the worker pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The engine snapshot the **default tenant** currently serves.  A
    /// subsequent reload does not invalidate the returned `Arc`; it just
    /// stops being what new submissions see.  Other tenants' snapshots are
    /// reached through [`admin`](Self::admin).
    pub fn engine(&self) -> Arc<EngineSnapshot> {
        self.shared.tenants.default_tenant().handle.load()
    }

    /// Generation of the snapshot the default tenant currently serves.
    pub fn generation(&self) -> u64 {
        self.shared.tenants.default_tenant().handle.generation()
    }

    /// Deprecated spelling of the default tenant's [`TenantAdmin::reload`].
    #[deprecated(note = "use `admin(TenantId::default())` — mutations are tenant-scoped")]
    pub fn reload(&self, snapshot: EngineSnapshot) -> u64 {
        self.reload_for(self.shared.tenants.default_tenant(), snapshot)
    }

    /// Deprecated spelling of the default tenant's
    /// [`TenantAdmin::rebuild_shards`].
    #[deprecated(note = "use `admin(TenantId::default())` — mutations are tenant-scoped")]
    pub fn rebuild_shards(&self, db: Arc<Database>, tables: &[String]) -> u64 {
        self.rebuild_shards_for(self.shared.tenants.default_tenant(), db, tables)
    }

    /// Deprecated spelling of the default tenant's
    /// [`TenantAdmin::refresh_graph`].
    #[deprecated(note = "use `admin(TenantId::default())` — mutations are tenant-scoped")]
    pub fn refresh_graph(&self, graph: Arc<MetaGraph>) -> u64 {
        self.refresh_graph_for(self.shared.tenants.default_tenant(), graph)
    }

    /// Deprecated spelling of the default tenant's [`TenantAdmin::ingest`].
    #[deprecated(note = "use `admin(TenantId::default())` — mutations are tenant-scoped")]
    pub fn ingest(&self, feed: &ChangeFeed) -> Result<u64, ServiceError> {
        self.ingest_owned_for(self.shared.tenants.default_tenant(), feed.clone())
    }

    /// Deprecated spelling of the default tenant's
    /// [`TenantAdmin::ingest_owned`].
    #[deprecated(note = "use `admin(TenantId::default())` — mutations are tenant-scoped")]
    pub fn ingest_owned(&self, feed: ChangeFeed) -> Result<u64, ServiceError> {
        self.ingest_owned_for(self.shared.tenants.default_tenant(), feed)
    }

    /// Deprecated spelling of the default tenant's [`TenantAdmin::compact`].
    #[deprecated(note = "use `admin(TenantId::default())` — mutations are tenant-scoped")]
    pub fn compact(&self, shards: &[usize]) -> Option<u64> {
        self.compact_for(self.shared.tenants.default_tenant(), shards)
    }

    /// Swaps in a full replacement snapshot for one tenant **without
    /// draining the worker pool**: the tenant's in-flight queries finish on
    /// the generation they pinned at submission, new submissions see the new
    /// one.  The tenant's cached pages of superseded generations are purged
    /// (they would be unaddressable anyway — the fingerprint in their key no
    /// longer matches); other tenants' pages are untouched.
    pub(crate) fn reload_for(&self, tenant: &Arc<TenantState>, snapshot: EngineSnapshot) -> u64 {
        let _swap = tenant.swaps.lock().expect("tenant swap lock poisoned");
        let prev = tenant.folded_live();
        let generation = tenant.handle.publish(snapshot);
        self.shared.reloads.fetch_add(1, Ordering::Relaxed);
        tenant.reloads.fetch_add(1, Ordering::Relaxed);
        self.shared.event(
            "reload",
            &tenant.id,
            format!("generation {generation}{}", tenant_suffix(tenant)),
        );
        self.purge_superseded_for(tenant, prev);
        // The reload replaced data the journal knows nothing about: record
        // the *entire* live database (plus the new stamps), so the next
        // recovery lands on the reloaded content whatever base it is given.
        write_checkpoint_under_swap_lock(&self.shared, tenant, true);
        generation
    }

    /// Per-shard hot swap for one tenant: given a database in which only
    /// `tables` changed, rebuilds and atomically replaces the inverted-index
    /// partitions owning those tables while every other shard keeps serving
    /// — see [`SnapshotHandle::rebuild_shards`].  Cached pages whose queries
    /// provably never consulted a rebuilt partition are carried across the
    /// swap ([`CacheStats::retained`](crate::CacheStats)); the rest of the
    /// tenant's superseded pages are purged.
    pub(crate) fn rebuild_shards_for(
        &self,
        tenant: &Arc<TenantState>,
        db: Arc<Database>,
        tables: &[String],
    ) -> u64 {
        let _swap = tenant.swaps.lock().expect("tenant swap lock poisoned");
        let prev = tenant.folded_live();
        let dirty = tenant.handle.load().shards_for_tables(tables);
        let generation = tenant.handle.rebuild_shards(db, tables);
        self.shared.reloads.fetch_add(1, Ordering::Relaxed);
        tenant.reloads.fetch_add(1, Ordering::Relaxed);
        self.shared.event(
            "rebuild_shards",
            &tenant.id,
            format!(
                "generation {generation}, {} tables, shards {dirty:?}{}",
                tables.len(),
                tenant_suffix(tenant)
            ),
        );
        retain_unaffected(&self.shared, tenant, prev, &dirty);
        // The caller handed a whole replacement database; checkpoint all of
        // it (see `reload_for`).
        write_checkpoint_under_swap_lock(&self.shared, tenant, true);
        generation
    }

    /// Metadata hot swap for one tenant: rebuilds the classification index
    /// and join catalog against a refreshed graph, sharing every
    /// classification partition the refresh did not touch — see
    /// [`SnapshotHandle::refresh_graph`].
    pub(crate) fn refresh_graph_for(
        &self,
        tenant: &Arc<TenantState>,
        graph: Arc<MetaGraph>,
    ) -> u64 {
        let _swap = tenant.swaps.lock().expect("tenant swap lock poisoned");
        let prev = tenant.folded_live();
        let generation = tenant.handle.refresh_graph(graph);
        self.shared.reloads.fetch_add(1, Ordering::Relaxed);
        tenant.reloads.fetch_add(1, Ordering::Relaxed);
        self.shared.event(
            "refresh_graph",
            &tenant.id,
            format!("generation {generation}{}", tenant_suffix(tenant)),
        );
        self.purge_superseded_for(tenant, prev);
        // The graph itself is not journaled (recovery receives it as an
        // argument), but the stamps moved: checkpoint so a recovery under
        // the refreshed graph restores the post-refresh fingerprints.
        write_checkpoint_under_swap_lock(&self.shared, tenant, true);
        generation
    }

    /// Streaming ingestion into one tenant's snapshot — the write-ahead
    /// journal append (on a durable service, into **this tenant's**
    /// journal), the absorb, the counter updates and the retention pass, all
    /// under the tenant's swap lock.
    pub(crate) fn ingest_owned_for(
        &self,
        tenant: &Arc<TenantState>,
        feed: ChangeFeed,
    ) -> Result<u64, ServiceError> {
        let _swap = tenant.swaps.lock().expect("tenant swap lock poisoned");
        let before = tenant.handle.load();
        let prev = tenant.id.fold(before.cache_fingerprint());
        let dirty = before.shards_for_tables(&feed.tables());
        let described = feed.describe();
        // Write-ahead: the feed reaches the (fsynced) journal before the
        // engine absorbs it, so every acknowledged ingest is replayable
        // after a crash.  If the append fails the feed is not absorbed at
        // all; if the engine then rejects it, the journaled record is
        // deterministically re-rejected on replay — harmless either way.
        if let Some(durability) = &tenant.durability {
            let appended = {
                let mut d = durability.lock().expect("durability state poisoned");
                let appended = d
                    .journal
                    .append_feed(&feed)
                    .map_err(|e| ServiceError::Durability(e.to_string()))?;
                d.journal_appends += 1;
                d.dirty_tables.extend(feed.tables());
                appended
            };
            self.shared.event(
                "journal_append",
                &tenant.id,
                format!("{appended} bytes{}", tenant_suffix(tenant)),
            );
        }
        let outcome = tenant
            .handle
            .absorb_owned(feed)
            .map_err(ServiceError::Engine)?;
        let generation = outcome.generation;
        self.shared.event(
            "ingest",
            &tenant.id,
            format!(
                "generation {generation}, {described}{}",
                tenant_suffix(tenant)
            ),
        );
        self.shared.ingests.fetch_add(1, Ordering::Relaxed);
        tenant.ingest_feeds.fetch_add(1, Ordering::Relaxed);
        self.shared
            .ingest_events
            .fetch_add(outcome.report.events as u64, Ordering::Relaxed);
        self.shared
            .ingest_rows
            .fetch_add(outcome.report.rows as u64, Ordering::Relaxed);
        self.shared
            .ingest_rows_appended
            .fetch_add(outcome.report.rows_appended as u64, Ordering::Relaxed);
        self.shared
            .ingest_tables_copied
            .fetch_add(outcome.report.tables_copied as u64, Ordering::Relaxed);
        self.shared
            .ingest_tables_shared
            .fetch_add(outcome.report.tables_shared as u64, Ordering::Relaxed);
        retain_unaffected(&self.shared, tenant, prev, &dirty);
        drop(_swap);
        self.shared.compactor_wake.notify_all();
        Ok(generation)
    }

    /// Folds the ingestion side logs of one tenant's `shards` into rebuilt
    /// partitions (answers unchanged by construction; see
    /// [`SnapshotHandle::compact`]).  Returns the new generation, or `None`
    /// when none of the named shards had a log to fold.
    pub(crate) fn compact_for(&self, tenant: &Arc<TenantState>, shards: &[usize]) -> Option<u64> {
        let _swap = tenant.swaps.lock().expect("tenant swap lock poisoned");
        compact_under_swap_lock(&self.shared, tenant, shards)
    }

    /// Drops one tenant's cached result pages — every entry keyed by the
    /// tenant's live fingerprint.  (Entries of superseded generations were
    /// already purged by the swap that superseded them.)  Other tenants'
    /// pages and the lifetime hit/miss counters survive.
    pub(crate) fn clear_cache_for(&self, tenant: &Arc<TenantState>) {
        let live = tenant.folded_live();
        self.shared
            .store
            .lock()
            .expect("store poisoned")
            .cache
            .retain(|key| key.snapshot_fingerprint != live);
    }

    /// Purges every cached page keyed by this tenant's superseded
    /// fingerprint `prev` — the conservative post-swap path for full
    /// reloads and graph refreshes, where nothing about a page is provably
    /// unchanged.  Scoped to `prev`, so other tenants' pages (and the
    /// tenant's already-live pages) are untouched.
    fn purge_superseded_for(&self, tenant: &Arc<TenantState>, prev: u64) {
        let live = tenant.folded_live();
        self.shared
            .store
            .lock()
            .expect("store poisoned")
            .cache
            .retain(|key| key.snapshot_fingerprint == live || key.snapshot_fingerprint != prev);
    }
}

/// Snapshots one tenant's [`DurabilityState`] into the counters surfaced by
/// [`ServiceMetrics::durability`] and [`TenantMetrics::durability`] — all
/// zero (`enabled` false) for a tenant with no journal.
fn durability_metrics(state: &Option<Mutex<DurabilityState>>) -> DurabilityMetrics {
    match state {
        Some(durability) => {
            let d = durability.lock().expect("durability state poisoned");
            DurabilityMetrics {
                enabled: true,
                journal_bytes: d.journal.len_bytes(),
                journal_appends: d.journal_appends,
                checkpoints: d.checkpoints,
                checkpoint_failures: d.checkpoint_failures,
                replayed_feeds: d.replayed_feeds,
                rejected_replays: d.rejected_replays,
                truncated_bytes: d.truncated_bytes,
                cache_pages_restored: d.cache_pages_restored,
                cache_pages_stale: d.cache_pages_stale,
            }
        }
        None => DurabilityMetrics::default(),
    }
}

/// Opens (or creates) one tenant's own feed journal under the service's
/// durability directory and replays it over the snapshot the caller handed
/// to [`QueryService::add_tenant`] — the per-tenant analogue of
/// [`QueryService::recover`].  The journal lives in its own
/// [`tenant_journal_dir`] and its header is stamped with the tenant
/// fingerprint, so one tenant's history can never replay into another's
/// snapshot.  The handed-in snapshot must be the base the journaled history
/// started from (mirroring `recover`'s contract for the default tenant).
fn recover_tenant_journal(
    id: &TenantId,
    handle: &SnapshotHandle,
    config: &DurabilityConfig,
) -> Result<DurabilityState, ServiceError> {
    let dir = tenant_journal_dir(&config.dir, id.as_str(), id.fingerprint());
    std::fs::create_dir_all(&dir)
        .map_err(|e| ServiceError::Durability(format!("creating {}: {e}", dir.display())))?;
    let base = handle.load();
    let config_fingerprint = base.config().fingerprint();
    let (journal, replay) = FeedJournal::recover(
        &journal_path(&dir),
        config_fingerprint,
        id.fingerprint(),
        config.fsync,
    )
    .map_err(|e| ServiceError::Durability(e.to_string()))?;
    let truncated_bytes = replay.truncated_bytes;
    let (checkpoint, feeds) = replay.into_plan();
    let mut dirty_tables = BTreeSet::new();
    if let Some(cp) = &checkpoint {
        let mut db = (*base.database()).clone();
        for (name, rows) in &cp.tables {
            let table = db.table_mut(name).map_err(|e| {
                ServiceError::Durability(format!("applying checkpoint to `{name}`: {e}"))
            })?;
            table.truncate();
            table.insert_all(rows.iter().cloned()).map_err(|e| {
                ServiceError::Durability(format!("applying checkpoint to `{name}`: {e}"))
            })?;
            dirty_tables.insert(name.clone());
        }
        handle.publish(EngineSnapshot::build(
            Arc::new(db),
            base.graph_arc(),
            base.config().clone(),
        ));
        handle
            .restore_generations(cp.generation, &cp.shard_generations)
            .map_err(ServiceError::Engine)?;
    }
    let mut replayed_feeds = 0;
    let mut rejected_replays = 0;
    for feed in feeds {
        let tables = feed.tables();
        match handle.absorb_owned(feed) {
            Ok(_) => {
                replayed_feeds += 1;
                dirty_tables.extend(tables);
            }
            Err(_) => rejected_replays += 1,
        }
    }
    Ok(DurabilityState {
        journal,
        cache_path: dir.join(CACHE_FILE),
        // Only the default tenant persists warm pages on drain — the shared
        // cache file predates tenancy and carries its fingerprint space.
        persist_cache: false,
        config_fingerprint,
        dirty_tables,
        journal_appends: 0,
        checkpoints: 0,
        checkpoint_failures: 0,
        replayed_feeds,
        rejected_replays,
        truncated_bytes,
        cache_pages_restored: 0,
        cache_pages_stale: 0,
    })
}

/// Post-swap cache pass for *data-only* swaps (shard rebuilds, ingests,
/// compactions) of one tenant: pages keyed by the tenant's immediately
/// superseded fingerprint `prev` whose recorded probes provably never
/// consulted a `dirty` shard are re-keyed to the tenant's live fingerprint
/// (staying addressable — a retention, not a recomputation); everything
/// else keyed by `prev` is purged.  Pages under any other fingerprint —
/// other tenants' pages and this tenant's older strays — are left exactly
/// where they are; a stray under an older fingerprint was never
/// retention-checked against the intervening swaps, so it must age out of
/// the LRU, never come back.
fn retain_unaffected(shared: &Shared, tenant: &Arc<TenantState>, prev: u64, dirty: &[usize]) {
    let snapshot = tenant.handle.load();
    let live = tenant.id.fold(snapshot.cache_fingerprint());
    // The gate memoizes each distinct (phrase, token) probe check, so the
    // pass — which runs under the store lock — costs one index probe per
    // distinct dependency, not per cache entry.
    let mut gate = RetentionGate::new(&snapshot, dirty);
    let mut store = shared.store.lock().expect("store poisoned");
    store.cache.rekey(|key, entry| {
        if key.snapshot_fingerprint != prev || prev == live {
            Some(key.clone())
        } else if gate.retains(entry.touched_mask, entry.touched_overflow, &entry.deps) {
            Some(CacheKey {
                snapshot_fingerprint: live,
                ..key.clone()
            })
        } else {
            None
        }
    });
}

/// The compaction step shared by [`TenantAdmin::compact`] and the
/// background worker; the caller must hold the tenant's swap lock.
fn compact_under_swap_lock(
    shared: &Shared,
    tenant: &Arc<TenantState>,
    shards: &[usize],
) -> Option<u64> {
    let before = tenant.handle.load();
    let prev = tenant.id.fold(before.cache_fingerprint());
    let logged = before.shards_with_side_logs();
    let foldable: Vec<usize> = shards
        .iter()
        .copied()
        .filter(|s| logged.contains(s))
        .collect();
    let generation = tenant.handle.compact(&foldable)?;
    shared.event(
        "compaction",
        &tenant.id,
        format!(
            "generation {generation}, shards {foldable:?}{}",
            tenant_suffix(tenant)
        ),
    );
    shared.compactions.fetch_add(1, Ordering::Relaxed);
    tenant.compactions.fetch_add(1, Ordering::Relaxed);
    shared
        .compacted_shards
        .fetch_add(foldable.len() as u64, Ordering::Relaxed);
    // A fold changes no answers, but the fingerprint moved: carry every
    // provably unaffected page over; pages whose probes scanned a folded
    // shard are recomputed (conservative — their hits merely moved from the
    // log into the frozen partition).
    retain_unaffected(shared, tenant, prev, &foldable);
    // The fold changed no rows, so the dirty set is already right — but the
    // stamps moved and the side logs are gone: a checkpoint here both keeps
    // recovery fingerprints current and truncates the journal (the feeds it
    // replaces are exactly the ones the fold absorbed into the partitions).
    write_checkpoint_under_swap_lock(shared, tenant, false);
    Some(generation)
}

/// Writes a checkpoint of one tenant — the live content of every dirty
/// table plus the live generation stamps — atomically *replacing* that
/// tenant's journal, which is what keeps replay bounded.  With
/// `mark_all_tables` the whole live database is recorded first (reloads and
/// shard rebuilds swap in data the journal never saw).  The caller must
/// hold the tenant's swap lock; a no-op for a non-durable tenant.  A failed
/// write is counted and leaves the old journal in place — still fully
/// replayable, just not yet truncated.
fn write_checkpoint_under_swap_lock(
    shared: &Shared,
    tenant: &Arc<TenantState>,
    mark_all_tables: bool,
) {
    let Some(durability) = &tenant.durability else {
        return;
    };
    let snapshot = tenant.handle.load();
    let db = snapshot.database();
    let mut d = durability.lock().expect("durability state poisoned");
    if mark_all_tables {
        d.dirty_tables
            .extend(db.table_names().into_iter().map(String::from));
    }
    let mut tables = Vec::with_capacity(d.dirty_tables.len());
    for name in &d.dirty_tables {
        // A name the live database no longer knows (possible after a reload
        // that dropped a table) simply has nothing to record.
        if let Ok(table) = db.table(name) {
            tables.push((name.clone(), table.rows().to_vec()));
        }
    }
    let checkpoint = Checkpoint {
        generation: snapshot.generation(),
        shard_generations: snapshot.shard_generations().to_vec(),
        tables,
    };
    let outcome = d.journal.write_checkpoint(&checkpoint);
    match &outcome {
        Ok(_) => d.checkpoints += 1,
        Err(_) => d.checkpoint_failures += 1,
    }
    drop(d);
    match outcome {
        Ok(bytes) => shared.event(
            "checkpoint",
            &tenant.id,
            format!(
                "generation {}, {} tables, journal now {bytes} bytes{}",
                checkpoint.generation,
                checkpoint.tables.len(),
                tenant_suffix(tenant)
            ),
        ),
        Err(e) => shared.event("checkpoint_failure", &tenant.id, e.to_string()),
    }
}

/// The background compaction worker: wakes on every ingest nudge (and at
/// least every `poll_interval`), sweeps **every** tenant for shards the
/// policy says are due, and exits when the service drops.  Each tenant is
/// folded under its own swap lock, so a long fold for one tenant never
/// blocks another tenant's reload or ingest.
fn compactor_loop(shared: &Arc<Shared>, config: &CompactionConfig) {
    let mut shutdown = shared
        .compactor_shutdown
        .lock()
        .expect("compactor lock poisoned");
    loop {
        if *shutdown {
            return;
        }
        let (state, _timeout) = shared
            .compactor_wake
            .wait_timeout(shutdown, config.poll_interval)
            .expect("compactor lock poisoned");
        shutdown = state;
        if *shutdown {
            return;
        }
        drop(shutdown);
        for tenant in shared.tenants.all() {
            let _swap = tenant.swaps.lock().expect("tenant swap lock poisoned");
            let stats = tenant.handle.load().shard_stats();
            let due = config
                .policy
                .due(&stats.log_postings, &stats.log_rows, &stats.log_masks);
            if !due.is_empty() {
                compact_under_swap_lock(shared, &tenant, &due);
            }
        }
        shutdown = shared
            .compactor_shutdown
            .lock()
            .expect("compactor lock poisoned");
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        // Stop the compaction worker first so no further swap lands while
        // the pool drains.
        if let Some(compactor) = self.compactor.take() {
            *self
                .shared
                .compactor_shutdown
                .lock()
                .expect("compactor lock poisoned") = true;
            self.shared.compactor_wake.notify_all();
            let _ = compactor.join();
        }
        {
            let mut state = self.shared.queue.lock().expect("queue poisoned");
            state.shutdown = true;
        }
        // Wake every waiter: workers drain the remaining jobs and exit;
        // blocked submitters observe the shutdown flag and bail out.
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Graceful drain: with the workers joined the cache is final, so
        // persist the warm pages (oldest-first, preserving recency order)
        // for the next `recover` to reload.  Best-effort by design — a
        // failed write costs warm starts, never correctness.  The file is
        // the default tenant's (other tenants recompute their first pages),
        // stamped with the fold-identity tenant fingerprint so pre-tenancy
        // readers and writers agree.
        let default = self.shared.tenants.default_tenant();
        if let Some(durability) = &default.durability {
            let d = durability.lock().expect("durability state poisoned");
            if d.persist_cache {
                let store = self.shared.store.lock().expect("store poisoned");
                let payloads: Vec<Vec<u8>> = store
                    .cache
                    .iter_oldest_first()
                    .map(|(key, entry)| encode_cache_entry(key, entry))
                    .collect();
                let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
                let _ = write_frame_file(
                    &d.cache_path,
                    CACHE_MAGIC,
                    d.config_fingerprint,
                    TenantId::default().fingerprint(),
                    &refs,
                );
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = state.pop_round_robin() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.not_empty.wait(state).expect("queue poisoned");
            }
        };
        // notify_all, not notify_one: admission control blocks submitters on
        // two different predicates (global capacity and per-tenant quota),
        // and a single wake-up could land on a submitter whose own lane is
        // still full while one that could proceed keeps sleeping.
        shared.not_full.notify_all();

        // If the pipeline panics, the pending entry must not leak: this
        // guard removes it and drops the coalesced waiters' senders, so
        // their `wait()` resolves with `Disconnected` (exactly what a worker
        // panic produced before coalescing existed) and future submissions
        // of the key recompute instead of attaching to a dead job.
        struct PendingGuard<'a> {
            shared: &'a Shared,
            key: Option<CacheKey>,
        }
        impl Drop for PendingGuard<'_> {
            fn drop(&mut self) {
                if let Some(key) = self.key.take() {
                    if let Ok(mut store) = self.shared.store.lock() {
                        store.pending.remove(&key);
                    }
                }
            }
        }
        let mut guard = PendingGuard {
            shared,
            key: Some(job.key.clone()),
        };
        // Queue wait ends here: everything from `dequeued` on is execution.
        let dequeued = Instant::now();
        let queue_wait = dequeued.duration_since(job.submitted);
        // The recorder captures which shards the probes scan and which probe
        // tokens the phrases select — the evidence that lets a data-only
        // snapshot swap retain this page instead of purging it.
        let recorder = ProbeRecorder::new();
        // A collecting sink runs when anything downstream might keep the
        // span tree: a slow-query threshold (the capture decision needs the
        // final latency, which only exists afterwards), a head-sampled
        // draw, or tail sampling rules (which also decide on the final
        // latency).  Otherwise the noop sink keeps the pipeline's
        // instrumentation at a single `enabled()` check per site.
        let tail_capture = job
            .tenant
            .sampler
            .as_ref()
            .is_some_and(Sampler::tail_enabled);
        let head_sampled = job.head.is_some_and(|h| h.sampled);
        let collecting = (shared.slow_query_threshold.is_some() || head_sampled || tail_capture)
            .then(CollectingSink::new);
        let sink: &dyn TraceSink = match &collecting {
            Some(c) => c,
            None => &NoopSink,
        };
        let observed = job
            .engine
            .search_paged_observed(&job.input, job.page, job.page_size, Some(&recorder), sink)
            .map_err(ServiceError::Engine);
        let execution = dequeued.elapsed();
        let (outcome, timings) = match observed {
            Ok((page, timings)) => (Ok(page), Some(timings)),
            Err(e) => (Err(e), None),
        };
        // Normal path: the completion hand-off below owns the cleanup.
        guard.key = None;
        // A swap may have landed while this job ran: a page keyed by a
        // superseded fingerprint can never be hit again (submissions compute
        // keys from the live snapshot), so inserting it would only evict a
        // live entry from a full cache.  The check races benignly with a
        // concurrent swap — worst case one soon-unaddressable page slips in
        // and ages out of the LRU.
        let still_live = job.key.snapshot_fingerprint == job.tenant.folded_live();
        // Publish the page and claim the coalesced waiters in one critical
        // section, so no submission can slip between the cache insert and
        // the pending-entry removal and end up waiting forever.
        let waiters = {
            let mut store = shared.store.lock().expect("store poisoned");
            store.pipeline_executions += 1;
            if let (Ok(page), true) = (&outcome, still_live) {
                store.cache.insert(
                    job.key.clone(),
                    CachedPage {
                        page: page.clone(),
                        touched_mask: recorder.touched_mask(),
                        touched_overflow: recorder.overflowed(),
                        deps: Arc::new(recorder.deps()),
                    },
                );
            }
            store.pending.remove(&job.key).unwrap_or_default()
        };
        job.tenant.executions.fetch_add(1, Ordering::Relaxed);
        let e2e = job.submitted.elapsed();
        shared.record_executed(e2e, queue_wait, execution, timings.as_ref());
        job.tenant.record_response(e2e);
        shared.record_slo(&job.tenant, e2e, outcome.is_ok());
        let trace = collecting.map(CollectingSink::finish);
        // A query over the threshold lands its full span tree in the
        // slow-query log (the end-to-end figure decides, so a fast pipeline
        // behind a deep queue is still captured — that *is* the slowness the
        // caller experienced).
        if let (Some(threshold), Some(trace)) = (shared.slow_query_threshold, &trace) {
            if e2e >= threshold {
                shared.slow_queries.fetch_add(1, Ordering::Relaxed);
                job.tenant.slow_queries.fetch_add(1, Ordering::Relaxed);
                shared.event(
                    "slow_query",
                    &job.tenant.id,
                    format!("{:?} end-to-end: {}", e2e, job.input),
                );
                shared
                    .slow_log
                    .lock()
                    .expect("slow-query log poisoned")
                    .push(SlowQuery {
                        input: job.input.clone(),
                        tenant: job.tenant.id.as_str().to_string(),
                        total: e2e,
                        queue_wait,
                        execution,
                        trace: trace.clone(),
                    });
            }
        }
        // The sampler's verdict — head draw from submission time, tail
        // rules on the final latency.  `decide` also feeds the running mean
        // the anomaly rule compares against, so it runs on every execution;
        // a kept reason always has a collected trace (head-sampled and
        // tail-enabled executions collect, see above).
        if let (Some(sampler), Some(head)) = (&job.tenant.sampler, job.head) {
            if let Some(reason) = sampler.decide(head.sampled, e2e) {
                if let Some(trace) = trace {
                    shared.capture_sampled(
                        &job.tenant,
                        head.trace_id,
                        reason,
                        &job.input,
                        e2e,
                        trace,
                    );
                }
            }
        }
        for waiter in waiters {
            shared.record_hit(waiter.submitted);
            let waited = waiter.submitted.elapsed();
            job.tenant.record_response(waited);
            shared.record_slo(&job.tenant, waited, outcome.is_ok());
            // A waiter may have dropped its handle; that is not an error.
            let _ = waiter.tx.send(outcome.clone());
        }
        let _ = job.tx.send(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_core::SodaConfig;
    use std::time::Duration;

    fn assert_send_sync<T: Send + Sync>() {}

    fn admin(service: &QueryService) -> TenantAdmin<'_> {
        service
            .admin(TenantId::default())
            .expect("the default tenant always exists")
    }

    fn minibank_service(config: ServiceConfig) -> QueryService {
        let w = soda_warehouse::minibank::build(42);
        let snapshot = EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig::default(),
        );
        QueryService::start(Arc::new(snapshot), config)
    }

    #[test]
    fn service_is_send_and_sync() {
        assert_send_sync::<QueryService>();
        assert_send_sync::<ServiceConfig>();
    }

    #[test]
    fn serves_the_same_page_as_the_engine() {
        let service = minibank_service(ServiceConfig::default());
        let direct = service
            .engine()
            .search_paged("Sara Guttinger", 0, 10)
            .unwrap();
        let served = service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        assert_eq!(direct, served.page);
    }

    #[test]
    fn equivalent_spellings_share_one_cache_slot() {
        let service = minibank_service(ServiceConfig::default());
        let first = service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        let second = service
            .query(QueryRequest::new("  sara   GUTTINGER "))
            .wait()
            .unwrap();
        assert_eq!(first, second);
        let stats = service.metrics().cache;
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn pages_are_cached_independently() {
        let service = minibank_service(ServiceConfig::default());
        let p0 = service
            .query(QueryRequest::new("customers").page_size(2))
            .wait()
            .unwrap()
            .page;
        let p1 = service
            .query(QueryRequest::new("customers").page(1).page_size(2))
            .wait()
            .unwrap()
            .page;
        assert_eq!(p0.page, 0);
        assert_eq!(p1.page, 1);
        assert_ne!(p0.results, p1.results);
        assert_eq!(service.metrics().cache.len, 2);
    }

    #[test]
    fn parse_errors_resolve_immediately() {
        let service = minibank_service(ServiceConfig::default());
        let handle = service.query(QueryRequest::new("   "));
        assert!(handle.is_ready());
        match handle.wait() {
            Err(ServiceError::Engine(SodaError::EmptyQuery)) => {}
            other => panic!("expected EmptyQuery, got {other:?}"),
        }
    }

    #[test]
    fn batch_preserves_request_order() {
        let service = minibank_service(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        });
        let queries = ["Sara Guttinger", "wealthy customers", "customers"];
        let expected: Vec<ResultPage> = queries
            .iter()
            .map(|q| service.engine().search_paged(q, 0, 10).unwrap())
            .collect();
        let handles: Vec<JobHandle> = queries
            .iter()
            .map(|q| service.query(QueryRequest::new(*q)))
            .collect();
        let got: Vec<JobResult> = handles.into_iter().map(JobHandle::wait).collect();
        for (want, got) in expected.iter().zip(&got) {
            assert_eq!(want, &got.as_ref().unwrap().page);
        }
    }

    #[test]
    fn tiny_queue_applies_backpressure_without_deadlock() {
        let service = minibank_service(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            cache_capacity: 4,
            ..ServiceConfig::default()
        });
        // More jobs than queue slots: the submissions must ride the
        // backpressure and still answer everything.
        let requests: Vec<QueryRequest> = (0..8)
            .map(|i| QueryRequest::new(["customers", "Sara Guttinger"][i % 2]))
            .collect();
        let handles: Vec<JobHandle> = requests.into_iter().map(|r| service.query(r)).collect();
        let results: Vec<JobResult> = handles.into_iter().map(JobHandle::wait).collect();
        assert_eq!(results.len(), 8);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn metrics_cover_latency_cache_and_queue() {
        let service = minibank_service(ServiceConfig::default());
        for _ in 0..3 {
            service
                .query(QueryRequest::new("Sara Guttinger"))
                .wait()
                .unwrap();
        }
        let m = service.metrics();
        assert_eq!(m.completed, 3);
        assert_eq!(m.cache.hits, 2);
        assert!(m.qps > 0.0);
        assert!(m.latency.max >= m.latency.min);
        assert!(m.latency.mean > Duration::ZERO);
        assert_eq!(m.queue_depth, 0);
        assert_eq!(m.workers, 4);
    }

    #[test]
    fn clear_cache_forces_recomputation() {
        let service = minibank_service(ServiceConfig::default());
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        admin(&service).clear_cache();
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        let stats = service.metrics().cache;
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn concurrent_clients_get_consistent_answers() {
        let service = minibank_service(ServiceConfig {
            workers: 4,
            queue_capacity: 16,
            cache_capacity: 64,
            ..ServiceConfig::default()
        });
        let queries = ["Sara Guttinger", "wealthy customers", "customers"];
        let expected: Vec<ResultPage> = queries
            .iter()
            .map(|q| service.engine().search_paged(q, 0, 10).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for (query, want) in queries.iter().zip(&expected) {
                        let got = service
                            .query(QueryRequest::new(*query))
                            .wait()
                            .unwrap()
                            .page;
                        assert_eq!(&got, want);
                    }
                });
            }
        });
        assert_eq!(service.metrics().completed, 8 * 3);
    }

    #[test]
    fn concurrent_identical_cold_queries_execute_the_pipeline_once() {
        let service = minibank_service(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            cache_capacity: 16,
            ..ServiceConfig::default()
        });
        // Two distinct cold queries occupy the single worker so the identical
        // submissions below all land while their key is still in flight.
        let blockers = [
            service.query(QueryRequest::new("wealthy customers")),
            service.query(QueryRequest::new("customers Zurich")),
        ];

        const CLIENTS: usize = 8;
        let query = "Sara Guttinger";
        let pages: Vec<ResultPage> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    scope.spawn(|| service.query(QueryRequest::new(query)).wait().unwrap().page)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for blocker in blockers {
            blocker.wait().unwrap();
        }

        for page in &pages {
            assert_eq!(page, &pages[0]);
        }
        let m = service.metrics();
        // Two blockers plus exactly ONE execution for the identical batch —
        // whether a client coalesced or arrived late enough for a cache hit.
        assert_eq!(m.pipeline_executions, 3);
        assert_eq!(
            m.coalesced + m.cache.hits,
            (CLIENTS - 1) as u64,
            "every duplicate must be served without recomputation: {m:?}"
        );
        assert_eq!(m.completed, (CLIENTS + 2) as u64);
    }

    #[test]
    fn coalesced_and_computing_submissions_get_equal_pages() {
        // Steer the duplicates onto the coalescing path: the single worker
        // is busy with a blocker, so identical submissions normally attach
        // to the first one's pending entry.  If this thread is preempted
        // long enough for `first` to complete anyway, they become cache
        // hits instead — either way, no duplicate may recompute.
        let service = minibank_service(ServiceConfig {
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 4,
            ..ServiceConfig::default()
        });
        let blocker = service.query(QueryRequest::new("wealthy customers"));
        let first = service.query(QueryRequest::new("customers"));
        let second = service.query(QueryRequest::new("customers"));
        let third = service.query(QueryRequest::new("  CUSTOMERS  "));
        let a = first.wait().unwrap();
        let b = second.wait().unwrap();
        let c = third.wait().unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        blocker.wait().unwrap();
        let m = service.metrics();
        assert_eq!(m.coalesced + m.cache.hits, 2, "{m:?}");
        assert_eq!(m.pipeline_executions, 2);
    }

    #[test]
    fn metrics_report_shard_sizes_and_probes() {
        let w = soda_warehouse::minibank::build(42);
        let snapshot = EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig {
                shards: 4,
                ..SodaConfig::default()
            },
        );
        let service = QueryService::start(Arc::new(snapshot), ServiceConfig::default());
        let m = service.metrics();
        assert_eq!(m.shards.shards, 4);
        assert_eq!(m.shards.classification_phrases.len(), 4);
        assert_eq!(m.shards.index_postings.len(), 4);
        assert_eq!(m.shards.total_probes(), 0);
        // A base-data query scans the shards holding its candidate postings.
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        let m = service.metrics();
        assert_eq!(m.shards.probes.len(), 4);
        assert!(m.shards.total_probes() > 0);
    }

    #[test]
    fn reload_bumps_the_generation_and_purges_stale_pages() {
        let service = minibank_service(ServiceConfig::default());
        let before = service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        assert_eq!(service.metrics().cache.len, 1);
        assert_eq!(service.generation(), 0);

        let w = soda_warehouse::minibank::build(42);
        let generation = admin(&service).reload(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig::default(),
        ));
        assert_eq!(generation, 1);
        let m = service.metrics();
        assert_eq!(m.generation, 1);
        assert_eq!(m.reloads, 1);
        assert_eq!(m.cache.len, 0, "superseded pages must be purged");
        assert_eq!(m.cache.purged, 1);

        // Identical warehouse, new generation: same answer, recomputed.
        let after = service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        assert_eq!(before, after);
        let m = service.metrics();
        assert_eq!(m.pipeline_executions, 2);
        assert_eq!(m.cache.hits, 0);
    }

    #[test]
    fn metrics_resample_the_live_snapshot_per_call() {
        // Regression test for the shard gauge being captured once: after a
        // reload with a different shard count, metrics() must describe the
        // swapped-in snapshot, not the boot-time one.
        let w = soda_warehouse::minibank::build(42);
        let service = QueryService::start(
            Arc::new(EngineSnapshot::build(
                Arc::new(w.database.clone()),
                Arc::new(w.graph.clone()),
                SodaConfig {
                    shards: 2,
                    ..SodaConfig::default()
                },
            )),
            ServiceConfig::default(),
        );
        assert_eq!(service.metrics().shards.shards, 2);
        admin(&service).reload(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig {
                shards: 4,
                ..SodaConfig::default()
            },
        ));
        let m = service.metrics();
        assert_eq!(m.shards.shards, 4);
        assert_eq!(m.shards.generations, vec![1, 1, 1, 1]);
        // Probes land on the live snapshot's counters.
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        assert!(service.metrics().shards.total_probes() > 0);
    }

    #[test]
    fn rebuild_shards_through_the_service_serves_the_new_rows() {
        let w = soda_warehouse::minibank::build(42);
        let service = QueryService::start(
            Arc::new(EngineSnapshot::build(
                Arc::new(w.database.clone()),
                Arc::new(w.graph),
                SodaConfig {
                    shards: 4,
                    ..SodaConfig::default()
                },
            )),
            ServiceConfig::default(),
        );
        assert!(service
            .query(QueryRequest::new("Zebulon"))
            .wait()
            .unwrap()
            .page
            .results
            .is_empty());

        let mut db = w.database;
        let individuals = db.table("individuals").unwrap();
        let mut row = individuals.rows()[0].clone();
        let name_col = individuals
            .schema()
            .columns
            .iter()
            .position(|c| c.name == "firstname")
            .unwrap();
        row[0] = soda_core::Value::Int(9_999);
        row[name_col] = soda_core::Value::from("Zebulon");
        db.insert("individuals", row).unwrap();
        let generation = admin(&service).rebuild_shards(Arc::new(db), &["individuals".to_string()]);
        assert_eq!(generation, 1);
        let page = service
            .query(QueryRequest::new("Zebulon"))
            .wait()
            .unwrap()
            .page;
        assert!(!page.results.is_empty());
    }

    fn address_feed(id: i64, city: &str) -> ChangeFeed {
        ChangeFeed::new().append_row(
            "addresses",
            vec![
                soda_core::Value::Int(id),
                soda_core::Value::Int(1),
                soda_core::Value::from("Stream Lane 1"),
                soda_core::Value::from(city),
                soda_core::Value::from("Switzerland"),
            ],
        )
    }

    #[test]
    fn ingest_serves_new_rows_and_counts() {
        let service = minibank_service(ServiceConfig::default());
        assert!(service
            .query(QueryRequest::new("Streamville"))
            .wait()
            .unwrap()
            .page
            .results
            .is_empty());
        let generation = admin(&service)
            .ingest(&address_feed(900, "Streamville"))
            .unwrap();
        assert_eq!(generation, 1);
        let page = service
            .query(QueryRequest::new("Streamville"))
            .wait()
            .unwrap()
            .page;
        assert!(!page.results.is_empty());
        let m = service.metrics();
        assert_eq!(m.generation, 1);
        assert_eq!(m.reloads, 0, "an ingest is not a reload");
        assert_eq!(m.ingest.ingests, 1);
        assert_eq!(m.ingest.events, 1);
        assert_eq!(m.ingest.rows, 1);
        assert_eq!(m.ingest.compactions, 0);
        assert!(m.shards.log_postings.iter().sum::<usize>() > 0);

        // A rejected feed publishes nothing and counts nothing.
        let bad = ChangeFeed::new().append_row("no_such_table", vec![]);
        assert!(admin(&service).ingest(&bad).is_err());
        let m = service.metrics();
        assert_eq!(m.generation, 1);
        assert_eq!(m.ingest.ingests, 1);
    }

    #[test]
    fn manual_compaction_folds_logs_and_keeps_answers() {
        let service = minibank_service(ServiceConfig::default());
        admin(&service)
            .ingest(&address_feed(900, "Streamville"))
            .unwrap();
        let before = service
            .query(QueryRequest::new("Streamville"))
            .wait()
            .unwrap();
        let shards: Vec<usize> = (0..service.engine().shard_count()).collect();
        let generation = admin(&service).compact(&shards).expect("a log to fold");
        assert_eq!(generation, 2);
        assert!(
            admin(&service).compact(&shards).is_none(),
            "nothing left to fold"
        );
        let m = service.metrics();
        assert_eq!(m.ingest.compactions, 1);
        assert_eq!(m.ingest.compacted_shards, 1);
        assert_eq!(m.shards.log_postings.iter().sum::<usize>(), 0);
        let after = service
            .query(QueryRequest::new("Streamville"))
            .wait()
            .unwrap();
        assert_eq!(before, after, "compaction must not change answers");
    }

    #[test]
    fn data_swaps_retain_provably_unaffected_pages() {
        // 8 shards: `individuals` (Sara) and `addresses` (the feed target)
        // live in different partitions, so the Sara page survives the swap.
        let w = soda_warehouse::minibank::build(42);
        let service = QueryService::start(
            Arc::new(EngineSnapshot::build(
                Arc::new(w.database),
                Arc::new(w.graph),
                SodaConfig {
                    shards: 8,
                    ..SodaConfig::default()
                },
            )),
            ServiceConfig::default(),
        );
        let sara = service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        assert_eq!(service.metrics().cache.len, 1);

        admin(&service)
            .ingest(&address_feed(900, "Retainville"))
            .unwrap();
        let m = service.metrics();
        assert_eq!(m.cache.retained, 1, "the Sara page must be carried over");
        assert_eq!(m.cache.len, 1);

        // The next identical submission is a cache hit on the new
        // generation — no recomputation — and the answer is right.
        let again = service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        assert_eq!(sara, again);
        let m = service.metrics();
        assert_eq!(m.cache.hits, 1);
        assert_eq!(m.pipeline_executions, 1);

        // A page whose probes scanned the ingested shard is NOT retained.
        service
            .query(QueryRequest::new("Retainville"))
            .wait()
            .unwrap();
        admin(&service)
            .ingest(&address_feed(901, "Retainville"))
            .unwrap();
        let m = service.metrics();
        // The address-touching page died; the Sara page survived again.
        assert_eq!(m.cache.retained, 2);
        let recomputed = service
            .query(QueryRequest::new("Retainville"))
            .wait()
            .unwrap()
            .page;
        // Two matching rows now — the recomputation saw the second ingest.
        assert_eq!(m.cache.len, 1, "the stale Retainville page was purged");
        assert!(!recomputed.results.is_empty());
        assert_eq!(service.metrics().pipeline_executions, 3);
    }

    #[test]
    fn full_reloads_still_purge_everything() {
        let service = minibank_service(ServiceConfig::default());
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        let w = soda_warehouse::minibank::build(42);
        admin(&service).reload(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig::default(),
        ));
        let m = service.metrics();
        assert_eq!(m.cache.len, 0);
        assert_eq!(m.cache.retained, 0, "full reloads retain nothing");
    }

    #[test]
    fn background_compactor_fires_past_the_threshold() {
        let service = minibank_service(ServiceConfig {
            compaction: Some(CompactionConfig {
                policy: CompactionPolicy::eager(),
                poll_interval: Duration::from_millis(10),
            }),
            ..ServiceConfig::default()
        });
        admin(&service)
            .ingest(&address_feed(900, "Streamville"))
            .unwrap();
        // The worker is nudged by the ingest; give it a moment.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let m = service.metrics();
            if m.ingest.compactions >= 1 && m.shards.log_postings.iter().sum::<usize>() == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "compaction did not fire: {m:?}");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Queries keep answering correctly throughout.
        let page = service
            .query(QueryRequest::new("Streamville"))
            .wait()
            .unwrap()
            .page;
        assert!(!page.results.is_empty());
    }

    #[test]
    fn background_compactor_folds_mask_only_logs() {
        // A Truncate leaves a log with zero postings and zero rows but a
        // mask that taxes every probe of its shard — the worker must fold
        // it even though the size gauges never cross a threshold.
        let service = minibank_service(ServiceConfig {
            compaction: Some(CompactionConfig {
                policy: CompactionPolicy::default(),
                poll_interval: Duration::from_millis(10),
            }),
            ..ServiceConfig::default()
        });
        admin(&service)
            .ingest(&ChangeFeed::new().truncate("securities"))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let m = service.metrics();
            if m.ingest.compactions >= 1 && m.shards.log_masks.iter().sum::<usize>() == 0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "mask-only compaction did not fire: {m:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(service.engine().shards_with_side_logs().is_empty());
    }

    #[test]
    fn metrics_polling_does_not_deadlock_cache_hits() {
        // Regression test: `submit` locks cache then latency on a hit, while
        // `metrics` reads latency and cache — with nested guards in either
        // path this interleaving deadlocks within a few iterations.
        let service = minibank_service(ServiceConfig::default());
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    for _ in 0..500 {
                        service
                            .query(QueryRequest::new("Sara Guttinger"))
                            .wait()
                            .unwrap();
                    }
                });
                scope.spawn(|| {
                    for _ in 0..500 {
                        let m = service.metrics();
                        assert!(m.completed >= 1);
                    }
                });
            }
        });
    }

    #[test]
    fn latency_accounting_splits_queue_wait_from_execution() {
        let service = minibank_service(ServiceConfig::default());
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        // And one cache hit, which must not touch the executed
        // distributions.
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        let m = service.metrics();
        assert_eq!(m.completed, 2);
        assert!(m.execution.max > Duration::ZERO, "{m:?}");
        // The split is exhaustive: neither component exceeds the end-to-end
        // figure of the executed query.
        assert!(m.queue_wait.max <= m.latency.max);
        assert!(m.execution.max <= m.latency.max);
        // Histogram-backed percentiles are monotone by construction.
        assert!(m.latency.min <= m.latency.p50);
        assert!(m.latency.p50 <= m.latency.p95);
        assert!(m.latency.p95 <= m.latency.max);
        // Stage latencies cover the executed pipeline (lookup ran).
        assert!(m.stages.lookup.max > Duration::ZERO);
        assert_eq!(m.stages.lookup.min, m.stages.lookup.max, "one execution");
    }

    #[test]
    fn slow_query_threshold_captures_full_traces() {
        // A zero threshold marks every executed query as slow —
        // deterministic without timing games.
        let service = minibank_service(ServiceConfig {
            slow_query_threshold: Some(Duration::ZERO),
            ..ServiceConfig::default()
        });
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        // The cache hit is answered on the caller's thread — never captured.
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        let m = service.metrics();
        assert_eq!(m.slow_queries, 1);
        let slow = service.slow_queries();
        assert_eq!(slow.len(), 1);
        let capture = &slow[0];
        assert_eq!(capture.input, "Sara Guttinger");
        assert!(capture.total >= capture.execution);
        let root = capture.trace.find("query").expect("query root span");
        for stage in soda_trace::names::STAGES {
            assert!(
                root.children.iter().any(|c| c.name == stage),
                "missing stage {stage} in {}",
                capture.trace.render()
            );
        }
        assert!(service
            .events()
            .iter()
            .any(|e| e.kind == "slow_query" && e.detail.contains("Sara Guttinger")));
    }

    #[test]
    fn without_a_threshold_no_traces_are_captured() {
        let service = minibank_service(ServiceConfig::default());
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        assert_eq!(service.metrics().slow_queries, 0);
        assert!(service.slow_queries().is_empty());
    }

    #[test]
    fn traced_queries_match_untraced_and_yield_the_span_tree() {
        let service = minibank_service(ServiceConfig::default());
        let expected = service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        // A traced request for a warm page is a cache hit like any other
        // submission: the cached page comes back with a synthesized
        // `cache_hit` root instead of a re-execution.
        let traced = service
            .query(QueryRequest::new("Sara Guttinger").traced())
            .wait()
            .unwrap();
        assert_eq!(
            traced.page, expected.page,
            "tracing must not change answers"
        );
        let warm_trace = traced
            .trace
            .as_ref()
            .expect("a traced response carries its trace");
        let warm_root = warm_trace.find("query").expect("query root span");
        assert!(
            warm_root.children.iter().any(|c| c.name == "cache_hit"),
            "warm traced hit should record a cache_hit event:\n{}",
            warm_trace.render()
        );
        let m = service.metrics();
        assert_eq!(m.pipeline_executions, 1);
        assert_eq!(m.cache.hits, 1);
        // A cold traced request executes the full pipeline and yields the
        // five-stage span tree.
        admin(&service).clear_cache();
        let traced = service
            .query(QueryRequest::new("Sara Guttinger").traced())
            .wait()
            .unwrap();
        assert_eq!(
            traced.page, expected.page,
            "tracing must not change answers"
        );
        let trace = traced
            .trace
            .as_ref()
            .expect("a traced response carries its trace");
        let root = trace.find("query").expect("query root span");
        assert_eq!(root.children.len(), 5, "{}", trace.render());
        let m = service.metrics();
        assert_eq!(m.pipeline_executions, 2);
        assert_eq!(m.completed, 3);
    }

    #[test]
    fn traced_queries_surface_engine_errors() {
        let service = minibank_service(ServiceConfig::default());
        match service.query(QueryRequest::new("   ").traced()).wait() {
            Err(ServiceError::Engine(SodaError::EmptyQuery)) => {}
            other => panic!("expected EmptyQuery, got {other:?}"),
        }
    }

    #[test]
    fn events_record_the_operational_history_in_order() {
        let service = minibank_service(ServiceConfig::default());
        admin(&service)
            .ingest(&address_feed(900, "Streamville"))
            .unwrap();
        let shards: Vec<usize> = (0..service.engine().shard_count()).collect();
        admin(&service).compact(&shards).expect("a log to fold");
        let w = soda_warehouse::minibank::build(42);
        admin(&service).reload(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig::default(),
        ));
        let events = service.events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["ingest", "compaction", "reload"]);
        // Sequence numbers are monotone and the offsets non-decreasing.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
            assert!(pair[0].at <= pair[1].at);
        }
        assert!(
            events[0].detail.contains("1 event, 1 row over addresses"),
            "{}",
            events[0].detail
        );
    }

    #[test]
    fn metrics_text_validates_and_names_every_family() {
        let service = minibank_service(ServiceConfig {
            slow_query_threshold: Some(Duration::ZERO),
            ..ServiceConfig::default()
        });
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        admin(&service)
            .ingest(&address_feed(900, "Streamville"))
            .unwrap();
        let text = service.metrics_text();
        soda_trace::prom::validate(&text).expect("exposition must validate");
        for family in [
            "soda_queries_completed_total",
            "soda_cache_hits_total",
            "soda_slow_queries_total",
            "soda_shard_probes_total",
            "soda_query_duration_seconds",
            "soda_queue_wait_seconds",
            "soda_execution_duration_seconds",
            "soda_stage_duration_seconds",
            "soda_tenant_queries_completed_total",
            "soda_tenant_qps",
            "soda_tenant_warm_hits_total",
            "soda_tenant_pipeline_executions_total",
            "soda_tenant_admission_waits_total",
            "soda_tenant_queue_depth",
            "soda_tenant_generation",
            "soda_tenant_reloads_total",
            "soda_tenant_ingest_feeds_total",
            "soda_tenant_compactions_total",
            "soda_tenant_query_duration_seconds",
        ] {
            assert!(text.contains(&format!("# TYPE {family} ")), "{family}");
        }
        // The stage histograms carry one series per pipeline stage.
        for stage in soda_trace::names::STAGES {
            assert!(text.contains(&format!("stage=\"{stage}\"")), "{stage}");
        }
        // Every tenant family is labelled with the tenant name.
        assert!(text.contains("soda_tenant_queries_completed_total{tenant=\"default\"} 2"));
        // A non-durable service exposes no journal families.
        assert!(!text.contains("soda_journal_bytes"));
    }

    #[test]
    fn fluent_config_builder_matches_struct_literals() {
        let built = ServiceConfig::default()
            .workers(3)
            .queue_capacity(17)
            .cache_capacity(9)
            .slow_query_threshold(Duration::from_millis(5));
        let literal = ServiceConfig {
            workers: 3,
            queue_capacity: 17,
            cache_capacity: 9,
            slow_query_threshold: Some(Duration::from_millis(5)),
            ..ServiceConfig::default()
        };
        assert_eq!(built.workers, literal.workers);
        assert_eq!(built.queue_capacity, literal.queue_capacity);
        assert_eq!(built.cache_capacity, literal.cache_capacity);
        assert_eq!(built.slow_query_threshold, literal.slow_query_threshold);
    }

    #[test]
    fn unknown_tenants_are_rejected_up_front() {
        let service = minibank_service(ServiceConfig::default());
        let handle = service.query(QueryRequest::new("customers").tenant("nobody"));
        assert!(
            handle.is_ready(),
            "unknown tenants must not reach the queue"
        );
        match handle.wait() {
            Err(ServiceError::UnknownTenant(t)) => assert_eq!(t, "nobody"),
            other => panic!("expected UnknownTenant, got {other:?}"),
        }
        assert!(service.admin("nobody").is_err());
        assert_eq!(service.metrics().completed, 0);
    }

    #[test]
    fn hosted_tenants_answer_from_their_own_warehouse() {
        let service = minibank_service(ServiceConfig::default());
        let other = soda_warehouse::minibank::build(7);
        let snapshot = Arc::new(EngineSnapshot::build(
            Arc::new(other.database),
            Arc::new(other.graph),
            SodaConfig::default(),
        ));
        service.add_tenant("acme", Arc::clone(&snapshot)).unwrap();
        // Registering the same name (or the default name) again is an error.
        assert!(service.add_tenant("acme", Arc::clone(&snapshot)).is_err());
        assert!(service.add_tenant("default", snapshot).is_err());

        let default_page = service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap()
            .page;
        let acme_page = service
            .query(QueryRequest::new("Sara Guttinger").tenant("acme"))
            .wait()
            .unwrap()
            .page;
        // Both warehouses answer; the tenant-folded fingerprints (and thus
        // the cache keys) differ even if the snapshots were identical.
        assert!(!default_page.results.is_empty());
        assert!(!acme_page.results.is_empty());
        let acme_admin = service.admin("acme").unwrap();
        assert_ne!(
            TenantId::default().fold(service.engine().cache_fingerprint()),
            acme_admin
                .id()
                .fold(acme_admin.engine().cache_fingerprint()),
            "tenants must never share cache keys"
        );
        let m = service.metrics();
        // `>=`: the SODA_TEST_TENANTS CI knob may host extra shadow tenants.
        assert!(m.tenants.len() >= 2);
        let acme = m.tenants.iter().find(|t| t.tenant == "acme").unwrap();
        assert_eq!(acme.completed, 1);
        assert_eq!(acme.executions, 1);
    }

    #[test]
    fn tenant_scoped_cache_clears_leave_other_tenants_warm() {
        let service = minibank_service(ServiceConfig::default());
        let other = soda_warehouse::minibank::build(7);
        service
            .add_tenant(
                "acme",
                Arc::new(EngineSnapshot::build(
                    Arc::new(other.database),
                    Arc::new(other.graph),
                    SodaConfig::default(),
                )),
            )
            .unwrap();
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        service
            .query(QueryRequest::new("Sara Guttinger").tenant("acme"))
            .wait()
            .unwrap();
        assert_eq!(service.metrics().cache.len, 2);
        service.admin("acme").unwrap().clear_cache();
        let m = service.metrics();
        assert_eq!(m.cache.len, 1, "only acme's page may be dropped");
        // The default tenant still answers warm.
        service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        assert_eq!(service.metrics().cache.hits, 1);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_delegate() {
        let service = minibank_service(ServiceConfig::default());
        let a = service
            .submit(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        let b = service
            .query(QueryRequest::new("Sara Guttinger"))
            .wait()
            .unwrap();
        assert_eq!(a, b);
        let batch = service.submit_batch(vec![QueryRequest::new("customers")]);
        assert_eq!(batch.len(), 1);
        assert!(batch[0].is_ok());
        let traced = service
            .submit_traced(QueryRequest::new("customers"))
            .unwrap();
        assert_eq!(traced.page, batch[0].as_ref().unwrap().page);
        service.ingest(&address_feed(900, "Streamville")).unwrap();
        assert_eq!(service.generation(), 1);
        service.clear_cache();
        assert_eq!(service.metrics().cache.len, 0);
        let w = soda_warehouse::minibank::build(42);
        service.reload(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig::default(),
        ));
        assert_eq!(service.generation(), 2);
    }
}
