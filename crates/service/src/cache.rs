//! A small least-recently-used cache with hit / miss / eviction accounting.
//!
//! SODA's interpretation pipeline recomputes everything per query; business
//! users, however, repeat queries constantly (dashboards, back buttons,
//! colleagues pasting the same question).  The service keys this cache by the
//! *canonical* form of the query ([`soda_core::normalize_query`]) plus the
//! engine-configuration fingerprint, so equivalent spellings share one slot
//! and differently-configured engines never do.
//!
//! Implementation: `std` only — a `HashMap` for storage plus a `BTreeMap`
//! keyed by a monotonically increasing recency stamp for O(log n) eviction
//! order.  Not internally synchronised; the service wraps it in a `Mutex`.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Counters describing cache effectiveness, embedded in
/// [`ServiceMetrics`](crate::metrics::ServiceMetrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the engine.
    pub misses: u64,
    /// Entries removed to make room for newer ones.
    pub evictions: u64,
    /// Entries proactively dropped because their snapshot generation was
    /// swapped out (see [`LruCache::retain`]); distinct from capacity
    /// evictions.
    pub purged: u64,
    /// Entries carried *across* a data-only snapshot swap because their
    /// queries provably never consulted a rebuilt or ingested partition
    /// (see [`LruCache::rekey`]) — recomputations the generation-aware
    /// retention saved.
    pub retained: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum number of resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    stamp: u64,
}

/// A bounded LRU map.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, Slot<V>>,
    recency: BTreeMap<u64, K>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    purged: u64,
    retained: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            purged: 0,
            retained: 0,
        }
    }

    fn next_stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit and
    /// counting the outcome either way.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let stamp = self.next_stamp();
        match self.map.get_mut(key) {
            Some(slot) => {
                self.recency.remove(&slot.stamp);
                slot.stamp = stamp;
                self.recency.insert(stamp, key.clone());
                self.hits += 1;
                Some(slot.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least-recently-used one
    /// when the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        let stamp = self.next_stamp();
        if let Some(slot) = self.map.get_mut(&key) {
            self.recency.remove(&slot.stamp);
            slot.value = value;
            slot.stamp = stamp;
            self.recency.insert(stamp, key);
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some((&oldest, _)) = self.recency.iter().next() {
                if let Some(victim) = self.recency.remove(&oldest) {
                    self.map.remove(&victim);
                    self.evictions += 1;
                }
            }
        }
        self.map.insert(key.clone(), Slot { value, stamp });
        self.recency.insert(stamp, key);
    }

    /// Drops every entry; the hit / miss / eviction counters survive so that
    /// metrics keep describing the whole service lifetime.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }

    /// Drops every entry whose key fails the predicate, returning how many
    /// were removed (also accumulated in [`CacheStats::purged`]).  The
    /// serving layer calls this after a snapshot swap with "does this key
    /// carry the live fingerprint?" so superseded generations free their
    /// slots immediately instead of aging out of the LRU.
    pub fn retain<F: FnMut(&K) -> bool>(&mut self, mut keep: F) -> usize {
        let mut dropped_stamps = Vec::new();
        self.map.retain(|key, slot| {
            let keep = keep(key);
            if !keep {
                dropped_stamps.push(slot.stamp);
            }
            keep
        });
        for stamp in &dropped_stamps {
            self.recency.remove(stamp);
        }
        self.purged += dropped_stamps.len() as u64;
        dropped_stamps.len()
    }

    /// Re-keys or drops every entry in one pass — the swap-time primitive of
    /// generation-aware page retention.  For each entry, `decide` returns
    /// the key it should live under from now on (typically the old key with
    /// the new snapshot fingerprint substituted) or `None` to drop it.
    /// Recency order survives re-keying.  Returns `(retained, dropped)`;
    /// entries re-keyed to a *different* key count into
    /// [`CacheStats::retained`], dropped ones into [`CacheStats::purged`].
    pub fn rekey<F: FnMut(&K, &V) -> Option<K>>(&mut self, mut decide: F) -> (usize, usize) {
        let old = std::mem::take(&mut self.map);
        self.recency.clear();
        let (mut retained, mut dropped) = (0usize, 0usize);
        for (key, slot) in old {
            match decide(&key, &slot.value) {
                Some(new_key) => {
                    if new_key != key {
                        retained += 1;
                    }
                    let stamp = slot.stamp;
                    if let Some(evicted) = self.map.insert(new_key.clone(), slot) {
                        // Two entries converged on one key (e.g. a fresh
                        // live-generation page raced the retention pass that
                        // promotes its predecessor): last one wins, and the
                        // loser's stamp must not dangle in the recency index
                        // — a dangling stamp would later evict the live
                        // entry while the map stays over-counted.
                        self.recency.remove(&evicted.stamp);
                        dropped += 1;
                    }
                    self.recency.insert(stamp, new_key);
                }
                None => dropped += 1,
            }
        }
        self.retained += retained as u64;
        self.purged += dropped as u64;
        (retained, dropped)
    }

    /// Iterates the resident entries oldest-first (least-recently-used
    /// first).  The page-persistence layer writes entries in this order so
    /// that re-inserting them sequentially on reload reproduces the recency
    /// order — the restored cache evicts in the same order the drained one
    /// would have.
    pub fn iter_oldest_first(&self) -> impl Iterator<Item = (&K, &V)> {
        self.recency.values().filter_map(|key| {
            self.map
                .get_key_value(key)
                .map(|(k, slot)| (k, &slot.value))
        })
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            purged: self.purged,
            retained: self.retained,
            len: self.map.len(),
            capacity: self.capacity,
        }
    }
}

/// The key under which a served result page is cached.
///
/// `normalized` is the canonical query text; `snapshot_fingerprint` is
/// [`soda_core::EngineSnapshot::cache_fingerprint`] — the engine
/// configuration fingerprint folded with the snapshot's generation vector —
/// so result pages computed under different configurations *or different
/// snapshot generations* never collide; page coordinates distinguish the
/// pages of one result list.  Folding the generations in is what makes hot
/// snapshot swaps safe: a page computed against a swapped-out generation is
/// simply no longer addressable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical query text ([`soda_core::normalize_query`]).
    pub normalized: String,
    /// Snapshot fingerprint (configuration ⊕ generation vector).
    pub snapshot_fingerprint: u64,
    /// Zero-based page index.
    pub page: usize,
    /// Requested page size.
    pub page_size: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> CacheKey {
        CacheKey {
            normalized: s.to_string(),
            snapshot_fingerprint: 7,
            page: 0,
            page_size: 10,
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut cache: LruCache<CacheKey, u32> = LruCache::new(4);
        assert_eq!(cache.get(&key("a")), None);
        cache.insert(key("a"), 1);
        assert_eq!(cache.get(&key("a")), Some(1));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.len, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn least_recently_used_entry_is_evicted() {
        let mut cache: LruCache<CacheKey, u32> = LruCache::new(2);
        cache.insert(key("a"), 1);
        cache.insert(key("b"), 2);
        // Touch "a" so "b" becomes the LRU entry.
        assert_eq!(cache.get(&key("a")), Some(1));
        cache.insert(key("c"), 3);
        assert_eq!(cache.get(&key("b")), None, "b should have been evicted");
        assert_eq!(cache.get(&key("a")), Some(1));
        assert_eq!(cache.get(&key("c")), Some(3));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut cache: LruCache<CacheKey, u32> = LruCache::new(2);
        cache.insert(key("a"), 1);
        cache.insert(key("b"), 2);
        cache.insert(key("a"), 10);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(&key("a")), Some(10));
    }

    #[test]
    fn clear_keeps_lifetime_counters() {
        let mut cache: LruCache<CacheKey, u32> = LruCache::new(2);
        cache.insert(key("a"), 1);
        let _ = cache.get(&key("a"));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.get(&key("a")), None);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut cache: LruCache<CacheKey, u32> = LruCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(key("a"), 1);
        cache.insert(key("b"), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_with_different_fingerprints_do_not_collide() {
        let mut cache: LruCache<CacheKey, u32> = LruCache::new(4);
        let mut other = key("a");
        other.snapshot_fingerprint = 8;
        cache.insert(key("a"), 1);
        cache.insert(other.clone(), 2);
        assert_eq!(cache.get(&key("a")), Some(1));
        assert_eq!(cache.get(&other), Some(2));
    }

    #[test]
    fn rekey_remaps_survivors_and_counts_both_outcomes() {
        let mut cache: LruCache<CacheKey, u32> = LruCache::new(4);
        cache.insert(key("a"), 1);
        cache.insert(key("b"), 2);
        cache.insert(key("c"), 3);
        // Promote "a" and "c" to fingerprint 9, drop "b".
        let (retained, dropped) = cache.rekey(|k, _| {
            (k.normalized != "b").then(|| CacheKey {
                snapshot_fingerprint: 9,
                ..k.clone()
            })
        });
        assert_eq!((retained, dropped), (2, 1));
        let stats = cache.stats();
        assert_eq!(stats.retained, 2);
        assert_eq!(stats.purged, 1);
        assert_eq!(stats.len, 2);
        // The survivors answer under their new key only.
        let mut a9 = key("a");
        a9.snapshot_fingerprint = 9;
        assert_eq!(cache.get(&a9), Some(1));
        assert_eq!(cache.get(&key("a")), None);
        // LRU order survived: "a" was just touched, so "c" evicts first.
        cache.insert(key("d"), 4);
        cache.insert(key("e"), 5);
        cache.insert(key("f"), 6);
        let mut c9 = key("c");
        c9.snapshot_fingerprint = 9;
        assert_eq!(cache.get(&c9), None, "c was the LRU survivor");
        assert_eq!(cache.get(&a9), Some(1));
    }

    #[test]
    fn rekey_collisions_keep_map_and_recency_consistent() {
        let mut cache: LruCache<CacheKey, u32> = LruCache::new(4);
        // "a" under the superseded fingerprint 7, plus a fresh racing entry
        // for the same query already under the live fingerprint 9.
        let mut a9 = key("a");
        a9.snapshot_fingerprint = 9;
        cache.insert(key("a"), 1);
        cache.insert(a9.clone(), 2);
        // The retention pass promotes everything to fingerprint 9: the two
        // entries converge on one key.
        cache.rekey(|k, _| {
            Some(CacheKey {
                snapshot_fingerprint: 9,
                ..k.clone()
            })
        });
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&a9).is_some());
        // No dangling recency stamp: filling the cache to capacity must
        // evict exactly the LRU entries, never phantom-evict the survivor.
        cache.insert(key("b"), 3);
        cache.insert(key("c"), 4);
        cache.insert(key("d"), 5);
        assert_eq!(cache.len(), 4);
        cache.insert(key("e"), 6);
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.get(&a9), None, "a9 was the true LRU entry");
        assert_eq!(cache.get(&key("e")), Some(6));
    }

    #[test]
    fn rekey_keeping_the_same_key_counts_as_neither() {
        let mut cache: LruCache<CacheKey, u32> = LruCache::new(4);
        cache.insert(key("a"), 1);
        let (retained, dropped) = cache.rekey(|k, _| Some(k.clone()));
        assert_eq!((retained, dropped), (0, 0));
        assert_eq!(cache.stats().retained, 0);
        assert_eq!(cache.get(&key("a")), Some(1));
    }

    #[test]
    fn retain_purges_stale_fingerprints_and_keeps_eviction_order_sane() {
        let mut cache: LruCache<CacheKey, u32> = LruCache::new(4);
        let mut stale = key("a");
        stale.snapshot_fingerprint = 8;
        cache.insert(key("a"), 1);
        cache.insert(key("b"), 2);
        cache.insert(stale.clone(), 3);
        let dropped = cache.retain(|k| k.snapshot_fingerprint == 7);
        assert_eq!(dropped, 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().purged, 1);
        assert_eq!(cache.stats().evictions, 0, "purges are not evictions");
        assert_eq!(cache.get(&stale), None);
        // The survivors still evict in LRU order afterwards.
        assert_eq!(cache.get(&key("a")), Some(1));
        cache.insert(key("c"), 4);
        cache.insert(key("d"), 5);
        cache.insert(key("e"), 6);
        assert_eq!(cache.get(&key("b")), None, "b was the LRU survivor");
        assert_eq!(cache.get(&key("a")), Some(1));
    }
}
