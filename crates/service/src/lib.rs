//! # soda-service
//!
//! The serving layer of the SODA reproduction: where `soda-core` answers one
//! query from one thread, this crate turns a built engine into a long-lived,
//! thread-safe, **multi-tenant query service** — the shape a warehouse
//! deployment needs when many business users (across many hosted
//! warehouses) hit the same worker pool all day.
//!
//! Four pieces, all `std`-only:
//!
//! * [`QueryService`] — a bounded worker pool over per-tenant hot-swappable
//!   [`EngineSnapshot`](soda_core::EngineSnapshot)s
//!   ([`soda_core::SnapshotHandle`]), with a single request surface: build a
//!   [`QueryRequest`] (optionally [`.tenant(..)`](QueryRequest::tenant) /
//!   [`.traced()`](QueryRequest::traced)), pass it to
//!   [`query`](QueryService::query), get a [`JobHandle`] that yields a
//!   [`QueryResponse`].  Blocking backpressure when the job queue is full,
//!   in-flight request coalescing (concurrent misses on one cache key
//!   execute the pipeline once and share the page), and zero-downtime
//!   warehouse reloads: the [`TenantAdmin`] facade
//!   ([`admin`](QueryService::admin)) swaps in new snapshot generations —
//!   `reload` / `rebuild_shards` / `refresh_graph` — without draining the
//!   pool; in-flight queries finish on the generation they pinned at
//!   submission.  Streaming deltas ride the same machinery:
//!   [`TenantAdmin::ingest`] absorbs a row-level
//!   [`ChangeFeed`](soda_core::ChangeFeed) into per-shard side logs without
//!   rebuilding a single partition, and a background compaction worker
//!   (see [`CompactionConfig`]) folds grown logs back into rebuilt
//!   partitions once they cross a budget.  With a [`DurabilityConfig`] the
//!   service is additionally **crash-safe**: ingests are journaled
//!   write-ahead to an on-disk feed journal ([`soda_journal`]), compactions
//!   checkpoint and truncate it, [`QueryService::recover`] replays it on
//!   boot into byte-identical answers, and a graceful drain persists the
//!   warm cache pages so a restarted service answers repeated queries at
//!   warm-hit latency.
//! * [`TenantRegistry`] (see the [`tenants`] module) — multi-tenant
//!   hosting: [`QueryService::add_tenant`] registers further warehouses at
//!   runtime, each with its own snapshot handle, queue lane, admission
//!   quota and (on a durable service) write-ahead journal, while the worker
//!   pool, the cache and the probe-thread budget stay shared.  Cache keys
//!   fold the tenant fingerprint ([`TenantId::fold`]), so tenants share one
//!   LRU without any possibility of cross-tenant hits.
//! * [`LruCache`] — an interpretation cache mapping *canonicalized* queries
//!   ([`soda_core::normalize_query`]) plus the tenant-folded snapshot
//!   fingerprint (engine configuration ⊕ generation vector,
//!   [`soda_core::EngineSnapshot::cache_fingerprint`]) to served
//!   [`ResultPage`](soda_core::ResultPage)s, with hit / miss / eviction /
//!   purge accounting — pages of swapped-out generations stop being
//!   addressable and are purged.
//! * [`ServiceMetrics`] — a health snapshot: QPS, histogram-backed latency
//!   min / mean / p50 / p95 / max with the **queue-wait / execution split**
//!   and per-stage pipeline latencies, cache hit rate, queue depth,
//!   coalescing and reload/generation counters, the per-shard sizes /
//!   probe counts / generations of the *live* snapshot's sharded lookup
//!   layer ([`soda_core::ShardStats`]), and the per-tenant fairness split
//!   ([`TenantMetrics`]).  The same figures export as a Prometheus text
//!   document via [`QueryService::metrics_text`]; a bounded
//!   operational-event log ([`QueryService::events`], filterable per
//!   tenant via [`QueryService::events_for`]), a slow-query log of full
//!   span trees ([`QueryService::slow_queries`], opt-in via
//!   [`ServiceConfig::slow_query_threshold`]), on-demand traced execution
//!   ([`QueryRequest::traced`]), **always-on adaptive trace sampling**
//!   ([`ServiceConfig::sampling`] → [`QueryService::sampled_traces`], with
//!   trace ids attached to the latency histograms as OpenMetrics
//!   exemplars) and a **per-tenant SLO burn-rate engine**
//!   ([`ServiceConfig::slo`] → [`QueryService::alerts`] and the
//!   `soda_slo_*` families) complete the observability surface (see
//!   `docs/OBSERVABILITY.md`).
//!
//! ```
//! use std::sync::Arc;
//! use soda_core::{EngineSnapshot, SodaConfig};
//! use soda_service::{QueryRequest, QueryService, ServiceConfig};
//!
//! let warehouse = soda_warehouse::minibank::build(42);
//! let snapshot = Arc::new(EngineSnapshot::build(
//!     Arc::new(warehouse.database),
//!     Arc::new(warehouse.graph),
//!     SodaConfig::default(),
//! ));
//! let service = QueryService::start(snapshot, ServiceConfig::default());
//! let response = service.query(QueryRequest::new("wealthy customers")).wait().unwrap();
//! assert!(response.page.results.iter().all(|r| r.sql.starts_with("SELECT")));
//! ```

pub mod cache;
pub mod metrics;
pub mod service;
pub mod slo;
pub mod tenants;

pub use cache::{CacheKey, CacheStats, LruCache};
pub use metrics::{
    DurabilityMetrics, IngestMetrics, LatencySummary, ServiceMetrics, StageLatencies, TenantMetrics,
};
pub use service::{
    CompactionConfig, DurabilityConfig, JobHandle, JobResult, QueryRequest, QueryResponse,
    QueryService, RecoveryReport, SampledTrace, SamplingConfig, ServiceConfig, ServiceError,
    SlowQuery, TracedQuery,
};
pub use slo::{AlertState, BurnAlert, SloConfig};
pub use tenants::{TenantAdmin, TenantRegistry};

// Re-exported so multi-tenant callers can name tenants without a direct
// dependency on the core crate.
pub use soda_core::TenantId;
// Re-exported so durable-service callers can set the fsync policy without a
// direct dependency on the journal crate.
pub use soda_journal::FsyncPolicy;
// Re-exported so observability callers can name the event/span types (and
// validate `metrics_text` output) without a direct `soda-trace` dependency.
pub use soda_trace::{OpEvent, QueryTrace};
