//! Per-tenant SLO burn-rate engine: declared latency/availability
//! objectives, rolling multi-window burn computation, and alert states.
//!
//! The model is the classic multi-window burn-rate alert: every completed
//! request lands in a per-tenant [`SloWindow`] — a ring of coarse time
//! slots, each holding a mergeable [`LogHistogram`] of end-to-end latency
//! plus an error count.  At read time the engine folds the slots covering
//! the **fast** window (a 5-minute-equivalent, catches sharp regressions)
//! and the **slow** window (a 1-hour-equivalent, filters blips) and
//! divides each window's bad-event fraction by the objective's error
//! budget `1 − target`:
//!
//! ```text
//! burn = (bad events / total events) / (1 − target)
//! ```
//!
//! A burn rate of 1.0 spends the error budget exactly at the sustainable
//! pace; an alert **fires** only when *both* windows exceed the
//! [`SloConfig::burn_threshold`] (the fast window alone marks the alert
//! **pending**), so a transient spike cannot page anyone but a sustained
//! burn fires within one fast window.
//!
//! Everything here is bucket-resolution arithmetic over mergeable
//! histograms: merging two window snapshots and computing the burn rate
//! gives exactly the figure of a single window that saw both streams —
//! property-tested below, and the reason the engine can fold per-slot
//! snapshots at read time instead of keeping per-window state in the
//! request path.

use std::collections::VecDeque;
use std::time::Duration;

use soda_trace::LogHistogram;

/// Declared service-level objectives and the burn-alert policy, attached
/// via `ServiceConfig::slo(...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// The latency objective: requests at or below this end-to-end latency
    /// are "good events" of the latency SLO.
    pub latency_objective: Duration,
    /// Fraction of requests that must meet the latency objective
    /// (e.g. `0.99` — the error budget is the remaining 1%).
    pub latency_target: f64,
    /// Fraction of requests that must succeed (availability SLO).
    pub availability_target: f64,
    /// The fast burn window (sharp-regression detector).
    pub fast_window: Duration,
    /// The slow burn window (blip filter).
    pub slow_window: Duration,
    /// Slot width of the rolling window ring; the window arithmetic is
    /// slot-resolution, so this bounds both memory and precision.
    pub resolution: Duration,
    /// Burn rate both windows must exceed for an alert to fire.
    pub burn_threshold: f64,
    /// Per-tenant latency-objective overrides (tenant name → objective);
    /// tenants without an override use [`latency_objective`](Self::latency_objective).
    pub tenant_latency: Vec<(String, Duration)>,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            latency_objective: Duration::from_millis(250),
            latency_target: 0.99,
            availability_target: 0.999,
            fast_window: Duration::from_secs(5 * 60),
            slow_window: Duration::from_secs(60 * 60),
            resolution: Duration::from_secs(30),
            burn_threshold: 1.0,
            tenant_latency: Vec::new(),
        }
    }
}

impl SloConfig {
    /// Sets the default latency objective.
    pub fn latency_objective(mut self, objective: Duration) -> Self {
        self.latency_objective = objective;
        self
    }

    /// Sets the latency target fraction.
    pub fn latency_target(mut self, target: f64) -> Self {
        self.latency_target = target;
        self
    }

    /// Sets the availability target fraction.
    pub fn availability_target(mut self, target: f64) -> Self {
        self.availability_target = target;
        self
    }

    /// Sets the fast burn window.
    pub fn fast_window(mut self, window: Duration) -> Self {
        self.fast_window = window;
        self
    }

    /// Sets the slow burn window.
    pub fn slow_window(mut self, window: Duration) -> Self {
        self.slow_window = window;
        self
    }

    /// Sets the rolling-window slot width.
    pub fn resolution(mut self, resolution: Duration) -> Self {
        self.resolution = resolution;
        self
    }

    /// Sets the burn rate both windows must exceed to fire.
    pub fn burn_threshold(mut self, threshold: f64) -> Self {
        self.burn_threshold = threshold;
        self
    }

    /// Overrides the latency objective for one tenant.
    pub fn tenant_latency(mut self, tenant: impl Into<String>, objective: Duration) -> Self {
        self.tenant_latency.push((tenant.into(), objective));
        self
    }

    /// The latency objective in force for `tenant`.
    pub fn objective_for(&self, tenant: &str) -> Duration {
        self.tenant_latency
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, objective)| *objective)
            .unwrap_or(self.latency_objective)
    }
}

/// One slot (or one folded window) of SLO-relevant traffic: the latency
/// distribution of completed requests plus the failed-request count.
#[derive(Debug, Clone, Default)]
pub struct WindowBucket {
    /// End-to-end latency of successful requests.
    pub latency: LogHistogram,
    /// Requests that failed outright (availability bad events).
    pub errors: u64,
}

impl WindowBucket {
    /// Records one completed request.
    pub fn record(&mut self, e2e: Duration, ok: bool) {
        if ok {
            self.latency.record(e2e);
        } else {
            self.errors += 1;
        }
    }

    /// Folds another bucket in; burn rates over the merge equal burn rates
    /// over a bucket that saw both streams (property-tested).
    pub fn merge(&mut self, other: &WindowBucket) {
        self.latency.merge(&other.latency);
        self.errors += other.errors;
    }
}

/// The latency burn rate of one window: the fraction of requests missing
/// the objective, divided by the error budget `1 − target`.  Zero when the
/// window is empty.
pub fn latency_burn_rate(bucket: &WindowBucket, objective: Duration, target: f64) -> f64 {
    let total = bucket.latency.count();
    if total == 0 {
        return 0.0;
    }
    let good = bucket.latency.count_at_or_below(objective);
    let bad_fraction = (total - good) as f64 / total as f64;
    bad_fraction / (1.0 - target).max(f64::EPSILON)
}

/// The availability burn rate of one window: the failed fraction divided
/// by the error budget.  Zero when the window is empty.
pub fn availability_burn_rate(bucket: &WindowBucket, target: f64) -> f64 {
    let total = bucket.latency.count() + bucket.errors;
    if total == 0 {
        return 0.0;
    }
    let bad_fraction = bucket.errors as f64 / total as f64;
    bad_fraction / (1.0 - target).max(f64::EPSILON)
}

/// The state of one burn alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Neither window exceeds the threshold.
    Ok,
    /// Exactly one window exceeds the threshold (watch, don't page).
    Pending,
    /// Both windows exceed the threshold: the budget is burning for real.
    Firing,
}

impl AlertState {
    /// Stable lowercase label for events and metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }

    /// Numeric encoding for the `soda_slo_alert_state` gauge
    /// (0 = ok, 1 = pending, 2 = firing).
    pub fn code(&self) -> u64 {
        match self {
            AlertState::Ok => 0,
            AlertState::Pending => 1,
            AlertState::Firing => 2,
        }
    }
}

/// The multi-window alert rule: firing iff **both** windows exceed the
/// threshold, pending iff exactly one does.
pub fn alert_state(fast_burn: f64, slow_burn: f64, threshold: f64) -> AlertState {
    match (fast_burn > threshold, slow_burn > threshold) {
        (true, true) => AlertState::Firing,
        (false, false) => AlertState::Ok,
        _ => AlertState::Pending,
    }
}

/// One burn alert surfaced by `QueryService::alerts()`.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnAlert {
    /// The tenant whose budget is burning.
    pub tenant: String,
    /// Which objective: `"latency"` or `"availability"`.
    pub objective: &'static str,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// The multi-window verdict.
    pub state: AlertState,
}

/// A rolling ring of [`WindowBucket`] slots wide enough to cover the slow
/// window.  Recording is O(1) into the newest slot; reading folds the
/// slots a window covers into one mergeable bucket.
#[derive(Debug)]
pub struct SloWindow {
    resolution_nanos: u128,
    max_slots: usize,
    /// `(epoch, bucket)` pairs, oldest first; epochs strictly increase.
    slots: VecDeque<(u128, WindowBucket)>,
}

impl SloWindow {
    /// A ring sized for `config`'s slow window at its resolution.
    pub fn new(config: &SloConfig) -> Self {
        let resolution_nanos = config.resolution.as_nanos().max(1);
        let span = config.slow_window.as_nanos().max(resolution_nanos);
        // +1: a window rarely aligns with slot boundaries, so covering it
        // takes one slot more than the exact quotient.
        let max_slots = (span.div_ceil(resolution_nanos) + 1) as usize;
        Self {
            resolution_nanos,
            max_slots,
            slots: VecDeque::new(),
        }
    }

    /// Records one completed request observed at offset `at` from service
    /// start.
    pub fn record(&mut self, at: Duration, e2e: Duration, ok: bool) {
        let epoch = at.as_nanos() / self.resolution_nanos;
        match self.slots.back_mut() {
            Some((last, bucket)) if *last == epoch => bucket.record(e2e, ok),
            // Out-of-order stragglers (an older epoch after a newer slot
            // opened) fold into the newest slot: burn windows are
            // slot-resolution anyway, and epochs must stay sorted.
            Some((last, bucket)) if *last > epoch => bucket.record(e2e, ok),
            _ => {
                let mut bucket = WindowBucket::default();
                bucket.record(e2e, ok);
                self.slots.push_back((epoch, bucket));
                while self.slots.len() > self.max_slots {
                    self.slots.pop_front();
                }
            }
        }
    }

    /// Folds every slot the trailing `window` (ending at `now`) covers
    /// into one bucket.
    pub fn merged(&self, now: Duration, window: Duration) -> WindowBucket {
        let start = now.saturating_sub(window).as_nanos() / self.resolution_nanos;
        let mut out = WindowBucket::default();
        for (epoch, bucket) in &self.slots {
            if *epoch >= start {
                out.merge(bucket);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_windows_burn_nothing() {
        let bucket = WindowBucket::default();
        assert_eq!(
            latency_burn_rate(&bucket, Duration::from_millis(100), 0.99),
            0.0
        );
        assert_eq!(availability_burn_rate(&bucket, 0.999), 0.0);
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        let mut bucket = WindowBucket::default();
        // 90 fast requests, 10 slow ones: 10% bad against a 1% budget.
        for _ in 0..90 {
            bucket.record(Duration::from_millis(1), true);
        }
        for _ in 0..10 {
            bucket.record(Duration::from_secs(1), true);
        }
        let burn = latency_burn_rate(&bucket, Duration::from_millis(100), 0.99);
        assert!((burn - 10.0).abs() < 1e-6, "burn {burn}");
        // Availability: all succeeded.
        assert_eq!(availability_burn_rate(&bucket, 0.999), 0.0);
        // Now 10 errors against 100 successes: ~9.1% bad over a 0.1% budget.
        bucket.errors = 10;
        let burn = availability_burn_rate(&bucket, 0.999);
        assert!((burn - (10.0 / 110.0) / 0.001).abs() < 1e-6, "burn {burn}");
    }

    #[test]
    fn alert_truth_table() {
        assert_eq!(alert_state(0.5, 0.5, 1.0), AlertState::Ok);
        assert_eq!(alert_state(2.0, 0.5, 1.0), AlertState::Pending);
        assert_eq!(alert_state(0.5, 2.0, 1.0), AlertState::Pending);
        assert_eq!(alert_state(2.0, 2.0, 1.0), AlertState::Firing);
        // The threshold itself does not fire: "exceed" is strict.
        assert_eq!(alert_state(1.0, 1.0, 1.0), AlertState::Ok);
    }

    #[test]
    fn rolling_window_drops_slots_beyond_the_slow_window() {
        let config = SloConfig::default()
            .resolution(Duration::from_secs(1))
            .fast_window(Duration::from_secs(2))
            .slow_window(Duration::from_secs(4));
        let mut window = SloWindow::new(&config);
        for second in 0..60u64 {
            window.record(Duration::from_secs(second), Duration::from_millis(1), true);
        }
        // Memory is bounded by the slow window, not the traffic history.
        assert!(window.slots.len() <= 6, "{} slots", window.slots.len());
        let now = Duration::from_secs(60);
        // The fast window covers the newest ~3 slots, the slow ~5.
        let fast = window.merged(now, config.fast_window);
        let slow = window.merged(now, config.slow_window);
        assert!(fast.latency.count() >= 2 && fast.latency.count() <= 3);
        assert!(slow.latency.count() >= 4 && slow.latency.count() <= 5);
        assert!(fast.latency.count() <= slow.latency.count());
    }

    #[test]
    fn objective_overrides_resolve_per_tenant() {
        let config = SloConfig::default()
            .latency_objective(Duration::from_millis(100))
            .tenant_latency("acme", Duration::from_millis(5));
        assert_eq!(config.objective_for("acme"), Duration::from_millis(5));
        assert_eq!(config.objective_for("other"), Duration::from_millis(100));
    }

    proptest! {
        /// Merging window snapshots equals recomputing from scratch: any
        /// split of a request stream into two buckets burns exactly like
        /// a single bucket that saw everything.
        #[test]
        fn merged_snapshots_equal_recomputation(
            requests in proptest::collection::vec(
                (0u64..2_000_000_000, any::<bool>(), any::<bool>()),
                1..128,
            ),
            objective_us in 1u64..1_000_000,
            target in 0.5f64..0.9999,
        ) {
            let mut a = WindowBucket::default();
            let mut b = WindowBucket::default();
            let mut whole = WindowBucket::default();
            for &(nanos, ok, pick_a) in &requests {
                let e2e = Duration::from_nanos(nanos);
                if pick_a { a.record(e2e, ok) } else { b.record(e2e, ok) };
                whole.record(e2e, ok);
            }
            a.merge(&b);
            let objective = Duration::from_micros(objective_us);
            let merged_latency = latency_burn_rate(&a, objective, target);
            let whole_latency = latency_burn_rate(&whole, objective, target);
            prop_assert!(
                (merged_latency - whole_latency).abs() < 1e-9,
                "latency burn diverged: merged {merged_latency}, whole {whole_latency}"
            );
            let merged_avail = availability_burn_rate(&a, target);
            let whole_avail = availability_burn_rate(&whole, target);
            prop_assert!(
                (merged_avail - whole_avail).abs() < 1e-9,
                "availability burn diverged: merged {merged_avail}, whole {whole_avail}"
            );
        }

        /// The multi-window rule: an alert fires iff BOTH windows exceed
        /// the threshold, for arbitrary burn rates and thresholds.
        #[test]
        fn alert_fires_iff_both_windows_exceed(
            fast in 0.0f64..10.0,
            slow in 0.0f64..10.0,
            threshold in 0.1f64..5.0,
        ) {
            let state = alert_state(fast, slow, threshold);
            prop_assert_eq!(
                state == AlertState::Firing,
                fast > threshold && slow > threshold
            );
            prop_assert_eq!(
                state == AlertState::Ok,
                fast <= threshold && slow <= threshold
            );
        }
    }
}
