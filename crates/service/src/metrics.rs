//! Service observability: per-query latency accounting and the
//! [`ServiceMetrics`] snapshot (QPS, latency percentiles, cache hit rate,
//! queue depth).
//!
//! The recorder keeps exact lifetime aggregates (count, sum, min, max) plus a
//! bounded ring of recent samples from which the percentiles are computed, so
//! memory stays constant no matter how long the service runs.

use std::time::Duration;

use soda_core::ShardStats;

use crate::cache::CacheStats;

/// How many recent latency samples the percentile window retains.
const WINDOW: usize = 4096;

/// Aggregated latency figures.
///
/// `min`, `mean` and `max` are exact over the service lifetime; `p50` and
/// `p95` are computed over a sliding window of the most recent samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Fastest query served.
    pub min: Duration,
    /// Lifetime mean.
    pub mean: Duration,
    /// Median over the recent window.
    pub p50: Duration,
    /// 95th percentile over the recent window.
    pub p95: Duration,
    /// Slowest query served.
    pub max: Duration,
}

/// Streaming-ingestion counters, embedded in [`ServiceMetrics`].
///
/// Current side-log *sizes* live in [`ServiceMetrics::shards`]
/// (`log_postings` / `log_rows`, re-sampled from the live snapshot); these
/// are the lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestMetrics {
    /// Change feeds absorbed ([`QueryService::ingest`](crate::QueryService::ingest)).
    pub ingests: u64,
    /// Row events those feeds carried.
    pub events: u64,
    /// Rows those events carried.
    pub rows: u64,
    /// Compactions performed (manual and background alike).
    pub compactions: u64,
    /// Side logs folded into rebuilt partitions across those compactions.
    pub compacted_shards: u64,
}

/// Durable-restart counters, embedded in [`ServiceMetrics`].  All zero (and
/// `enabled` false) for a service started without a
/// [`DurabilityConfig`](crate::DurabilityConfig).
///
/// The replay / truncation / cache-restore figures describe the recovery
/// that *created* this service instance
/// ([`QueryService::recover`](crate::QueryService::recover)) and stay
/// constant afterwards; the journal gauges and checkpoint counters advance
/// as the service runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityMetrics {
    /// True when the service journals its ingests.
    pub enabled: bool,
    /// Current size of the feed journal in bytes (header included) — drops
    /// back to one checkpoint record after every compaction.
    pub journal_bytes: u64,
    /// Change feeds appended to the journal since this instance started.
    pub journal_appends: u64,
    /// Checkpoints written (each one truncates the journal).
    pub checkpoints: u64,
    /// Checkpoint attempts that failed and left the journal untouched (the
    /// journal remains replayable; the truncation is merely postponed).
    pub checkpoint_failures: u64,
    /// Journaled feeds re-absorbed during recovery.
    pub replayed_feeds: u64,
    /// Journaled feeds the engine rejected again during recovery (a feed
    /// that was rejected when first ingested is journaled ahead of the
    /// rejection and deterministically re-rejected on replay).
    pub rejected_replays: u64,
    /// Bytes of torn or corrupt journal tail discarded during recovery.
    pub truncated_bytes: u64,
    /// Persisted result pages restored into the cache during recovery.
    pub cache_pages_restored: u64,
    /// Persisted result pages discarded during recovery because their
    /// snapshot fingerprint no longer matched the recovered engine.
    pub cache_pages_stale: u64,
}

/// One snapshot of the service's health, returned by
/// [`QueryService::metrics`](crate::QueryService::metrics).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// Time since the service started.
    pub uptime: Duration,
    /// Queries answered (cache hits included).
    pub completed: u64,
    /// Lifetime queries per second (`completed / uptime`).
    pub qps: f64,
    /// Latency distribution, measured from submission to completion (queue
    /// wait included).
    pub latency: LatencySummary,
    /// Interpretation-cache effectiveness.
    pub cache: CacheStats,
    /// Full pipeline executions performed by the workers — cache misses that
    /// were actually computed (coalesced duplicates excluded).
    pub pipeline_executions: u64,
    /// Submissions that joined an identical in-flight computation instead of
    /// enqueuing a duplicate job.
    pub coalesced: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Size of the worker pool.
    pub workers: usize,
    /// Generation of the snapshot currently being served (bumped by every
    /// [`reload`](crate::QueryService::reload) /
    /// [`rebuild_shards`](crate::QueryService::rebuild_shards) /
    /// [`refresh_graph`](crate::QueryService::refresh_graph)).
    pub generation: u64,
    /// Snapshot swaps performed since the service started (full reloads and
    /// per-shard rebuilds alike; streaming ingests and compactions count
    /// separately, in [`ingest`](Self::ingest)).
    pub reloads: u64,
    /// Streaming-ingestion counters (feeds absorbed, rows ingested,
    /// compactions).
    pub ingest: IngestMetrics,
    /// Per-shard sizes, probe counts and generations of the lookup layer —
    /// re-sampled from the *live* snapshot on every call, so the gauges
    /// track whatever generation is currently serving.
    pub shards: ShardStats,
    /// Crash-safety counters: journal size and appends, checkpoints, and the
    /// replay / cache-restore figures of the recovery that created this
    /// instance.
    pub durability: DurabilityMetrics,
}

/// Latency accounting shared by the workers.  Not internally synchronised;
/// the service wraps it in a `Mutex`.
#[derive(Debug)]
pub(crate) struct LatencyRecorder {
    window: Vec<u64>,
    next: usize,
    count: u64,
    sum_nanos: u128,
    min_nanos: u64,
    max_nanos: u64,
}

impl LatencyRecorder {
    pub(crate) fn new() -> Self {
        Self {
            window: Vec::new(),
            next: 0,
            count: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }

    pub(crate) fn record(&mut self, latency: Duration) {
        let nanos = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.count += 1;
        self.sum_nanos += u128::from(nanos);
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
        if self.window.len() < WINDOW {
            self.window.push(nanos);
        } else {
            self.window[self.next] = nanos;
            self.next = (self.next + 1) % WINDOW;
        }
    }

    pub(crate) fn count(&self) -> u64 {
        self.count
    }

    pub(crate) fn summary(&self) -> LatencySummary {
        if self.count == 0 {
            return LatencySummary::default();
        }
        let mut sorted = self.window.clone();
        sorted.sort_unstable();
        LatencySummary {
            min: Duration::from_nanos(self.min_nanos),
            mean: Duration::from_nanos((self.sum_nanos / u128::from(self.count)) as u64),
            p50: Duration::from_nanos(percentile(&sorted, 50.0)),
            p95: Duration::from_nanos(percentile(&sorted, 95.0)),
            max: Duration::from_nanos(self.max_nanos),
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_reports_zeros() {
        let r = LatencyRecorder::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.summary(), LatencySummary::default());
    }

    #[test]
    fn summary_tracks_min_mean_max() {
        let mut r = LatencyRecorder::new();
        for ms in [10u64, 20, 30] {
            r.record(Duration::from_millis(ms));
        }
        let s = r.summary();
        assert_eq!(s.min, Duration::from_millis(10));
        assert_eq!(s.mean, Duration::from_millis(20));
        assert_eq!(s.max, Duration::from_millis(30));
        assert_eq!(s.p50, Duration::from_millis(20));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 95.0), 95);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[42], 95.0), 42);
        assert_eq!(percentile(&[], 95.0), 0);
    }

    #[test]
    fn window_is_bounded() {
        let mut r = LatencyRecorder::new();
        for i in 0..(WINDOW as u64 + 500) {
            r.record(Duration::from_nanos(i));
        }
        assert_eq!(r.window.len(), WINDOW);
        assert_eq!(r.count(), WINDOW as u64 + 500);
        // Lifetime extremes survive even after the early samples left the
        // percentile window.
        assert_eq!(r.summary().min, Duration::from_nanos(0));
        assert_eq!(r.summary().max, Duration::from_nanos(WINDOW as u64 + 499));
    }
}
