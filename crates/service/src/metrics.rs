//! Service observability: per-query latency accounting and the
//! [`ServiceMetrics`] snapshot (QPS, latency percentiles, cache hit rate,
//! queue depth).
//!
//! The recorder keeps one fixed-memory [`LogHistogram`] per distribution —
//! end-to-end latency, queue wait, pipeline execution and each of the five
//! pipeline stages — so memory stays constant no matter how long the service
//! runs and the percentiles cover the **whole lifetime**, not a recent
//! window.
//!
//! ## Percentile semantics (changed)
//!
//! Earlier versions computed `p50` / `p95` over a sliding window of the most
//! recent 4096 samples while `min` / `mean` / `max` were lifetime-exact, so
//! a burst could report a `p95` *below* the lifetime `p50`, and quantiles
//! silently forgot everything older than the window.  The histogram-backed
//! figures are lifetime aggregates with a bounded relative error (one
//! sub-bucket, ≤ `1/32` ≈ 3.1 %) and are monotone by construction:
//! `min ≤ p50 ≤ p95 ≤ max` always holds.  A reported quantile never
//! under-reports the exact value (it is the upper bound of the bucket the
//! exact value landed in, clamped to the observed extremes).

use std::time::Duration;

use soda_core::{ShardStats, StepTimings};
use soda_trace::hist::LogHistogram;
use soda_trace::names;
use soda_trace::prom::{MetricKind, PromWriter};

use crate::cache::CacheStats;

/// Aggregated latency figures, all over the service lifetime.
///
/// `min`, `mean` and `max` are exact; `p50` and `p95` come from a
/// log-bucketed histogram and over-report by at most one sub-bucket
/// (≤ `value/32 + 1ns`), never under-report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Fastest sample.
    pub min: Duration,
    /// Lifetime mean.
    pub mean: Duration,
    /// Lifetime median (bounded-error, see the struct docs).
    pub p50: Duration,
    /// Lifetime 95th percentile (bounded-error, see the struct docs).
    pub p95: Duration,
    /// Slowest sample.
    pub max: Duration,
}

impl LatencySummary {
    pub(crate) fn of(hist: &LogHistogram) -> Self {
        if hist.count() == 0 {
            return Self::default();
        }
        Self {
            min: hist.min(),
            mean: hist.mean(),
            p50: hist.quantile(0.50),
            p95: hist.quantile(0.95),
            max: hist.max(),
        }
    }
}

/// Lifetime latency summaries of the five pipeline stages, embedded in
/// [`ServiceMetrics`].  Only **executed** pipelines contribute (cache hits
/// and coalesced waiters never ran the stages).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageLatencies {
    /// Step 1 — lookup.
    pub lookup: LatencySummary,
    /// Step 2 — rank and top N.
    pub rank: LatencySummary,
    /// Step 3 — tables and joins.
    pub tables: LatencySummary,
    /// Step 4 — filters.
    pub filters: LatencySummary,
    /// Step 5 — SQL generation.
    pub sqlgen: LatencySummary,
}

/// Streaming-ingestion counters, embedded in [`ServiceMetrics`].
///
/// Current side-log *sizes* live in [`ServiceMetrics::shards`]
/// (`log_postings` / `log_rows`, re-sampled from the live snapshot); these
/// are the lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestMetrics {
    /// Change feeds absorbed ([`QueryService::ingest`](crate::QueryService::ingest)).
    pub ingests: u64,
    /// Row events those feeds carried.
    pub events: u64,
    /// Rows those events carried.
    pub rows: u64,
    /// Rows appended to copy-on-write table tails (`Append` events; rows
    /// carried by wholesale replacements are excluded).
    pub rows_appended: u64,
    /// Tables the copy-on-write derive actually copied — the feeds'
    /// touched tables.
    pub tables_copied: u64,
    /// Tables structurally shared (`Arc` bump, zero row copies) across
    /// those derives — untouched by their feeds.
    pub tables_shared: u64,
    /// Compactions performed (manual and background alike).
    pub compactions: u64,
    /// Side logs folded into rebuilt partitions across those compactions.
    pub compacted_shards: u64,
}

/// Durable-restart counters, embedded in [`ServiceMetrics`].  All zero (and
/// `enabled` false) for a service started without a
/// [`DurabilityConfig`](crate::DurabilityConfig).
///
/// The replay / truncation / cache-restore figures describe the recovery
/// that *created* this service instance
/// ([`QueryService::recover`](crate::QueryService::recover)) and stay
/// constant afterwards; the journal gauges and checkpoint counters advance
/// as the service runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityMetrics {
    /// True when the service journals its ingests.
    pub enabled: bool,
    /// Current size of the feed journal in bytes (header included) — drops
    /// back to one checkpoint record after every compaction.
    pub journal_bytes: u64,
    /// Change feeds appended to the journal since this instance started.
    pub journal_appends: u64,
    /// Checkpoints written (each one truncates the journal).
    pub checkpoints: u64,
    /// Checkpoint attempts that failed and left the journal untouched (the
    /// journal remains replayable; the truncation is merely postponed).
    pub checkpoint_failures: u64,
    /// Journaled feeds re-absorbed during recovery.
    pub replayed_feeds: u64,
    /// Journaled feeds the engine rejected again during recovery (a feed
    /// that was rejected when first ingested is journaled ahead of the
    /// rejection and deterministically re-rejected on replay).
    pub rejected_replays: u64,
    /// Bytes of torn or corrupt journal tail discarded during recovery.
    pub truncated_bytes: u64,
    /// Persisted result pages restored into the cache during recovery.
    pub cache_pages_restored: u64,
    /// Persisted result pages discarded during recovery because their
    /// snapshot fingerprint no longer matched the recovered engine.
    pub cache_pages_stale: u64,
}

/// One snapshot of the service's health, returned by
/// [`QueryService::metrics`](crate::QueryService::metrics).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// Time since the service started.
    pub uptime: Duration,
    /// Queries answered (cache hits included).
    pub completed: u64,
    /// Lifetime queries per second (`completed / uptime`).
    pub qps: f64,
    /// End-to-end latency (submission to completion: queue wait **and**
    /// execution), over every answered query — cache hits included.
    pub latency: LatencySummary,
    /// Time executed jobs spent waiting in the queue before a worker picked
    /// them up.  Only queued jobs contribute; cache hits never queue.
    pub queue_wait: LatencySummary,
    /// Time executed jobs spent in the pipeline itself (dequeue to
    /// completion) — end-to-end minus queue wait.
    pub execution: LatencySummary,
    /// Per-stage pipeline latency of executed jobs.
    pub stages: StageLatencies,
    /// Interpretation-cache effectiveness.
    pub cache: CacheStats,
    /// Full pipeline executions performed by the workers — cache misses that
    /// were actually computed (coalesced duplicates excluded).
    pub pipeline_executions: u64,
    /// Submissions that joined an identical in-flight computation instead of
    /// enqueuing a duplicate job.
    pub coalesced: u64,
    /// Queries whose end-to-end latency reached
    /// [`ServiceConfig::slow_query_threshold`](crate::ServiceConfig) and
    /// landed a full span tree in the slow-query log
    /// ([`QueryService::slow_queries`](crate::QueryService::slow_queries)).
    pub slow_queries: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Size of the worker pool.
    pub workers: usize,
    /// Generation of the snapshot currently being served (bumped by every
    /// [`reload`](crate::QueryService::reload) /
    /// [`rebuild_shards`](crate::QueryService::rebuild_shards) /
    /// [`refresh_graph`](crate::QueryService::refresh_graph)).
    pub generation: u64,
    /// Snapshot swaps performed since the service started (full reloads and
    /// per-shard rebuilds alike; streaming ingests and compactions count
    /// separately, in [`ingest`](Self::ingest)).
    pub reloads: u64,
    /// Streaming-ingestion counters (feeds absorbed, rows ingested,
    /// compactions).
    pub ingest: IngestMetrics,
    /// Per-shard sizes, probe counts and generations of the lookup layer —
    /// re-sampled from the *live* snapshot on every call, so the gauges
    /// track whatever generation is currently serving.
    pub shards: ShardStats,
    /// Crash-safety counters: journal size and appends, checkpoints, and the
    /// replay / cache-restore figures of the recovery that created this
    /// instance.
    pub durability: DurabilityMetrics,
    /// The per-tenant fairness split, one entry per hosted tenant (the
    /// default tenant first).  A single-tenant service reports exactly one
    /// entry whose figures mirror the service-wide ones.
    pub tenants: Vec<TenantMetrics>,
}

/// One hosted tenant's share of the service, embedded in
/// [`ServiceMetrics::tenants`] — the figures an operator compares across
/// tenants to see who is flooding, who is starving and whether admission
/// control is biting.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMetrics {
    /// The tenant name.
    pub tenant: String,
    /// Queries answered for this tenant (warm hits, coalesced waiters and
    /// executed queries alike).
    pub completed: u64,
    /// Lifetime queries per second of service uptime.
    pub qps: f64,
    /// End-to-end latency of this tenant's answered queries.
    pub latency: LatencySummary,
    /// Submissions answered from the cache at submission time.
    pub warm_hits: u64,
    /// Full pipeline executions performed for this tenant (traced runs
    /// included).
    pub executions: u64,
    /// Submissions that blocked in admission control (tenant lane at quota,
    /// or the whole queue at capacity) before enqueueing.
    pub admission_waits: u64,
    /// Queries of this tenant whose end-to-end latency crossed the
    /// slow-query threshold.
    pub slow_queries: u64,
    /// Span trees the adaptive trace sampler retained for this tenant.
    pub sampled_traces: u64,
    /// Jobs currently waiting in this tenant's queue lane.
    pub queue_depth: usize,
    /// Generation of the snapshot this tenant currently serves.
    pub generation: u64,
    /// Snapshot swaps performed for this tenant (reloads, shard rebuilds,
    /// graph refreshes).
    pub reloads: u64,
    /// Change feeds absorbed for this tenant.
    pub ingest_feeds: u64,
    /// Side-log compactions performed for this tenant.
    pub compactions: u64,
    /// This tenant's crash-safety counters — journal size and appends,
    /// checkpoints, and the replay figures of the recovery that registered
    /// it.  All zero (`enabled` false) on a non-durable service.  For the
    /// default tenant this mirrors [`ServiceMetrics::durability`].
    pub durability: DurabilityMetrics,
}

/// Latency accounting shared by the workers: one log-bucketed histogram per
/// distribution (~15 KiB each, fixed).  Not internally synchronised; the
/// service wraps it in a `Mutex`.
#[derive(Debug)]
pub(crate) struct LatencyRecorder {
    /// Submission → completion, every answered query (hits included).
    e2e: LogHistogram,
    /// Submission → dequeue, executed jobs only.
    queue_wait: LogHistogram,
    /// Dequeue → completion, executed jobs only.
    execution: LogHistogram,
    /// Pipeline stages of executed jobs, in [`names::STAGES`] order.
    stages: [LogHistogram; 5],
}

impl LatencyRecorder {
    pub(crate) fn new() -> Self {
        Self {
            e2e: LogHistogram::new(),
            queue_wait: LogHistogram::new(),
            execution: LogHistogram::new(),
            stages: std::array::from_fn(|_| LogHistogram::new()),
        }
    }

    /// Records a query answered without executing the pipeline — a cache
    /// hit, or a waiter coalesced onto another submission's computation.
    /// Only the end-to-end distribution sees it.
    pub(crate) fn record_hit(&mut self, e2e: Duration) {
        self.e2e.record(e2e);
    }

    /// Records a query a worker actually executed: the end-to-end latency,
    /// its queue-wait / execution split and the per-stage timings.
    pub(crate) fn record_executed(
        &mut self,
        e2e: Duration,
        queue_wait: Duration,
        execution: Duration,
        timings: Option<&StepTimings>,
    ) {
        self.e2e.record(e2e);
        self.queue_wait.record(queue_wait);
        self.execution.record(execution);
        if let Some(t) = timings {
            for (hist, stage) in self.stages.iter_mut().zip(stage_durations(t)) {
                hist.record(stage);
            }
        }
    }

    /// Attaches a sampled trace id to the end-to-end bucket `e2e` falls
    /// into — rendered as an OpenMetrics exemplar on
    /// `soda_query_duration_seconds`.
    pub(crate) fn annotate_exemplar(&mut self, e2e: Duration, trace_id: &str) {
        self.e2e.annotate_exemplar(e2e, trace_id);
    }

    /// Queries answered over the service lifetime.
    pub(crate) fn count(&self) -> u64 {
        self.e2e.count()
    }

    /// End-to-end latency summary.
    pub(crate) fn summary(&self) -> LatencySummary {
        LatencySummary::of(&self.e2e)
    }

    /// Queue-wait summary (executed jobs only).
    pub(crate) fn queue_wait_summary(&self) -> LatencySummary {
        LatencySummary::of(&self.queue_wait)
    }

    /// Execution summary (executed jobs only).
    pub(crate) fn execution_summary(&self) -> LatencySummary {
        LatencySummary::of(&self.execution)
    }

    /// Per-stage summaries (executed jobs only).
    pub(crate) fn stage_summaries(&self) -> StageLatencies {
        StageLatencies {
            lookup: LatencySummary::of(&self.stages[0]),
            rank: LatencySummary::of(&self.stages[1]),
            tables: LatencySummary::of(&self.stages[2]),
            filters: LatencySummary::of(&self.stages[3]),
            sqlgen: LatencySummary::of(&self.stages[4]),
        }
    }

    /// Writes the latency histogram families into a Prometheus exposition
    /// document (all values in seconds).
    pub(crate) fn write_prometheus(&self, w: &mut PromWriter) {
        w.header(
            "soda_query_duration_seconds",
            "End-to-end query latency, submission to completion (cache hits included).",
            MetricKind::Histogram,
        );
        w.histogram("soda_query_duration_seconds", &[], &self.e2e);
        w.header(
            "soda_queue_wait_seconds",
            "Time executed jobs waited in the queue before a worker picked them up.",
            MetricKind::Histogram,
        );
        w.histogram("soda_queue_wait_seconds", &[], &self.queue_wait);
        w.header(
            "soda_execution_duration_seconds",
            "Pipeline execution time of executed jobs (dequeue to completion).",
            MetricKind::Histogram,
        );
        w.histogram("soda_execution_duration_seconds", &[], &self.execution);
        w.header(
            "soda_stage_duration_seconds",
            "Per-stage pipeline latency of executed jobs.",
            MetricKind::Histogram,
        );
        for (hist, stage) in self.stages.iter().zip(names::STAGES) {
            w.histogram(
                "soda_stage_duration_seconds",
                &[("stage", stage.to_string())],
                hist,
            );
        }
    }
}

/// The five stage durations of one execution, in [`names::STAGES`] order.
fn stage_durations(t: &StepTimings) -> [Duration; 5] {
    [t.lookup, t.rank, t.tables, t.filters, t.sql]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_reports_zeros() {
        let r = LatencyRecorder::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.summary(), LatencySummary::default());
        assert_eq!(r.queue_wait_summary(), LatencySummary::default());
        assert_eq!(r.stage_summaries(), StageLatencies::default());
    }

    #[test]
    fn summary_tracks_min_mean_max() {
        let mut r = LatencyRecorder::new();
        for ms in [10u64, 20, 30] {
            r.record_hit(Duration::from_millis(ms));
        }
        let s = r.summary();
        // The extremes and the mean are exact; the quantiles are
        // histogram-backed with a bounded over-report (≤ value/32 + 1ns).
        assert_eq!(s.min, Duration::from_millis(10));
        assert_eq!(s.mean, Duration::from_millis(20));
        assert_eq!(s.max, Duration::from_millis(30));
        assert!(s.p50 >= Duration::from_millis(20));
        assert!(s.p50 <= Duration::from_micros(20_626), "p50 = {:?}", s.p50);
    }

    #[test]
    fn quantiles_are_monotone_and_within_extremes() {
        let mut r = LatencyRecorder::new();
        for us in [3u64, 5000, 70, 70, 900, 12, 40_000, 7] {
            r.record_hit(Duration::from_micros(us));
        }
        let s = r.summary();
        assert!(s.min <= s.p50);
        assert!(s.p50 <= s.p95);
        assert!(s.p95 <= s.max);
    }

    #[test]
    fn hits_do_not_touch_the_executed_distributions() {
        let mut r = LatencyRecorder::new();
        r.record_hit(Duration::from_millis(1));
        assert_eq!(r.count(), 1);
        assert_eq!(r.queue_wait_summary(), LatencySummary::default());
        assert_eq!(r.execution_summary(), LatencySummary::default());
    }

    #[test]
    fn executed_jobs_split_queue_wait_from_execution() {
        let mut r = LatencyRecorder::new();
        let timings = StepTimings {
            lookup: Duration::from_millis(4),
            rank: Duration::from_millis(1),
            tables: Duration::from_millis(2),
            filters: Duration::from_millis(1),
            sql: Duration::from_millis(2),
        };
        r.record_executed(
            Duration::from_millis(15),
            Duration::from_millis(5),
            Duration::from_millis(10),
            Some(&timings),
        );
        assert_eq!(r.count(), 1);
        assert_eq!(r.queue_wait_summary().max, Duration::from_millis(5));
        assert_eq!(r.execution_summary().max, Duration::from_millis(10));
        let stages = r.stage_summaries();
        assert_eq!(stages.lookup.max, Duration::from_millis(4));
        assert_eq!(stages.sqlgen.max, Duration::from_millis(2));
    }

    #[test]
    fn prometheus_rendering_validates() {
        let mut r = LatencyRecorder::new();
        r.record_hit(Duration::from_millis(1));
        r.record_executed(
            Duration::from_millis(3),
            Duration::from_millis(1),
            Duration::from_millis(2),
            Some(&StepTimings::default()),
        );
        let mut w = PromWriter::new();
        r.write_prometheus(&mut w);
        let text = w.finish();
        soda_trace::prom::validate(&text).expect("latency families must validate");
        assert!(text.contains("soda_stage_duration_seconds_count{stage=\"lookup\"} 1"));
        assert!(text.contains("soda_query_duration_seconds_count 2"));
        assert!(text.contains("soda_queue_wait_seconds_count 1"));
    }
}
