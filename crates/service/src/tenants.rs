//! Multi-tenant hosting: the tenant registry, per-tenant serving state and
//! the per-tenant administration facade.
//!
//! A hosted deployment of the SODA service runs **one** worker pool, **one**
//! bounded queue and **one** interpretation cache for many tenants, each of
//! which brings its own warehouse snapshot and (on a durable service) its
//! own write-ahead feed journal.  The pieces here keep those tenants
//! isolated without duplicating the machinery:
//!
//! * [`TenantRegistry`] — maps a [`TenantId`] to its live
//!   [`SnapshotHandle`] plus the per-tenant
//!   counters.  The default tenant always exists (it is the service's boot
//!   snapshot); further tenants are registered at runtime through
//!   [`QueryService::add_tenant`](crate::QueryService::add_tenant).
//! * `TenantState` (private) — one tenant's serving state: the swappable
//!   snapshot,
//!   the per-tenant swap lock (so two tenants can reload concurrently), the
//!   fairness counters surfaced by
//!   [`ServiceMetrics::tenants`](crate::ServiceMetrics) and, on a durable
//!   service, the tenant's own journal.
//! * [`TenantAdmin`] — the mutation facade returned by
//!   [`QueryService::admin`](crate::QueryService::admin): every operation
//!   that changes what a tenant serves (`reload`, `rebuild_shards`,
//!   `refresh_graph`, `ingest`, `ingest_owned`, `compact`, `clear_cache`)
//!   lives here, scoped to exactly one tenant.
//!
//! Isolation invariants: cache keys fold the tenant fingerprint into the
//! snapshot fingerprint ([`TenantId::fold`]), so all tenants share one LRU
//! without any possibility of cross-tenant hits; the queue gives each
//! tenant its own lane with a round-robin scan and an admission quota, so
//! one tenant's cold-query storm cannot starve another tenant's traffic.

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use soda_core::{ChangeFeed, Database, EngineSnapshot, MetaGraph, SnapshotHandle, TenantId};
use soda_trace::hist::LogHistogram;
use soda_trace::{BoundedLog, Sampler, TailRules};

use crate::service::{DurabilityState, QueryService, SampledTrace, ServiceConfig, ServiceError};
use crate::slo::SloWindow;

/// One tenant's serving state: identity, snapshot, swap lock, fairness
/// counters and (optionally) its write-ahead journal.
pub(crate) struct TenantState {
    pub(crate) id: TenantId,
    /// The tenant's swappable current snapshot.  Submissions load it once
    /// and pin what they got; the [`TenantAdmin`] paths publish
    /// replacements.
    pub(crate) handle: SnapshotHandle,
    /// Serializes this tenant's swap paths (reload, shard rebuild, graph
    /// refresh, ingest, compaction) so each one's pre-swap fingerprint
    /// capture, the handle publication and the cache retention/purge form
    /// one atomic episode.  Per-tenant on purpose: tenant A's reload never
    /// blocks tenant B's ingest.
    pub(crate) swaps: Mutex<()>,
    /// Snapshot swaps this tenant performed (reloads + shard rebuilds +
    /// graph refreshes).
    pub(crate) reloads: AtomicU64,
    /// Change feeds absorbed for this tenant.
    pub(crate) ingest_feeds: AtomicU64,
    /// Side-log compactions performed for this tenant.
    pub(crate) compactions: AtomicU64,
    /// Full pipeline executions performed for this tenant.
    pub(crate) executions: AtomicU64,
    /// Submissions answered from the cache at submission time.
    pub(crate) warm_hits: AtomicU64,
    /// Submissions that had to block in admission control (tenant lane at
    /// quota, or the whole queue at capacity) before enqueueing.
    pub(crate) admission_waits: AtomicU64,
    /// End-to-end latency of this tenant's answered queries.  Its sample
    /// count doubles as the tenant's completed-query counter.
    pub(crate) e2e: Mutex<LogHistogram>,
    /// Queries of this tenant whose end-to-end latency crossed the
    /// service's slow-query threshold.
    pub(crate) slow_queries: AtomicU64,
    /// The tenant's adaptive trace sampler (`None` when
    /// `ServiceConfig::sampling` is off).  Seeded with the tenant
    /// fingerprint so co-hosted tenants draw independent — but each
    /// individually reproducible — decision sequences.
    pub(crate) sampler: Option<Sampler>,
    /// Bounded ring of sampled traces, newest retained
    /// ([`QueryService::sampled_traces`]).
    pub(crate) sampled: Mutex<BoundedLog<SampledTrace>>,
    /// Lifetime count of traces the sampler retained for this tenant.
    pub(crate) sampled_total: AtomicU64,
    /// The tenant's rolling SLO window (`None` when `ServiceConfig::slo`
    /// is off).
    pub(crate) slo: Option<Mutex<SloWindow>>,
    /// The tenant's crash-safety state (`None` on a non-durable service and
    /// for shadow tenants).  Lock order matches the service-wide rule:
    /// tenant swap lock → durability → store.
    pub(crate) durability: Option<Mutex<DurabilityState>>,
}

impl TenantState {
    pub(crate) fn new(
        id: TenantId,
        handle: SnapshotHandle,
        durability: Option<DurabilityState>,
        config: &ServiceConfig,
    ) -> Self {
        let sampler = config.sampling.as_ref().map(|sampling| {
            let rate = sampling
                .tenant_rates
                .iter()
                .find(|(name, _)| name == id.as_str())
                .map(|(_, rate)| *rate)
                .unwrap_or(sampling.rate);
            Sampler::new(sampling.seed ^ id.fingerprint(), rate).with_tail(TailRules {
                slow: config.slow_query_threshold,
                anomaly_factor: sampling.anomaly_factor,
                anomaly_min_samples: sampling.anomaly_min_samples,
            })
        });
        let trace_log = config
            .sampling
            .as_ref()
            .map(|sampling| sampling.trace_log)
            .unwrap_or(1);
        Self {
            id,
            handle,
            swaps: Mutex::new(()),
            reloads: AtomicU64::new(0),
            ingest_feeds: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            executions: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            admission_waits: AtomicU64::new(0),
            e2e: Mutex::new(LogHistogram::new()),
            slow_queries: AtomicU64::new(0),
            sampler,
            sampled: Mutex::new(BoundedLog::new(trace_log)),
            sampled_total: AtomicU64::new(0),
            slo: config
                .slo
                .as_ref()
                .map(|slo| Mutex::new(SloWindow::new(slo))),
            durability: durability.map(Mutex::new),
        }
    }

    /// The tenant-folded fingerprint of the snapshot this tenant serves
    /// *now* — what a submission arriving this instant would key its cache
    /// entry by.
    pub(crate) fn folded_live(&self) -> u64 {
        self.id.fold(self.handle.load().cache_fingerprint())
    }

    /// Records one answered query in the tenant's end-to-end distribution.
    pub(crate) fn record_response(&self, e2e: Duration) {
        self.e2e
            .lock()
            .expect("tenant latency recorder poisoned")
            .record(e2e);
    }
}

/// The tenant table of a [`QueryService`]: the default tenant plus every
/// tenant registered through
/// [`QueryService::add_tenant`](crate::QueryService::add_tenant).
///
/// Lookups for the default tenant bypass the lock entirely — the warm-hit
/// path of a single-tenant deployment pays nothing for the registry.
pub struct TenantRegistry {
    /// Every hosted tenant, the default one at index 0.  Tenants are never
    /// removed, so the vector only grows.
    tenants: RwLock<Vec<Arc<TenantState>>>,
    /// The always-present default tenant, reachable without the lock.
    default: Arc<TenantState>,
}

impl TenantRegistry {
    pub(crate) fn new(default: Arc<TenantState>) -> Self {
        Self {
            tenants: RwLock::new(vec![Arc::clone(&default)]),
            default,
        }
    }

    /// The default tenant (the service's boot snapshot).
    pub(crate) fn default_tenant(&self) -> &Arc<TenantState> {
        &self.default
    }

    /// Resolves a tenant id to its state, `None` for an unknown tenant.
    pub(crate) fn resolve(&self, id: &TenantId) -> Option<Arc<TenantState>> {
        if id.is_default() {
            return Some(Arc::clone(&self.default));
        }
        self.tenants
            .read()
            .expect("tenant registry poisoned")
            .iter()
            .find(|t| t.id == *id)
            .cloned()
    }

    /// Checks that `id` can be hosted alongside the currently registered
    /// tenants: the id must be new, and its 64-bit fingerprint must not
    /// collide with any hosted tenant's.  Fingerprints are the entire
    /// isolation boundary — cache keys, queue lanes and journal
    /// directories are all derived from them — so a collision (including a
    /// named tenant whose fingerprint happens to be `0`, the default
    /// tenant's reserved value) would silently share another tenant's
    /// state and must be rejected, never hosted.
    pub(crate) fn validate_new(&self, id: &TenantId) -> Result<(), ServiceError> {
        let tenants = self.tenants.read().expect("tenant registry poisoned");
        validate_against(&tenants, id)
    }

    /// Registers a new tenant; rejects a duplicate id or a fingerprint
    /// collision (see [`validate_new`](Self::validate_new)).
    pub(crate) fn register(&self, tenant: Arc<TenantState>) -> Result<(), ServiceError> {
        let mut tenants = self.tenants.write().expect("tenant registry poisoned");
        validate_against(&tenants, &tenant.id)?;
        tenants.push(tenant);
        Ok(())
    }

    /// A snapshot of every hosted tenant, default first, registration order
    /// after.
    pub(crate) fn all(&self) -> Vec<Arc<TenantState>> {
        self.tenants
            .read()
            .expect("tenant registry poisoned")
            .clone()
    }

    /// Hosted tenant count (the default tenant included) — the denominator
    /// of the admission quota.
    pub(crate) fn len(&self) -> usize {
        self.tenants.read().expect("tenant registry poisoned").len()
    }
}

/// The duplicate-id / fingerprint-collision check behind
/// [`TenantRegistry::validate_new`] and [`TenantRegistry::register`],
/// against one consistent view of the hosted tenants.  The default tenant
/// is always in `hosted` (fingerprint `0`), so a named tenant whose
/// fingerprint folds to `0` is caught here too.
fn validate_against(hosted: &[Arc<TenantState>], id: &TenantId) -> Result<(), ServiceError> {
    if let Some(existing) = hosted.iter().find(|t| t.id == *id) {
        return Err(ServiceError::TenantExists(existing.id.as_str().to_string()));
    }
    let pairs = hosted.iter().map(|t| (t.id.as_str(), t.id.fingerprint()));
    if let Some(existing) = fingerprint_collision(pairs, id.fingerprint()) {
        return Err(ServiceError::TenantFingerprintCollision {
            tenant: id.as_str().to_string(),
            existing,
        });
    }
    Ok(())
}

/// Returns the name of the hosted tenant whose fingerprint equals
/// `fingerprint`, if any.  Pure (testable with synthetic fingerprints — a
/// real FNV collision cannot be constructed in a test): the default tenant
/// is always among `hosted` with fingerprint `0`, so a named tenant whose
/// fingerprint folds to `0` — which would make [`TenantId::fold`] the
/// identity and alias the default tenant's cache keys, queue lane and
/// top-level journal directory — is caught by the same scan as any other
/// collision.
fn fingerprint_collision<'a>(
    hosted: impl IntoIterator<Item = (&'a str, u64)>,
    fingerprint: u64,
) -> Option<String> {
    hosted
        .into_iter()
        .find(|(_, fp)| *fp == fingerprint)
        .map(|(name, _)| name.to_string())
}

/// The per-tenant administration facade, returned by
/// [`QueryService::admin`](crate::QueryService::admin).
///
/// Every mutation of what a tenant serves goes through here, scoped to the
/// one tenant named at construction — there is no way to reload tenant A
/// while holding tenant B's facade.  The facade borrows the service, so it
/// cannot outlive the worker pool it administers.
///
/// ```
/// use std::sync::Arc;
/// use soda_core::{EngineSnapshot, SodaConfig};
/// use soda_service::{QueryService, ServiceConfig};
///
/// let w = soda_warehouse::minibank::build(42);
/// let snapshot = Arc::new(EngineSnapshot::build(
///     Arc::new(w.database),
///     Arc::new(w.graph),
///     SodaConfig::default(),
/// ));
/// let service = QueryService::start(snapshot, ServiceConfig::default());
/// let admin = service.admin("default").unwrap();
/// assert_eq!(admin.generation(), 0);
/// assert!(service.admin("no-such-tenant").is_err());
/// ```
pub struct TenantAdmin<'a> {
    pub(crate) service: &'a QueryService,
    pub(crate) tenant: Arc<TenantState>,
}

impl TenantAdmin<'_> {
    /// The tenant this facade administers.
    pub fn id(&self) -> &TenantId {
        &self.tenant.id
    }

    /// Generation of the snapshot this tenant currently serves.
    pub fn generation(&self) -> u64 {
        self.tenant.handle.generation()
    }

    /// The engine snapshot this tenant currently serves.  A subsequent
    /// [`reload`](Self::reload) does not invalidate the returned `Arc`; it
    /// just stops being what new submissions see.
    pub fn engine(&self) -> Arc<EngineSnapshot> {
        self.tenant.handle.load()
    }

    /// Swaps in a full replacement snapshot for this tenant **without
    /// draining the worker pool**: the tenant's in-flight queries finish on
    /// the generation they pinned at submission, new submissions see the
    /// new one.  Other tenants' cached pages are untouched.  Returns the
    /// new generation.
    pub fn reload(&self, snapshot: EngineSnapshot) -> u64 {
        self.service.reload_for(&self.tenant, snapshot)
    }

    /// Per-shard hot swap for this tenant: rebuilds and atomically replaces
    /// the inverted-index partitions owning `tables` while every other
    /// shard keeps serving.  Cached pages whose queries provably never
    /// consulted a rebuilt partition are carried across the swap.  Returns
    /// the new generation.
    pub fn rebuild_shards(&self, db: Arc<Database>, tables: &[String]) -> u64 {
        self.service.rebuild_shards_for(&self.tenant, db, tables)
    }

    /// Metadata hot swap for this tenant: rebuilds the classification index
    /// and join catalog against a refreshed graph.  Returns the new
    /// generation.
    pub fn refresh_graph(&self, graph: Arc<MetaGraph>) -> u64 {
        self.service.refresh_graph_for(&self.tenant, graph)
    }

    /// Streaming ingestion into this tenant's snapshot: absorbs a row-level
    /// change feed into per-shard side logs without rebuilding any index
    /// partition.  On a durable service the feed is journaled write-ahead
    /// to **this tenant's** journal.  Returns the new generation.
    pub fn ingest(&self, feed: &ChangeFeed) -> Result<u64, ServiceError> {
        self.service.ingest_owned_for(&self.tenant, feed.clone())
    }

    /// [`ingest`](Self::ingest) for an **owned** feed — the zero-copy path.
    pub fn ingest_owned(&self, feed: ChangeFeed) -> Result<u64, ServiceError> {
        self.service.ingest_owned_for(&self.tenant, feed)
    }

    /// Folds this tenant's ingestion side logs of `shards` into rebuilt
    /// partitions.  Returns the new generation, or `None` when none of the
    /// named shards had a log to fold.
    pub fn compact(&self, shards: &[usize]) -> Option<u64> {
        self.service.compact_for(&self.tenant, shards)
    }

    /// Drops this tenant's cached result pages (other tenants' pages and
    /// the lifetime hit/miss counters survive).
    pub fn clear_cache(&self) {
        self.service.clear_cache_for(&self.tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_collisions_name_the_colliding_tenant() {
        let hosted = [("default", 0u64), ("acme", 0xA1), ("globex", 0xB2)];
        // A distinct fingerprint passes.
        assert_eq!(fingerprint_collision(hosted, 0xC3), None);
        // An exact collision reports who it collides with.
        assert_eq!(fingerprint_collision(hosted, 0xB2), Some("globex".into()));
        // A named tenant whose fingerprint folds to 0 collides with the
        // default tenant — hosting it would alias the default tenant's
        // cache keys, queue lane and top-level journal directory.
        assert_eq!(fingerprint_collision(hosted, 0), Some("default".into()));
    }
}
