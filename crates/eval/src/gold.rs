//! Gold-standard execution helpers.
//!
//! The gold SQL lives next to its query in [`mod@crate::workload`]; this module
//! provides the convenience of executing all gold statements for a query and
//! inspecting the resulting tuple sets (used by the experiments and by tests
//! that validate the gold standard itself).

use soda_relation::ResultSet;
use soda_warehouse::Warehouse;

use crate::metrics::gold_tuples;
use crate::workload::WorkloadQuery;

/// Executes every gold statement of a workload query.
pub fn execute_gold(warehouse: &Warehouse, query: &WorkloadQuery) -> Vec<ResultSet> {
    query
        .gold_sql
        .iter()
        .map(|sql| {
            warehouse
                .database
                .run_sql(sql)
                .unwrap_or_else(|e| panic!("gold SQL of {} failed: {e}\n{sql}", query.id))
        })
        .collect()
}

/// Number of distinct gold tuples for a query.
pub fn gold_size(warehouse: &Warehouse, query: &WorkloadQuery) -> usize {
    let results = execute_gold(warehouse, query);
    gold_tuples(&results).1.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::workload;
    use soda_warehouse::enterprise::{self, EnterpriseConfig};

    #[test]
    fn gold_sizes_reflect_the_engineered_distributions() {
        let w = enterprise::build_with(EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 0.1,
        });
        let queries = workload();
        let q21 = queries.iter().find(|q| q.id == "2.1").unwrap();
        // 4 current Saras plus 16 historised ones.
        assert_eq!(gold_size(&w, q21), 20);
        let q23 = queries.iter().find(|q| q.id == "2.3").unwrap();
        assert_eq!(gold_size(&w, q23), 4);
        let q50 = queries.iter().find(|q| q.id == "5.0").unwrap();
        assert_eq!(gold_size(&w, q50), 380);
        let q90 = queries.iter().find(|q| q.id == "9.0").unwrap();
        assert_eq!(gold_size(&w, q90), 1);
    }
}
