//! The experiment workload: the 13 queries of Table 2, expressed against the
//! synthetic enterprise warehouse, together with their query-type flags and
//! the paper's reported precision/recall for side-by-side comparison.

use soda_baselines::QueryFeature;

/// One workload query (a row of Table 2).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct WorkloadQuery {
    /// Query id as printed in the paper ("1.0", "2.1", …).
    pub id: &'static str,
    /// The SODA input (keywords and operators).
    pub keywords: &'static str,
    /// The paper's comment describing the query.
    pub comment: &'static str,
    /// Query-type flags (B/S/D/I/P/A).
    pub features: Vec<QueryFeature>,
    /// Gold-standard SQL (possibly several statements whose union is the gold
    /// result, e.g. Q5.0's separate private/corporate queries).
    pub gold_sql: Vec<&'static str>,
    /// Precision of the best result as reported in Table 3 of the paper.
    pub paper_precision: f64,
    /// Recall of the best result as reported in Table 3 of the paper.
    pub paper_recall: f64,
    /// Query complexity as reported in Table 4 of the paper.
    pub paper_complexity: usize,
    /// Number of results as reported in Table 4 of the paper.
    pub paper_results: usize,
    /// SODA runtime in seconds as reported in Table 4 of the paper.
    pub paper_soda_runtime_s: f64,
    /// Total end-to-end runtime in minutes as reported in Table 4 of the paper.
    pub paper_total_runtime_min: f64,
}

/// The full workload.
pub fn workload() -> Vec<WorkloadQuery> {
    use QueryFeature::*;
    vec![
        WorkloadQuery {
            id: "1.0",
            keywords: "private customers family name",
            comment: "Customer domain ontology (D) combined with a schema attribute (S); 3-way join incl. inheritance (I).",
            features: vec![DomainOntology, Schema, Inheritance],
            gold_sql: vec![
                "SELECT individual.party_id, individual.family_name FROM party, individual \
                 WHERE party.party_id = individual.party_id",
            ],
            paper_precision: 1.00,
            paper_recall: 1.00,
            paper_complexity: 3,
            paper_results: 1,
            paper_soda_runtime_s: 1.54,
            paper_total_runtime_min: 6.0,
        },
        WorkloadQuery {
            id: "2.1",
            keywords: "Sara",
            comment: "Base data (B) as filter; 3-way join incl. inheritance (I); historised names limit recall.",
            features: vec![BaseData, Inheritance],
            gold_sql: vec![
                "SELECT individual.party_id, individual.family_name, individual.birth_dt \
                 FROM party, individual \
                 WHERE party.party_id = individual.party_id AND individual.given_name = 'Sara'",
                "SELECT individual.party_id, individual_name_hist.family_name, individual.birth_dt \
                 FROM party, individual, individual_name_hist \
                 WHERE party.party_id = individual.party_id \
                 AND individual.party_id = individual_name_hist.party_id \
                 AND individual_name_hist.given_name = 'Sara'",
            ],
            paper_precision: 1.00,
            paper_recall: 0.20,
            paper_complexity: 4,
            paper_results: 4,
            paper_soda_runtime_s: 0.81,
            paper_total_runtime_min: 1.0,
        },
        WorkloadQuery {
            id: "2.2",
            keywords: "Sara given name",
            comment: "Same as Q2.1 plus a restriction on given name (S).",
            features: vec![BaseData, Schema, Inheritance],
            gold_sql: vec![
                "SELECT individual.party_id, individual.family_name, individual.birth_dt \
                 FROM party, individual \
                 WHERE party.party_id = individual.party_id AND individual.given_name = 'Sara'",
                "SELECT individual.party_id, individual_name_hist.family_name, individual.birth_dt \
                 FROM party, individual, individual_name_hist \
                 WHERE party.party_id = individual.party_id \
                 AND individual.party_id = individual_name_hist.party_id \
                 AND individual_name_hist.given_name = 'Sara'",
            ],
            paper_precision: 1.00,
            paper_recall: 0.20,
            paper_complexity: 12,
            paper_results: 2,
            paper_soda_runtime_s: 1.60,
            paper_total_runtime_min: 3.0,
        },
        WorkloadQuery {
            id: "2.3",
            keywords: "Sara birth date",
            comment: "Restriction on birth date focuses the query on the current-name table (S).",
            features: vec![BaseData, Schema, Inheritance],
            gold_sql: vec![
                "SELECT individual.party_id, individual.family_name, individual.birth_dt \
                 FROM party, individual \
                 WHERE party.party_id = individual.party_id AND individual.given_name = 'Sara'",
            ],
            paper_precision: 1.00,
            paper_recall: 1.00,
            paper_complexity: 12,
            paper_results: 3,
            paper_soda_runtime_s: 1.69,
            paper_total_runtime_min: 3.0,
        },
        WorkloadQuery {
            id: "3.1",
            keywords: "Credit Suisse",
            comment: "Base data (B) filter; intent: Credit Suisse as an organization.",
            features: vec![BaseData],
            gold_sql: vec![
                "SELECT organization.party_id, organization.org_name FROM party, organization \
                 WHERE party.party_id = organization.party_id \
                 AND organization.org_name LIKE '%Credit Suisse%'",
            ],
            paper_precision: 1.00,
            paper_recall: 1.00,
            paper_complexity: 12,
            paper_results: 6,
            paper_soda_runtime_s: 3.78,
            paper_total_runtime_min: 2.0,
        },
        WorkloadQuery {
            id: "3.2",
            keywords: "Credit Suisse",
            comment: "Base data (B) filter; intent: Credit Suisse agreements (deals).",
            features: vec![BaseData],
            gold_sql: vec![
                "SELECT agreement_td.agreement_id, agreement_td.agreement_name FROM agreement_td \
                 WHERE agreement_td.agreement_name LIKE '%Credit Suisse%'",
            ],
            paper_precision: 1.00,
            paper_recall: 1.00,
            paper_complexity: 12,
            paper_results: 6,
            paper_soda_runtime_s: 3.78,
            paper_total_runtime_min: 2.0,
        },
        WorkloadQuery {
            id: "4.0",
            keywords: "gold agreement",
            comment: "Base data (B) filter matched with a schema term (S); 2-way join.",
            features: vec![BaseData, Schema],
            gold_sql: vec![
                "SELECT agreement_td.agreement_id, agreement_td.agreement_name, agreement_td.party_id \
                 FROM agreement_td, party \
                 WHERE agreement_td.party_id = party.party_id \
                 AND agreement_td.agreement_name LIKE '%Gold%'",
            ],
            paper_precision: 1.00,
            paper_recall: 1.00,
            paper_complexity: 16,
            paper_results: 4,
            paper_soda_runtime_s: 4.89,
            paper_total_runtime_min: 4.0,
        },
        WorkloadQuery {
            id: "5.0",
            keywords: "customers names",
            comment: "Inheritance (I) plus the names domain ontology (D); gold is two separate 3-way joins.",
            features: vec![DomainOntology, Inheritance],
            gold_sql: vec![
                "SELECT individual.party_id, individual.family_name FROM party, individual \
                 WHERE party.party_id = individual.party_id",
                "SELECT organization.party_id, organization.org_name FROM party, organization \
                 WHERE party.party_id = organization.party_id",
            ],
            paper_precision: 0.12,
            paper_recall: 0.56,
            paper_complexity: 4,
            paper_results: 4,
            paper_soda_runtime_s: 1.24,
            paper_total_runtime_min: 6.0,
        },
        WorkloadQuery {
            id: "6.0",
            keywords: "trade order period > date(2011-09-01)",
            comment: "Time-based range query (P) on a column resolved through the ontology (S).",
            features: vec![Schema, Predicates, Inheritance],
            gold_sql: vec![
                "SELECT trade_order_td.order_id, trade_order_td.order_dt, trade_order_td.amount \
                 FROM trade_order_td, account_td, agreement_td \
                 WHERE trade_order_td.account_id = account_td.account_id \
                 AND account_td.agreement_id = agreement_td.agreement_id \
                 AND trade_order_td.order_dt > '2011-09-01'",
            ],
            paper_precision: 1.00,
            paper_recall: 1.00,
            paper_complexity: 5,
            paper_results: 2,
            paper_soda_runtime_s: 0.73,
            paper_total_runtime_min: 1.0,
        },
        WorkloadQuery {
            id: "7.0",
            keywords: "YEN trade order",
            comment: "Base data (B) filter plus schema (S); 5-way join incl. inheritance (I).",
            features: vec![BaseData, Schema, Inheritance],
            gold_sql: vec![
                "SELECT trade_order_td.order_id, trade_order_td.amount, trade_order_td.currency_cd \
                 FROM trade_order_td, account_td, agreement_td, party, currency \
                 WHERE trade_order_td.account_id = account_td.account_id \
                 AND account_td.agreement_id = agreement_td.agreement_id \
                 AND agreement_td.party_id = party.party_id \
                 AND trade_order_td.currency_cd = currency.currency_cd \
                 AND trade_order_td.currency_cd = 'YEN'",
            ],
            paper_precision: 0.50,
            paper_recall: 1.00,
            paper_complexity: 20,
            paper_results: 4,
            paper_soda_runtime_s: 4.94,
            paper_total_runtime_min: 1.0,
        },
        WorkloadQuery {
            id: "8.0",
            keywords: "trade order investment product Lehman XYZ",
            comment: "Base data (B) plus schema (S); 5-way join incl. inheritance (I).",
            features: vec![BaseData, Schema, Inheritance],
            gold_sql: vec![
                "SELECT trade_order_td.order_id, investment_product_td.product_name \
                 FROM trade_order_td, investment_product_td \
                 WHERE trade_order_td.instrument_id = investment_product_td.instrument_id \
                 AND investment_product_td.product_name LIKE '%Lehman XYZ%'",
            ],
            paper_precision: 1.00,
            paper_recall: 1.00,
            paper_complexity: 8,
            paper_results: 4,
            paper_soda_runtime_s: 2.94,
            paper_total_runtime_min: 2.0,
        },
        WorkloadQuery {
            id: "9.0",
            keywords: "select count() private customers Switzerland",
            comment: "Base data (B), domain ontology (D) and aggregation (A) incl. inheritance (I); bridge tables and historisation defeat the join discovery.",
            features: vec![BaseData, DomainOntology, Aggregates, Inheritance],
            gold_sql: vec![
                "SELECT count(*) FROM party, individual, address \
                 WHERE party.party_id = individual.party_id \
                 AND individual.party_id = address.party_id \
                 AND address.country = 'Switzerland' \
                 AND address.valid_to = '9999-12-31'",
            ],
            paper_precision: 0.00,
            paper_recall: 0.00,
            paper_complexity: 30,
            paper_results: 6,
            paper_soda_runtime_s: 7.31,
            paper_total_runtime_min: 1.0,
        },
        WorkloadQuery {
            id: "10.0",
            keywords: "sum(investments) group by (currency)",
            comment: "Aggregation (A) with explicit grouping and schema (S); 5-way join in the paper.",
            features: vec![Aggregates, Schema],
            gold_sql: vec![
                "SELECT currency.currency_cd, sum(trade_order_td.amount) \
                 FROM trade_order_td, currency \
                 WHERE trade_order_td.currency_cd = currency.currency_cd \
                 GROUP BY currency.currency_cd",
            ],
            paper_precision: 1.00,
            paper_recall: 1.00,
            paper_complexity: 25,
            paper_results: 6,
            paper_soda_runtime_s: 2.83,
            paper_total_runtime_min: 40.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_queries_matching_table2() {
        let w = workload();
        assert_eq!(w.len(), 13);
        let ids: Vec<_> = w.iter().map(|q| q.id).collect();
        assert_eq!(
            ids,
            vec![
                "1.0", "2.1", "2.2", "2.3", "3.1", "3.2", "4.0", "5.0", "6.0", "7.0", "8.0", "9.0",
                "10.0"
            ]
        );
    }

    #[test]
    fn every_query_has_gold_sql_and_features() {
        for q in workload() {
            assert!(!q.gold_sql.is_empty(), "query {} has no gold SQL", q.id);
            assert!(
                !q.features.is_empty(),
                "query {} has no feature flags",
                q.id
            );
        }
    }

    #[test]
    fn gold_sql_parses_and_executes_on_the_enterprise_warehouse() {
        let warehouse =
            soda_warehouse::enterprise::build_with(soda_warehouse::enterprise::EnterpriseConfig {
                seed: 42,
                padding: false,
                data_scale: 0.2,
            });
        for q in workload() {
            for sql in &q.gold_sql {
                let rs = warehouse
                    .database
                    .run_sql(sql)
                    .unwrap_or_else(|e| panic!("gold SQL of {} failed: {e}\n{sql}", q.id));
                assert!(
                    rs.row_count() > 0,
                    "gold SQL of {} returned no rows:\n{sql}",
                    q.id
                );
            }
        }
    }

    #[test]
    fn aggregate_queries_are_flagged_as_such() {
        let w = workload();
        let q9 = w.iter().find(|q| q.id == "9.0").unwrap();
        let q10 = w.iter().find(|q| q.id == "10.0").unwrap();
        assert!(q9.features.contains(&QueryFeature::Aggregates));
        assert!(q10.features.contains(&QueryFeature::Aggregates));
    }
}
