//! Tuple-level precision and recall against the gold standard.
//!
//! The paper compares the *result tuples* of each SQL statement produced by
//! SODA with the result tuples of the hand-written gold-standard query: a
//! precision of 1.0 means every returned tuple also appears in the gold
//! result, a recall of 1.0 means every gold tuple was returned (§5.2.1).
//!
//! Because SODA's statements typically `SELECT *` over the joined tables while
//! the gold statements project the columns the analyst asked for, tuples are
//! compared on the gold statement's output columns: the SODA result is
//! projected onto those columns (matched by normalised column name); if it
//! does not even contain them, the result cannot answer the business question
//! and scores zero.

use std::collections::HashSet;

use soda_relation::ResultSet;

/// Precision and recall of one SODA result against the gold standard.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct PrecisionRecall {
    /// Fraction of returned tuples that are gold tuples.
    pub precision: f64,
    /// Fraction of gold tuples that were returned.
    pub recall: f64,
}

impl PrecisionRecall {
    /// Both metrics zero.
    pub fn zero() -> Self {
        Self {
            precision: 0.0,
            recall: 0.0,
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Normalises a result column name: lower-cased, with every `table.` qualifier
/// removed (also inside aggregate expressions, so
/// `sum(trade_order_td.amount)` and `sum(amount)` compare equal).
pub fn normalize_column(name: &str) -> String {
    let lower = name.to_lowercase();
    let mut out = String::with_capacity(lower.len());
    let mut word = String::new();
    for c in lower.chars() {
        if c.is_alphanumeric() || c == '_' {
            word.push(c);
        } else if c == '.' {
            // Drop the accumulated qualifier.
            word.clear();
        } else {
            out.push_str(&word);
            word.clear();
            out.push(c);
        }
    }
    out.push_str(&word);
    out
}

/// Projects a result set onto the given (normalised) column names, returning
/// the set of distinct value tuples; `None` when a requested column is absent.
pub fn project(rs: &ResultSet, columns: &[String]) -> Option<HashSet<Vec<String>>> {
    let normalized: Vec<String> = rs.columns().iter().map(|c| normalize_column(c)).collect();
    let mut indices = Vec::with_capacity(columns.len());
    for wanted in columns {
        let idx = normalized.iter().position(|c| c == wanted)?;
        indices.push(idx);
    }
    let mut out = HashSet::new();
    for row in rs.rows() {
        out.insert(indices.iter().map(|&i| row[i].to_string()).collect());
    }
    Some(out)
}

/// The gold tuple set: the union of the gold statements' results, compared by
/// value position (all gold statements must share the arity of the first).
pub fn gold_tuples(gold: &[ResultSet]) -> (Vec<String>, HashSet<Vec<String>>) {
    let columns: Vec<String> = gold
        .first()
        .map(|g| g.columns().iter().map(|c| normalize_column(c)).collect())
        .unwrap_or_default();
    let mut tuples = HashSet::new();
    for g in gold {
        for row in g.rows() {
            tuples.insert(
                row.iter()
                    .take(columns.len())
                    .map(|v| v.to_string())
                    .collect(),
            );
        }
    }
    (columns, tuples)
}

/// Evaluates one SODA result set against the gold statements.
pub fn evaluate(soda: &ResultSet, gold: &[ResultSet]) -> PrecisionRecall {
    let (columns, gold_set) = gold_tuples(gold);
    if columns.is_empty() || gold_set.is_empty() {
        return PrecisionRecall::zero();
    }
    let Some(soda_set) = project(soda, &columns) else {
        return PrecisionRecall::zero();
    };
    if soda_set.is_empty() {
        return PrecisionRecall::zero();
    }
    let matched = soda_set.intersection(&gold_set).count() as f64;
    PrecisionRecall {
        precision: matched / soda_set.len() as f64,
        recall: matched / gold_set.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_relation::{DataType, Database, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("individual")
                .column("party_id", DataType::Int)
                .column("given_name", DataType::Text)
                .column("family_name", DataType::Text)
                .build(),
        )
        .unwrap();
        for (id, given, family) in [
            (1, "Sara", "Guttinger"),
            (2, "Sara", "Meier"),
            (3, "Anna", "Keller"),
            (4, "Sara", "Weber"),
            (5, "Sara", "Frei"),
        ] {
            db.insert(
                "individual",
                vec![Value::Int(id), Value::from(given), Value::from(family)],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn normalization_strips_qualifiers_everywhere() {
        assert_eq!(normalize_column("individual.party_id"), "party_id");
        assert_eq!(
            normalize_column("sum(trade_order_td.amount)"),
            "sum(amount)"
        );
        assert_eq!(normalize_column("count(*)"), "count(*)");
        assert_eq!(normalize_column("Family_Name"), "family_name");
    }

    #[test]
    fn identical_queries_score_perfectly() {
        let db = db();
        let gold = db
            .run_sql("SELECT party_id, family_name FROM individual WHERE given_name = 'Sara'")
            .unwrap();
        let soda = db
            .run_sql("SELECT * FROM individual WHERE given_name = 'Sara'")
            .unwrap();
        let pr = evaluate(&soda, &[gold]);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.f1(), 1.0);
    }

    #[test]
    fn subset_results_have_full_precision_but_low_recall() {
        let db = db();
        let gold = db
            .run_sql("SELECT party_id, family_name FROM individual WHERE given_name = 'Sara'")
            .unwrap();
        let soda = db
            .run_sql("SELECT * FROM individual WHERE given_name = 'Sara' AND party_id = 1")
            .unwrap();
        let pr = evaluate(&soda, &[gold]);
        assert_eq!(pr.precision, 1.0);
        assert!((pr.recall - 0.25).abs() < 1e-9);
    }

    #[test]
    fn superset_results_lose_precision() {
        let db = db();
        let gold = db
            .run_sql("SELECT party_id, family_name FROM individual WHERE given_name = 'Sara'")
            .unwrap();
        let soda = db.run_sql("SELECT * FROM individual").unwrap();
        let pr = evaluate(&soda, &[gold]);
        assert!((pr.precision - 0.8).abs() < 1e-9);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn missing_columns_score_zero() {
        let db = db();
        let gold = db
            .run_sql("SELECT party_id, family_name FROM individual WHERE given_name = 'Sara'")
            .unwrap();
        let soda = db.run_sql("SELECT given_name FROM individual").unwrap();
        assert_eq!(evaluate(&soda, &[gold]), PrecisionRecall::zero());
    }

    #[test]
    fn multi_statement_gold_is_a_union() {
        let db = db();
        let gold_a = db
            .run_sql("SELECT party_id, family_name FROM individual WHERE party_id = 1")
            .unwrap();
        let gold_b = db
            .run_sql("SELECT party_id, family_name FROM individual WHERE party_id = 3")
            .unwrap();
        let soda = db
            .run_sql("SELECT * FROM individual WHERE party_id = 1")
            .unwrap();
        let pr = evaluate(&soda, &[gold_a, gold_b]);
        assert_eq!(pr.precision, 1.0);
        assert!((pr.recall - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_soda_result_scores_zero() {
        let db = db();
        let gold = db
            .run_sql("SELECT party_id FROM individual WHERE given_name = 'Sara'")
            .unwrap();
        let soda = db
            .run_sql("SELECT * FROM individual WHERE given_name = 'Nobody'")
            .unwrap();
        assert_eq!(evaluate(&soda, &[gold]), PrecisionRecall::zero());
    }
}
