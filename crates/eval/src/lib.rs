//! # soda-eval
//!
//! The evaluation harness of the SODA reproduction: the experiment workload of
//! Table 2 with hand-written gold-standard SQL, tuple-level precision/recall
//! metrics, and drivers that regenerate every table and figure of the paper's
//! evaluation section (Tables 1–5, Figures 1–10).
//!
//! The entry points are:
//!
//! * [`workload::workload`] — the 13 experiment queries (Table 2),
//! * [`experiments::run_workload`] — runs SODA on the full workload and
//!   computes precision/recall, complexity and runtimes (Tables 3 and 4),
//! * [`experiments::table1`], [`experiments::table5`],
//!   [`experiments::figures`] — the remaining tables and figures,
//! * [`report`] — renders everything in the paper's tabular style.

pub mod experiments;
pub mod gold;
pub mod metrics;
pub mod report;
pub mod workload;

pub use experiments::{run_workload, QueryEvaluation};
pub use metrics::{evaluate, normalize_column, PrecisionRecall};
pub use workload::{workload, WorkloadQuery};
