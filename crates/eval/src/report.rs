//! Plain-text renderers that print each experiment in the paper's tabular
//! style (measured values side by side with the paper's reported values).

use crate::experiments::historization::HistorizationRow;
use crate::experiments::table1::Table1Row;
use crate::experiments::table5::Table5;
use crate::experiments::QueryEvaluation;
use crate::workload::WorkloadQuery;

fn hline(width: usize) -> String {
    "-".repeat(width)
}

/// Renders Table 1 (schema-graph complexity).
pub fn print_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 1: Complexity of the schema graph\n");
    out.push_str(&format!(
        "{:<28} {:>10} {:>10}\n",
        "Type", "measured", "paper"
    ));
    out.push_str(&format!("{}\n", hline(50)));
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:>10} {:>10}\n",
            r.metric, r.measured, r.paper
        ));
    }
    out
}

/// Renders Table 2 (the experiment queries).
pub fn print_table2(queries: &[WorkloadQuery]) -> String {
    let mut out = String::new();
    out.push_str("Table 2: Experiment queries\n");
    out.push_str(&format!(
        "{:<6} {:<45} {:<8} {}\n",
        "Q", "Keywords", "Types", "Comment"
    ));
    out.push_str(&format!("{}\n", hline(110)));
    for q in queries {
        let flags: String = q.features.iter().map(|f| f.flag()).collect();
        out.push_str(&format!(
            "{:<6} {:<45} {:<8} {}\n",
            q.id, q.keywords, flags, q.comment
        ));
    }
    out
}

/// Renders Table 3 (precision and recall of the best result per query).
pub fn print_table3(evals: &[QueryEvaluation]) -> String {
    let mut out = String::new();
    out.push_str("Table 3: Precision and recall (measured vs paper)\n");
    out.push_str(&format!(
        "{:<6} {:>6} {:>6} {:>9} {:>9} {:>11} {:>11}\n",
        "Q", "P", "R", "paper P", "paper R", "#P,R>0", "#P,R=0"
    ));
    out.push_str(&format!("{}\n", hline(66)));
    for e in evals {
        out.push_str(&format!(
            "{:<6} {:>6.2} {:>6.2} {:>9.2} {:>9.2} {:>11} {:>11}\n",
            e.id,
            e.best.precision,
            e.best.recall,
            e.reference.paper_precision,
            e.reference.paper_recall,
            e.results_positive,
            e.results_zero
        ));
    }
    out
}

/// Renders Table 4 (query complexity and runtimes).
pub fn print_table4(evals: &[QueryEvaluation]) -> String {
    let mut out = String::new();
    out.push_str("Table 4: Query complexity and runtime\n");
    out.push_str(&format!(
        "{:<6} {:>11} {:>9} {:>14} {:>14} {:>12} {:>12}\n",
        "Q", "complexity", "#results", "SODA (ms)", "total (ms)", "paper cmplx", "paper SODA s"
    ));
    out.push_str(&format!("{}\n", hline(84)));
    for e in evals {
        out.push_str(&format!(
            "{:<6} {:>11} {:>9} {:>14.2} {:>14.2} {:>12} {:>12.2}\n",
            e.id,
            e.complexity,
            e.num_results,
            e.soda_runtime.as_secs_f64() * 1000.0,
            e.total_runtime.as_secs_f64() * 1000.0,
            e.reference.paper_complexity,
            e.reference.paper_soda_runtime_s
        ));
    }
    out
}

/// Renders Table 5 (qualitative comparison).
pub fn print_table5(table: &Table5) -> String {
    let mut out = String::new();
    out.push_str("Table 5: Qualitative comparison\n");
    out.push_str(&format!(
        "{:<18} {:<28}",
        "Query type", "Experiment queries"
    ));
    for s in &table.systems {
        out.push_str(&format!(" {:>11}", s.system));
    }
    out.push('\n');
    out.push_str(&format!("{}\n", hline(46 + 12 * table.systems.len())));
    for (i, (feature, queries)) in table.features.iter().enumerate() {
        out.push_str(&format!(
            "{:<18} {:<28}",
            feature.label(),
            queries.join(", ")
        ));
        for s in &table.systems {
            let cell = s.support.get(i).map(|sup| sup.cell()).unwrap_or("?");
            out.push_str(&format!(" {cell:>11}"));
        }
        out.push('\n');
    }
    out.push('\n');
    out.push_str("Workload queries answered end-to-end:\n");
    for s in &table.systems {
        out.push_str(&format!(
            "  {:<11} {:>2}/13: {}\n",
            s.system,
            s.answered.len(),
            s.answered.join(", ")
        ));
    }
    out
}

/// Renders the historization-annotation experiment (extension): entity recall
/// of Q2.1/Q2.2 on the paper-faithful vs. the annotated metadata graph.
pub fn print_historization(rows: &[HistorizationRow]) -> String {
    let mut out = String::new();
    out.push_str("Historization annotations (extension): entity precision/recall of Q2.1/Q2.2\n");
    out.push_str(&format!(
        "{:<6} {:<18} {:>9} {:>9} {:>9} {:>11} {:>9} {:>9} {:>11}\n",
        "Q",
        "Keywords",
        "#entities",
        "plain P",
        "plain R",
        "plain page",
        "annot P",
        "annot R",
        "annot page"
    ));
    out.push_str(&format!("{}\n", hline(100)));
    for r in rows {
        out.push_str(&format!(
            "{:<6} {:<18} {:>9} {:>9.2} {:>9.2} {:>11.2} {:>9.2} {:>9.2} {:>11.2}\n",
            r.id,
            r.keywords,
            r.gold_entities,
            r.plain_best_precision,
            r.plain_best_recall,
            r.plain_page_recall,
            r.annotated_best_precision,
            r.annotated_best_recall,
            r.annotated_page_recall
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::table1::Table1Row;

    #[test]
    fn table1_rendering_contains_measured_and_paper_columns() {
        let rows = vec![Table1Row {
            metric: "#Physical tables",
            measured: 472,
            paper: 472,
        }];
        let text = print_table1(&rows);
        assert!(text.contains("#Physical tables"));
        assert!(text.contains("472"));
        assert!(text.contains("paper"));
    }

    #[test]
    fn table2_rendering_lists_flags() {
        let text = print_table2(&crate::workload::workload());
        assert!(text.contains("1.0"));
        assert!(text.contains("private customers family name"));
        assert!(text.contains("DSI") || text.contains("D"));
    }

    #[test]
    fn historization_rendering_shows_both_variants() {
        let rows = vec![HistorizationRow {
            id: "2.1".into(),
            keywords: "Sara".into(),
            gold_entities: 20,
            plain_best_precision: 1.0,
            plain_best_recall: 0.2,
            plain_page_recall: 0.2,
            annotated_best_precision: 1.0,
            annotated_best_recall: 0.8,
            annotated_page_recall: 1.0,
        }];
        let text = print_historization(&rows);
        assert!(text.contains("2.1"));
        assert!(text.contains("0.20"));
        assert!(text.contains("0.80"));
        assert!(text.contains("annot page"));
    }
}
