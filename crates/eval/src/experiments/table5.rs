//! Table 5 — qualitative comparison with DBExplorer, DISCOVER, BANKS, SQAK and
//! Keymantic.
//!
//! The declared capability matrix reproduces the paper's table; in addition,
//! every baseline is actually *run* on the workload so the table can be backed
//! empirically: a system "covers" a workload query if it produces at least one
//! SQL statement that executes on the warehouse.

use soda_baselines::{all_baselines, capability_matrix, QueryFeature, Support};
use soda_core::{SodaConfig, SodaEngine};
use soda_relation::InvertedIndex;
use soda_warehouse::Warehouse;

use crate::workload::workload;

/// Empirical outcome of one system on the workload.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SystemCoverage {
    /// System name.
    pub system: String,
    /// Ids of workload queries the system produced an executable answer for.
    pub answered: Vec<String>,
    /// Declared support per feature (Table 5 row cells).
    pub support: Vec<Support>,
}

/// The data behind Table 5.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Table5 {
    /// Feature rows in paper order, with the workload queries requiring them.
    pub features: Vec<(QueryFeature, Vec<String>)>,
    /// Per-system coverage (baselines plus SODA, in paper column order).
    pub systems: Vec<SystemCoverage>,
}

/// Runs every baseline plus SODA on the workload.
pub fn table5(warehouse: &Warehouse) -> Table5 {
    let index = InvertedIndex::build(&warehouse.database);
    let queries = workload();

    let features = QueryFeature::all()
        .iter()
        .map(|f| {
            (
                *f,
                queries
                    .iter()
                    .filter(|q| q.features.contains(f))
                    .map(|q| q.id.to_string())
                    .collect(),
            )
        })
        .collect();

    let declared = capability_matrix();
    let mut systems = Vec::new();
    for baseline in all_baselines() {
        let mut answered = Vec::new();
        for q in &queries {
            let Some(answer) = baseline.answer(&warehouse.database, &index, q.keywords) else {
                continue;
            };
            let executes = answer
                .sql
                .first()
                .map(|sql| warehouse.database.run_sql(sql).is_ok())
                .unwrap_or(false);
            if executes {
                answered.push(q.id.to_string());
            }
        }
        let support = declared
            .iter()
            .find(|c| c.system == baseline.name())
            .map(|c| c.support.clone())
            .unwrap_or_default();
        systems.push(SystemCoverage {
            system: baseline.name().to_string(),
            answered,
            support,
        });
    }

    // SODA itself.
    let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());
    let mut answered = Vec::new();
    for q in &queries {
        let produced = engine
            .search(q.keywords)
            .map(|results| !results.is_empty())
            .unwrap_or(false);
        if produced {
            answered.push(q.id.to_string());
        }
    }
    systems.push(SystemCoverage {
        system: "SODA".to_string(),
        answered,
        support: declared
            .iter()
            .find(|c| c.system == "SODA")
            .map(|c| c.support.clone())
            .unwrap_or_default(),
    });

    Table5 { features, systems }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_warehouse::enterprise::{self, EnterpriseConfig};

    #[test]
    fn soda_answers_every_workload_query_and_baselines_answer_fewer() {
        let w = enterprise::build_with(EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 0.1,
        });
        let t = table5(&w);
        assert_eq!(t.systems.len(), 6);
        let soda = t.systems.iter().find(|s| s.system == "SODA").unwrap();
        assert_eq!(soda.answered.len(), 13, "SODA must answer all queries");
        for s in &t.systems {
            if s.system != "SODA" {
                assert!(
                    s.answered.len() < 13,
                    "{} unexpectedly answered every query",
                    s.system
                );
            }
        }
        // SQAK answers only aggregate-style queries.
        let sqak = t.systems.iter().find(|s| s.system == "SQAK").unwrap();
        assert!(sqak.answered.iter().all(|id| id == "9.0" || id == "10.0"));
        // Feature rows cover all six query types.
        assert_eq!(t.features.len(), 6);
    }
}
