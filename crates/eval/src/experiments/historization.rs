//! Historization-annotation experiment (extension).
//!
//! The paper attributes the low recall of Q2.1/Q2.2 to bi-temporal
//! historization: the join keys of the `*_name_hist` tables are not reflected
//! in the schema graph, so SODA only finds parties whose *current* name
//! matches (§5.2.1).  The proposed remedy — annotating the schema graph with
//! the historization join relationships — is implemented by
//! [`soda_warehouse::enterprise::build_with_historization`]; this experiment
//! measures what the annotation buys.
//!
//! Because the historised rows carry *former* names, tuple-level comparison
//! against the gold standard would conflate two effects (reaching the rows at
//! all, and which name variant is projected).  The experiment therefore
//! reports **entity recall**: the fraction of gold `party_id`s covered by a
//! result — the business question "find every party ever named Sara" is about
//! the parties, not the name variants.

use soda_core::{SodaConfig, SodaEngine};
use soda_warehouse::enterprise::{self, EnterpriseConfig};
use soda_warehouse::Warehouse;

use soda_relation::ResultSet;

use crate::metrics::{normalize_column, project};
use crate::workload::{workload, WorkloadQuery};

/// Entity-recall comparison for one historisation-affected query.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct HistorizationRow {
    /// Query id ("2.1", "2.2").
    pub id: String,
    /// The SODA input.
    pub keywords: String,
    /// Number of gold entities (distinct party ids across the gold statements).
    pub gold_entities: usize,
    /// Entity precision of the best (by F1) result on the paper-faithful graph.
    pub plain_best_precision: f64,
    /// Entity recall of the best (by F1) result on the paper-faithful graph.
    pub plain_best_recall: f64,
    /// Entity recall of the union of the whole result page, paper-faithful graph.
    pub plain_page_recall: f64,
    /// Entity precision of the best (by F1) result with historization annotations.
    pub annotated_best_precision: f64,
    /// Entity recall of the best (by F1) result with historization annotations.
    pub annotated_best_recall: f64,
    /// Entity recall of the union of the whole result page, annotated graph.
    pub annotated_page_recall: f64,
}

/// Queries of the workload whose recall the paper attributes to the
/// historisation gap.
fn affected_queries() -> Vec<WorkloadQuery> {
    workload()
        .into_iter()
        .filter(|q| matches!(q.id, "2.1" | "2.2"))
        .collect()
}

/// Distinct gold `party_id`s across the gold statements of a query, plus the
/// normalised gold output columns (a result must contain all of them to count
/// as answering the business question).
fn gold_entities(warehouse: &Warehouse, query: &WorkloadQuery) -> (Vec<String>, Vec<String>) {
    let mut entities = Vec::new();
    let mut columns: Vec<String> = Vec::new();
    for sql in &query.gold_sql {
        let rs = warehouse
            .database
            .run_sql(sql)
            .unwrap_or_else(|e| panic!("gold SQL of {} failed: {e}", query.id));
        if columns.is_empty() {
            columns = rs.columns().iter().map(|c| normalize_column(c)).collect();
        }
        if let Some(tuples) = project(&rs, &["party_id".to_string()]) {
            for t in tuples {
                let id = t.into_iter().next().unwrap_or_default();
                if !entities.contains(&id) {
                    entities.push(id);
                }
            }
        }
    }
    entities.sort();
    (entities, columns)
}

/// True when the result set exposes every gold output column (otherwise it
/// cannot answer the business question, exactly as in [`crate::metrics`]).
fn answers_the_question(rs: &ResultSet, gold_columns: &[String]) -> bool {
    project(rs, gold_columns).is_some()
}

/// Entity precision/recall of one engine run.
///
/// Per result that answers the question, entity precision is the fraction of
/// the result's distinct `party_id`s that are gold entities and entity recall
/// the fraction of gold entities covered.  The *best* result is picked by
/// entity F1 (mirroring the best-statement selection of Tables 3/4); the
/// *page* recall is the union over all results with entity precision 1.0 (the
/// paper observes that precision stays perfect while historization caps
/// recall).  Returns `(best_precision, best_recall, page_recall)`.
fn entity_recall(
    engine: &SodaEngine<'_>,
    query: &WorkloadQuery,
    gold: &[String],
    gold_columns: &[String],
) -> (f64, f64, f64) {
    let results = engine.search(query.keywords).unwrap_or_default();
    let mut best = (0.0_f64, 0.0_f64, 0.0_f64); // (f1, precision, recall)
    let mut union: Vec<String> = Vec::new();
    for result in &results {
        let Ok(rs) = engine.execute(result) else {
            continue;
        };
        if !answers_the_question(&rs, gold_columns) {
            continue;
        }
        let Some(tuples) = project(&rs, &["party_id".to_string()]) else {
            continue;
        };
        let returned: Vec<String> = tuples
            .into_iter()
            .map(|t| t.into_iter().next().unwrap_or_default())
            .collect();
        if returned.is_empty() {
            continue;
        }
        let covered: Vec<String> = returned
            .iter()
            .filter(|id| gold.contains(*id))
            .cloned()
            .collect();
        let precision = covered.len() as f64 / returned.len() as f64;
        let recall = covered.len() as f64 / gold.len().max(1) as f64;
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        if f1 > best.0 {
            best = (f1, precision, recall);
        }
        if precision >= 0.99 {
            for id in covered {
                if !union.contains(&id) {
                    union.push(id);
                }
            }
        }
    }
    (
        best.1,
        best.2,
        union.len() as f64 / gold.len().max(1) as f64,
    )
}

/// Runs the comparison: Q2.1/Q2.2 on the paper-faithful enterprise warehouse
/// vs. the historization-annotated variant (identical base data).
pub fn historization_comparison(config: EnterpriseConfig) -> Vec<HistorizationRow> {
    let plain = enterprise::build_with(config);
    let annotated = enterprise::build_with_historization(config);
    let plain_engine = SodaEngine::new(&plain.database, &plain.graph, SodaConfig::default());
    let annotated_engine =
        SodaEngine::new(&annotated.database, &annotated.graph, SodaConfig::default());

    affected_queries()
        .into_iter()
        .map(|query| {
            let (gold, gold_columns) = gold_entities(&plain, &query);
            let (plain_precision, plain_best, plain_page) =
                entity_recall(&plain_engine, &query, &gold, &gold_columns);
            let (annotated_precision, annotated_best, annotated_page) =
                entity_recall(&annotated_engine, &query, &gold, &gold_columns);
            HistorizationRow {
                id: query.id.to_string(),
                keywords: query.keywords.to_string(),
                gold_entities: gold.len(),
                plain_best_precision: plain_precision,
                plain_best_recall: plain_best,
                plain_page_recall: plain_page,
                annotated_best_precision: annotated_precision,
                annotated_best_recall: annotated_best,
                annotated_page_recall: annotated_page,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotations_recover_the_historised_entities() {
        let rows = historization_comparison(EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 0.15,
        });
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.gold_entities >= 10, "{}: tiny gold set", row.id);
            // Paper-faithful graph: only the current names are reachable —
            // the paper reports recall 0.20 at precision 1.00 for both queries.
            assert!(
                (row.plain_best_recall - 0.20).abs() < 0.05,
                "{}: plain best recall {:.2}",
                row.id,
                row.plain_best_recall
            );
            assert!(
                row.plain_best_precision >= 0.99 && row.annotated_best_precision >= 0.99,
                "{}: precision must stay perfect (plain {:.2}, annotated {:.2})",
                row.id,
                row.plain_best_precision,
                row.annotated_best_precision
            );
            // Annotated graph: the history-table interpretation joins back to
            // the party, covering the historised majority…
            assert!(
                row.annotated_best_recall >= 0.75,
                "{}: annotated best recall {:.2}",
                row.id,
                row.annotated_best_recall
            );
            // …and the result page as a whole covers every gold entity.
            assert!(
                row.annotated_page_recall >= 0.99,
                "{}: annotated page recall {:.2}",
                row.id,
                row.annotated_page_recall
            );
            assert!(row.annotated_best_recall > row.plain_best_recall);
        }
    }
}
