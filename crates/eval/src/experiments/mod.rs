//! Experiment drivers for every table and figure of the paper's evaluation.

pub mod figures;
pub mod historization;
pub mod table1;
pub mod table5;

use std::time::{Duration, Instant};

use soda_core::{SodaConfig, SodaEngine};
use soda_warehouse::Warehouse;

use crate::metrics::{evaluate, PrecisionRecall};
use crate::workload::{workload, WorkloadQuery};

/// Evaluation of a single SQL statement produced by SODA.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ResultEvaluation {
    /// The generated SQL.
    pub sql: String,
    /// Precision against the gold standard.
    pub precision: f64,
    /// Recall against the gold standard.
    pub recall: f64,
    /// Number of rows the statement returned.
    pub rows: usize,
    /// Execution time of the statement.
    pub execution: Duration,
}

/// Evaluation of one workload query (a row of Tables 3 and 4).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct QueryEvaluation {
    /// Query id ("1.0", …).
    pub id: String,
    /// The SODA input.
    pub keywords: String,
    /// Query complexity (combinatorial product of entry points).
    pub complexity: usize,
    /// Number of SQL statements produced.
    pub num_results: usize,
    /// Precision/recall of the best produced statement.
    pub best: PrecisionRecall,
    /// Number of produced statements with both precision and recall > 0.
    pub results_positive: usize,
    /// Number of produced statements with precision = recall = 0.
    pub results_zero: usize,
    /// SODA processing time (the five pipeline steps).
    pub soda_runtime: Duration,
    /// Total end-to-end time including executing every produced statement.
    pub total_runtime: Duration,
    /// Per-statement evaluations.
    pub per_result: Vec<ResultEvaluation>,
    /// The workload definition (includes the paper's reported numbers).
    pub reference: WorkloadQuery,
}

/// Runs the full workload of Table 2 against a warehouse and evaluates every
/// produced statement against the gold standard.  This single pass produces
/// the data behind both Table 3 (precision/recall) and Table 4 (complexity and
/// runtime).
pub fn run_workload(warehouse: &Warehouse, config: SodaConfig) -> Vec<QueryEvaluation> {
    let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, config);
    run_workload_with_engine(warehouse, &engine)
}

/// Like [`run_workload`] but reusing an already constructed engine (the
/// benchmarks construct the engine once and measure the query phase only).
pub fn run_workload_with_engine(
    warehouse: &Warehouse,
    engine: &SodaEngine<'_>,
) -> Vec<QueryEvaluation> {
    let mut evaluations = Vec::new();
    for query in workload() {
        let gold: Vec<_> = query
            .gold_sql
            .iter()
            .map(|sql| {
                warehouse
                    .database
                    .run_sql(sql)
                    .unwrap_or_else(|e| panic!("gold SQL of {} failed: {e}", query.id))
            })
            .collect();

        let started = Instant::now();
        let (results, trace) = engine
            .search_traced(query.keywords)
            .unwrap_or_else(|e| panic!("query {} failed: {e}", query.id));
        let soda_runtime = trace.timings.total();

        let mut per_result = Vec::new();
        for result in &results {
            let exec_start = Instant::now();
            let executed = engine.execute(result);
            let execution = exec_start.elapsed();
            let (pr, rows) = match executed {
                Ok(rs) => (evaluate(&rs, &gold), rs.row_count()),
                Err(_) => (PrecisionRecall::zero(), 0),
            };
            per_result.push(ResultEvaluation {
                sql: result.sql.clone(),
                precision: pr.precision,
                recall: pr.recall,
                rows,
                execution,
            });
        }
        let total_runtime = started.elapsed();

        let best = per_result
            .iter()
            .map(|r| PrecisionRecall {
                precision: r.precision,
                recall: r.recall,
            })
            .max_by(|a, b| {
                (a.f1(), a.precision)
                    .partial_cmp(&(b.f1(), b.precision))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or_else(PrecisionRecall::zero);
        let results_positive = per_result
            .iter()
            .filter(|r| r.precision > 0.0 && r.recall > 0.0)
            .count();
        let results_zero = per_result
            .iter()
            .filter(|r| r.precision == 0.0 && r.recall == 0.0)
            .count();

        evaluations.push(QueryEvaluation {
            id: query.id.to_string(),
            keywords: query.keywords.to_string(),
            complexity: trace.complexity,
            num_results: results.len(),
            best,
            results_positive,
            results_zero,
            soda_runtime,
            total_runtime,
            per_result,
            reference: query,
        });
    }
    evaluations
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_warehouse::enterprise::{self, EnterpriseConfig};

    fn quick_warehouse() -> Warehouse {
        enterprise::build_with(EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 0.15,
        })
    }

    #[test]
    fn workload_run_produces_an_evaluation_per_query() {
        let w = quick_warehouse();
        let evals = run_workload(&w, SodaConfig::default());
        assert_eq!(evals.len(), 13);
        for e in &evals {
            assert!(e.complexity >= 1, "query {} has zero complexity", e.id);
            assert!(
                e.soda_runtime.as_nanos() > 0,
                "query {} reports no SODA runtime",
                e.id
            );
        }
    }

    #[test]
    fn majority_of_queries_reach_full_precision() {
        let w = quick_warehouse();
        let evals = run_workload(&w, SodaConfig::default());
        let full_precision = evals.iter().filter(|e| e.best.precision >= 0.99).count();
        assert!(
            full_precision >= 8,
            "only {full_precision}/13 queries reached precision 1.0: {:?}",
            evals
                .iter()
                .map(|e| (e.id.clone(), e.best.precision, e.best.recall))
                .collect::<Vec<_>>()
        );
    }
}
