//! Table 1 — complexity of the schema graph (conceptual, logical, physical).

use soda_warehouse::Warehouse;

/// One row of Table 1: a metric, our measured value and the paper's value.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct Table1Row {
    /// Metric name as printed in the paper.
    pub metric: &'static str,
    /// Value measured on the synthetic enterprise warehouse.
    pub measured: usize,
    /// Value reported in the paper.
    pub paper: usize,
}

/// Computes Table 1 for a warehouse.
pub fn table1(warehouse: &Warehouse) -> Vec<Table1Row> {
    let s = warehouse.stats();
    vec![
        Table1Row {
            metric: "#Conceptual entities",
            measured: s.conceptual_entities,
            paper: 226,
        },
        Table1Row {
            metric: "#Conceptual attributes",
            measured: s.conceptual_attributes,
            paper: 985,
        },
        Table1Row {
            metric: "#Conceptual relationships",
            measured: s.conceptual_relationships,
            paper: 243,
        },
        Table1Row {
            metric: "#Logical entities",
            measured: s.logical_entities,
            paper: 436,
        },
        Table1Row {
            metric: "#Logical attributes",
            measured: s.logical_attributes,
            paper: 2700,
        },
        Table1Row {
            metric: "#Logical relationships",
            measured: s.logical_relationships,
            paper: 254,
        },
        Table1Row {
            metric: "#Physical tables",
            measured: s.physical_tables,
            paper: 472,
        },
        Table1Row {
            metric: "#Physical columns",
            measured: s.physical_columns,
            paper: 3181,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_warehouse::enterprise::{self, EnterpriseConfig};

    #[test]
    fn padded_enterprise_matches_the_paper_exactly() {
        let w = enterprise::build_with(EnterpriseConfig {
            seed: 42,
            padding: true,
            data_scale: 0.05,
        });
        for row in table1(&w) {
            assert_eq!(row.measured, row.paper, "mismatch for {}", row.metric);
        }
    }

    #[test]
    fn unpadded_core_is_much_smaller() {
        let w = enterprise::build_with(EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 0.05,
        });
        let rows = table1(&w);
        assert!(rows.iter().all(|r| r.measured < r.paper));
    }
}
