//! Shard-invariance property tests: partitioning the lookup layer must never
//! change what the engine produces.  For generated warehouses and a corpus of
//! queries, the generated SQL is byte-identical and the ranking (scores and
//! order) identical across shard counts 1, 2 and 8 — the invariant that lets
//! the serving layer treat `shards` purely as a latency knob.

use proptest::prelude::*;

use soda_core::{SodaConfig, SodaEngine};
use soda_warehouse::enterprise::{self, EnterpriseConfig};
use soda_warehouse::{minibank, Warehouse};

const SHARD_COUNTS: &[usize] = &[1, 2, 8];

/// A corpus covering every query shape: plain keywords, base-data lookups,
/// business terms, comparisons, aggregation, grouping and paging.
const CORPUS: &[&str] = &[
    "Sara Guttinger",
    "wealthy customers",
    "financial instruments customers Zurich",
    "customers Switzerland",
    "Credit Suisse",
    "salary >= 100000",
    "sum (amount) group by (currency)",
    "count (transactions) group by (company name)",
    "Top 10 sum (amount) group by (company name)",
    "YEN trade orders",
    "addresses Zurich Switzerland",
];

fn engine_with_shards(warehouse: &Warehouse, shards: usize) -> SodaEngine<'_> {
    SodaEngine::new(
        &warehouse.database,
        &warehouse.graph,
        SodaConfig {
            shards,
            ..SodaConfig::default()
        },
    )
}

/// Runs the corpus on one warehouse and asserts full result equality
/// (SQL text, scores, ranking order, interpretations) across shard counts.
fn assert_corpus_invariant(name: &str, warehouse: &Warehouse) {
    let baseline = engine_with_shards(warehouse, 1);
    for &shards in &SHARD_COUNTS[1..] {
        let sharded = engine_with_shards(warehouse, shards);
        for query in CORPUS {
            let expected = baseline.search(query);
            let got = sharded.search(query);
            match (&expected, &got) {
                (Ok(a), Ok(b)) => assert_eq!(
                    a, b,
                    "{name}: '{query}' diverged between 1 and {shards} shards"
                ),
                (Err(_), Err(_)) => {}
                _ => panic!(
                    "{name}: '{query}' error behaviour diverged between 1 and {shards} shards"
                ),
            }
        }
    }
}

#[test]
fn corpus_is_shard_invariant_on_minibank() {
    let warehouse = minibank::build(42);
    assert_corpus_invariant("minibank", &warehouse);
}

#[test]
fn corpus_is_shard_invariant_on_the_enterprise_warehouse() {
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.1,
    });
    assert_corpus_invariant("enterprise", &warehouse);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary keyword combinations over the mini-bank vocabulary produce
    /// byte-identical SQL and identical scores at 1, 2 and 8 shards.
    #[test]
    fn random_keyword_queries_are_shard_invariant(
        words in proptest::collection::vec(
            prop_oneof![
                Just("customers"), Just("Zurich"), Just("financial"), Just("instruments"),
                Just("Sara"), Just("wealthy"), Just("Switzerland"), Just("volume"),
                Just("organizations"), Just("transactions"), Just("gibberishword")
            ],
            1..5
        )
    ) {
        thread_local! {
            static WAREHOUSE: soda_warehouse::Warehouse = minibank::build(42);
        }
        WAREHOUSE.with(|warehouse| {
            let input = words.join(" ");
            let baseline: Vec<_> = match engine_with_shards(warehouse, 1).search(&input) {
                Ok(results) => results,
                Err(_) => return Ok(()),
            };
            for &shards in &SHARD_COUNTS[1..] {
                let got = engine_with_shards(warehouse, shards)
                    .search(&input)
                    .expect("sharded engine must accept what the baseline accepted");
                prop_assert_eq!(
                    &baseline, &got,
                    "'{}' diverged between 1 and {} shards", input, shards
                );
            }
            Ok(())
        })?;
    }
}
