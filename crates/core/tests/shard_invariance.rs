//! Shard-invariance property tests: partitioning the lookup layer must never
//! change what the engine produces.  For generated warehouses and a corpus of
//! queries, the generated SQL is byte-identical and the ranking (scores and
//! order) identical across shard counts 1, 2 and 8 — the invariant that lets
//! the serving layer treat `shards` purely as a latency knob.

use proptest::prelude::*;

use soda_core::{SodaConfig, SodaEngine};
use soda_warehouse::enterprise::{self, EnterpriseConfig};
use soda_warehouse::{minibank, Warehouse};

const SHARD_COUNTS: &[usize] = &[1, 2, 8];

/// A corpus covering every query shape: plain keywords, base-data lookups,
/// business terms, comparisons, aggregation, grouping and paging.
const CORPUS: &[&str] = &[
    "Sara Guttinger",
    "wealthy customers",
    "financial instruments customers Zurich",
    "customers Switzerland",
    "Credit Suisse",
    "salary >= 100000",
    "sum (amount) group by (currency)",
    "count (transactions) group by (company name)",
    "Top 10 sum (amount) group by (company name)",
    "YEN trade orders",
    "addresses Zurich Switzerland",
];

fn engine_with_shards(warehouse: &Warehouse, shards: usize) -> SodaEngine<'_> {
    SodaEngine::new(
        &warehouse.database,
        &warehouse.graph,
        SodaConfig {
            shards,
            ..SodaConfig::default()
        },
    )
}

/// Runs the corpus on one warehouse and asserts full result equality
/// (SQL text, scores, ranking order, interpretations) across shard counts.
fn assert_corpus_invariant(name: &str, warehouse: &Warehouse) {
    let baseline = engine_with_shards(warehouse, 1);
    for &shards in &SHARD_COUNTS[1..] {
        let sharded = engine_with_shards(warehouse, shards);
        for query in CORPUS {
            let expected = baseline.search(query);
            let got = sharded.search(query);
            match (&expected, &got) {
                (Ok(a), Ok(b)) => assert_eq!(
                    a, b,
                    "{name}: '{query}' diverged between 1 and {shards} shards"
                ),
                (Err(_), Err(_)) => {}
                _ => panic!(
                    "{name}: '{query}' error behaviour diverged between 1 and {shards} shards"
                ),
            }
        }
    }
}

#[test]
fn corpus_is_shard_invariant_on_minibank() {
    let warehouse = minibank::build(42);
    assert_corpus_invariant("minibank", &warehouse);
}

#[test]
fn corpus_is_shard_invariant_on_the_enterprise_warehouse() {
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.1,
    });
    assert_corpus_invariant("enterprise", &warehouse);
}

/// The acceptance invariant of streaming ingestion: with live (uncompacted)
/// side logs covering appends *and* a wholesale replacement, generated SQL
/// is byte-identical to a snapshot fully rebuilt over the absorbed database
/// — at every shard count, and identical across shard counts.
#[test]
fn corpus_is_invariant_with_live_side_logs() {
    use soda_core::{ChangeFeed, EngineSnapshot, SnapshotHandle, Value};
    use std::sync::Arc;

    let warehouse = minibank::build(42);
    let individual = {
        let table = warehouse.database.table("individuals").unwrap();
        let mut row = table.rows()[0].clone();
        row[0] = Value::Int(9_999);
        row[1] = Value::from("Zebulon");
        row
    };
    let feed = ChangeFeed::new()
        .append_row(
            "addresses",
            vec![
                Value::Int(900),
                Value::Int(1),
                Value::from("Log Lane 1"),
                Value::from("Sidelogville"),
                Value::from("Switzerland"),
            ],
        )
        .append_row("individuals", individual)
        .replace(
            "securities",
            vec![vec![
                Value::Int(1),
                Value::from("Alpine Gold Bond"),
                Value::from("CH0000000001"),
            ]],
        );
    let corpus: Vec<&str> = CORPUS
        .iter()
        .copied()
        .chain(["Sidelogville", "Zebulon", "Alpine Gold Bond", "securities"])
        .collect();

    let mut per_shard_answers: Vec<Vec<String>> = Vec::new();
    for &shards in SHARD_COUNTS {
        let config = SodaConfig {
            shards,
            ..SodaConfig::default()
        };
        let handle = SnapshotHandle::new(Arc::new(EngineSnapshot::build(
            Arc::new(warehouse.database.clone()),
            Arc::new(warehouse.graph.clone()),
            config.clone(),
        )));
        handle.absorb(&feed).expect("feed absorbs");
        let absorbed = handle.load();
        assert!(
            !absorbed.shards_with_side_logs().is_empty(),
            "the probes below must exercise live side logs"
        );
        let rebuilt = EngineSnapshot::build(absorbed.database_arc(), absorbed.graph_arc(), config);
        let mut answers: Vec<String> = Vec::new();
        for query in &corpus {
            match (absorbed.search(query), rebuilt.search(query)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a, b,
                        "'{query}' diverged from a full rebuild at {shards} shards"
                    );
                    answers.extend(a.into_iter().map(|r| r.sql));
                }
                (Err(_), Err(_)) => {}
                _ => panic!("'{query}' error behaviour diverged at {shards} shards"),
            }
        }
        assert!(
            answers.iter().any(|sql| sql.contains("Sidelogville")),
            "the appended row must be reachable"
        );
        per_shard_answers.push(answers);
    }
    for (i, answers) in per_shard_answers.iter().enumerate().skip(1) {
        assert_eq!(
            &per_shard_answers[0], answers,
            "live-side-log answers diverged between {} and {} shards",
            SHARD_COUNTS[0], SHARD_COUNTS[i]
        );
    }
}

/// Trace invariance: running a query with a collecting [`TraceSink`] (and a
/// probe recorder) must produce byte-identical pages — and leave the cache
/// fingerprint untouched — compared to the untraced `NoopSink` path, at
/// every shard count.  Observability must never change an answer.
#[test]
fn tracing_never_changes_answers_or_fingerprints() {
    use soda_core::{CollectingSink, EngineSnapshot, NoopSink, ProbeRecorder};
    use std::sync::Arc;

    let warehouse = minibank::build(42);
    for &shards in &[1usize, 4] {
        let snapshot = EngineSnapshot::build(
            Arc::new(warehouse.database.clone()),
            Arc::new(warehouse.graph.clone()),
            SodaConfig {
                shards,
                ..SodaConfig::default()
            },
        );
        let fingerprint = snapshot.cache_fingerprint();
        for query in CORPUS {
            let plain = snapshot.search_paged_observed(query, 0, 10, None, &NoopSink);
            let sink = CollectingSink::new();
            let recorder = ProbeRecorder::new();
            let traced = snapshot.search_paged_observed(query, 0, 10, Some(&recorder), &sink);
            match (plain, traced) {
                (Ok((a, _)), Ok((b, _))) => {
                    assert_eq!(a, b, "'{query}' diverged under tracing at {shards} shards");
                }
                (Err(_), Err(_)) => {}
                _ => panic!("'{query}' error behaviour diverged under tracing at {shards} shards"),
            }
            let trace = sink.finish();
            if let Some(root) = trace.find("query") {
                // Traced executions carry the full stage taxonomy.
                for stage in soda_core::trace::names::STAGES {
                    assert!(
                        root.children.iter().any(|c| c.name == stage),
                        "'{query}': missing {stage} span at {shards} shards"
                    );
                }
            }
        }
        assert_eq!(
            snapshot.cache_fingerprint(),
            fingerprint,
            "tracing must not move the cache fingerprint at {shards} shards"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary keyword combinations over the mini-bank vocabulary produce
    /// byte-identical SQL and identical scores at 1, 2 and 8 shards.
    #[test]
    fn random_keyword_queries_are_shard_invariant(
        words in proptest::collection::vec(
            prop_oneof![
                Just("customers"), Just("Zurich"), Just("financial"), Just("instruments"),
                Just("Sara"), Just("wealthy"), Just("Switzerland"), Just("volume"),
                Just("organizations"), Just("transactions"), Just("gibberishword")
            ],
            1..5
        )
    ) {
        thread_local! {
            static WAREHOUSE: soda_warehouse::Warehouse = minibank::build(42);
        }
        WAREHOUSE.with(|warehouse| {
            let input = words.join(" ");
            let baseline: Vec<_> = match engine_with_shards(warehouse, 1).search(&input) {
                Ok(results) => results,
                Err(_) => return Ok(()),
            };
            for &shards in &SHARD_COUNTS[1..] {
                let got = engine_with_shards(warehouse, shards)
                    .search(&input)
                    .expect("sharded engine must accept what the baseline accepted");
                prop_assert_eq!(
                    &baseline, &got,
                    "'{}' diverged between 1 and {} shards", input, shards
                );
            }
            Ok(())
        })?;
    }
}
