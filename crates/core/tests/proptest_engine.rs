//! Property-based tests of the SODA engine: the input-query parser never
//! panics, generated SQL always parses and executes, and ranking respects the
//! provenance weights.

use proptest::prelude::*;

use soda_core::{parse_query, SodaConfig, SodaEngine};
use soda_relation::parse_select;
use soda_warehouse::minibank;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The input parser never panics on arbitrary printable input, and any
    /// successfully parsed query preserves at least one term.
    #[test]
    fn query_parser_never_panics(input in "[ -~]{0,60}") {
        if let Ok(query) = parse_query(&input) { prop_assert!(!query.terms.is_empty()) }
    }

    /// Keyword-only inputs over a small vocabulary always yield SQL that both
    /// parses and executes on the warehouse.
    #[test]
    fn generated_sql_is_always_executable(
        words in proptest::collection::vec(
            prop_oneof![
                Just("customers"), Just("Zurich"), Just("financial"), Just("instruments"),
                Just("Sara"), Just("wealthy"), Just("trading"), Just("volume"),
                Just("private"), Just("organizations"), Just("gibberishword")
            ],
            1..5
        )
    ) {
        // Building the warehouse per case would dominate; a thread-local
        // warehouse keeps the property fast.
        thread_local! {
            static ENGINE_DATA: (soda_warehouse::Warehouse,) = (minibank::build(42),);
        }
        ENGINE_DATA.with(|(warehouse,)| {
            let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());
            let input = words.join(" ");
            if let Ok(results) = engine.search(&input) {
                for r in results {
                    let parsed = parse_select(&r.sql);
                    prop_assert!(parsed.is_ok(), "unparseable SQL: {}", r.sql);
                    prop_assert!(
                        warehouse.database.run_sql(&r.sql).is_ok(),
                        "inexecutable SQL: {}",
                        r.sql
                    );
                    prop_assert!(!r.tables.is_empty());
                }
            }
            Ok(())
        })?;
    }

    /// Results are returned in non-increasing score order and scores stay
    /// within the weight range (0, 1].
    #[test]
    fn ranking_scores_are_sorted_and_bounded(
        words in proptest::collection::vec(
            prop_oneof![
                Just("customers"), Just("Zurich"), Just("instruments"),
                Just("Sara"), Just("salary"), Just("transactions")
            ],
            1..4
        )
    ) {
        thread_local! {
            static ENGINE_DATA: (soda_warehouse::Warehouse,) = (minibank::build(42),);
        }
        ENGINE_DATA.with(|(warehouse,)| {
            let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());
            if let Ok(results) = engine.search(&words.join(" ")) {
                for pair in results.windows(2) {
                    prop_assert!(pair[0].score >= pair[1].score);
                }
                for r in &results {
                    prop_assert!(r.score > 0.0 && r.score <= 1.0);
                }
            }
            Ok(())
        })?;
    }
}
