//! End-to-end tests of the SODA engine on the paper's running example
//! (the mini-bank of Section 2), covering the worked examples of §4.4 and the
//! classification example of Figure 5.

use soda_core::{Provenance, SodaConfig, SodaEngine};
use soda_relation::parse_select;
use soda_warehouse::minibank;

fn engine(warehouse: &soda_warehouse::Warehouse) -> SodaEngine<'_> {
    SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default())
}

#[test]
fn query1_sara_guttinger_produces_an_executable_join() {
    let w = minibank::build(42);
    let e = engine(&w);
    let results = e.search("Sara Guttinger").unwrap();
    assert!(!results.is_empty());
    let top = &results[0];
    // The generated SQL parses and executes.
    parse_select(&top.sql).unwrap();
    let rs = e.execute(top).unwrap();
    assert!(
        rs.row_count() >= 1,
        "Sara Guttinger must be found: {}",
        top.sql
    );
    // Both filters are present.
    assert!(
        top.sql.contains("'Sara'"),
        "missing Sara filter: {}",
        top.sql
    );
    assert!(
        top.sql.contains("'Guttinger'"),
        "missing Guttinger filter: {}",
        top.sql
    );
    // The individuals table participates; the inheritance parent is added.
    assert!(top.tables.iter().any(|t| t == "individuals"));
    assert!(top.tables.iter().any(|t| t == "parties"));
}

#[test]
fn figure5_classification_of_the_zurich_query() {
    let w = minibank::build(42);
    let e = engine(&w);
    let (_results, trace) = e
        .search_traced("customers Zurich financial instruments")
        .unwrap();
    // "customers" is found in the domain ontology.
    let customers = trace
        .classification
        .iter()
        .find(|(p, _)| p == "customers")
        .expect("customers classified");
    assert!(customers.1.contains(&Provenance::DomainOntology));
    // "zurich" is found in the base data.
    let zurich = trace
        .classification
        .iter()
        .find(|(p, _)| p == "zurich")
        .expect("zurich classified");
    assert!(zurich.1.contains(&Provenance::BaseData));
    // "financial instruments" is found twice: conceptual and logical schema.
    let fi = trace
        .classification
        .iter()
        .find(|(p, _)| p == "financial instruments")
        .expect("financial instruments classified");
    assert!(fi.1.contains(&Provenance::ConceptualSchema));
    assert!(fi.1.contains(&Provenance::LogicalSchema));
    // The paper computes complexity 1 x 1 x 2 = 2 because its physical names
    // are cryptic; our mini-bank physical table is also literally named
    // "financial_instruments", so the physical schema adds a third hit.
    assert_eq!(trace.complexity, 3);
}

#[test]
fn figure6_tables_step_discovers_the_expected_tables() {
    let w = minibank::build(42);
    let e = engine(&w);
    let results = e.search("customers Zurich financial instruments").unwrap();
    assert_eq!(results.len(), 3);
    // Union of discovered tables across the interpretations covers the
    // seven tables of Figure 6.
    let mut tables: Vec<String> = results.iter().flat_map(|r| r.tables.clone()).collect();
    tables.sort();
    tables.dedup();
    for expected in [
        "parties",
        "individuals",
        "organizations",
        "addresses",
        "financial_instruments",
        "fi_contains_sec",
        "securities",
    ] {
        assert!(
            tables.iter().any(|t| t == expected),
            "missing table {expected} in {tables:?}"
        );
    }
}

#[test]
fn ranking_prefers_the_conceptual_interpretation_over_the_logical_one() {
    let w = minibank::build(42);
    let e = engine(&w);
    let results = e.search("customers Zurich financial instruments").unwrap();
    assert_eq!(results.len(), 3);
    assert!(results[0].score >= results[1].score);
    assert!(results[1].score >= results[2].score);
    let top_fi = results[0]
        .interpretation
        .iter()
        .find(|i| i.phrase == "financial instruments")
        .unwrap();
    assert_eq!(top_fi.provenance, Provenance::ConceptualSchema);
    assert!(!top_fi.entry_uri.is_empty());
}

#[test]
fn query2_comparison_operators_become_where_predicates() {
    let w = minibank::build(42);
    let e = engine(&w);
    let results = e
        .search("salary >= 100000 and birthday = date(1981-04-23)")
        .unwrap();
    assert!(!results.is_empty());
    let top = &results[0];
    assert!(top.sql.contains("salary >= 100000"), "{}", top.sql);
    assert!(top.sql.contains("birthday = '1981-04-23'"), "{}", top.sql);
    let rs = e.execute(top).unwrap();
    // Sara Guttinger (id 1) was generated with exactly this birthday only if
    // the seed produces it; the query must at least execute.
    assert!(rs.columns().len() > 1);
}

#[test]
fn query3_aggregation_with_group_by_transaction_date() {
    let w = minibank::build(42);
    let e = engine(&w);
    let results = e
        .search("sum (amount) group by (transaction date)")
        .unwrap();
    assert!(!results.is_empty());
    let top = &results[0];
    assert!(top.sql.to_lowercase().contains("sum("), "{}", top.sql);
    assert!(top.sql.to_lowercase().contains("group by"), "{}", top.sql);
    let rs = e.execute(top).unwrap();
    assert!(rs.row_count() > 1, "grouped result expected: {}", top.sql);
}

#[test]
fn query4_count_transactions_grouped_by_company_name() {
    let w = minibank::build(42);
    let e = engine(&w);
    let results = e
        .search("count (transactions) group by (company name)")
        .unwrap();
    assert!(!results.is_empty());
    let top = &results[0];
    assert!(top.sql.to_lowercase().contains("count("), "{}", top.sql);
    assert!(
        top.sql.to_lowercase().contains("companyname"),
        "{}",
        top.sql
    );
    // The top-ranked interpretation expands the conceptual Transactions entity
    // into both (mutually exclusive) transaction sub-types, which joins to an
    // empty result — one of the failure modes §5.3.1 describes.  At least one
    // of the alternative interpretations must produce actual rows.
    let non_empty = results
        .iter()
        .any(|r| e.execute(r).map(|rs| rs.row_count() >= 1).unwrap_or(false));
    assert!(non_empty, "no interpretation produced rows");
}

#[test]
fn wealthy_customers_filter_comes_from_the_metadata() {
    let w = minibank::build(42);
    let e = engine(&w);
    let results = e.search("wealthy customers").unwrap();
    assert!(!results.is_empty());
    let top = &results[0];
    assert!(
        top.sql.contains("salary >= 500000"),
        "metadata-defined filter missing: {}",
        top.sql
    );
    let rs = e.execute(top).unwrap();
    assert!(rs.row_count() >= 1);
}

#[test]
fn top_n_adds_a_limit_and_ordering() {
    let w = minibank::build(42);
    let e = engine(&w);
    let results = e
        .search("Top 5 sum (amount) group by (transaction date)")
        .unwrap();
    assert!(!results.is_empty());
    let top = &results[0];
    assert!(top.sql.contains("LIMIT 5"), "{}", top.sql);
    assert!(top.sql.to_uppercase().contains("ORDER BY"), "{}", top.sql);
    let rs = e.execute(top).unwrap();
    assert!(rs.row_count() <= 5);
}

#[test]
fn snippets_are_limited_to_twenty_rows() {
    let w = minibank::build(42);
    let e = engine(&w);
    let results = e.search("Zurich").unwrap();
    assert!(!results.is_empty());
    let snippet = e.snippet(&results[0]).unwrap();
    // Header plus at most 20 data rows.
    assert!(snippet.lines().count() <= 21);
}

#[test]
fn unknown_keywords_produce_no_results_but_no_error() {
    let w = minibank::build(42);
    let e = engine(&w);
    let (results, trace) = e.search_traced("flux capacitor maintenance").unwrap();
    assert!(results.is_empty());
    assert_eq!(trace.unmatched.len(), 3);
    assert!(e.search("").is_err());
}

#[test]
fn every_generated_statement_round_trips_through_the_sql_parser() {
    let w = minibank::build(42);
    let e = engine(&w);
    for query in [
        "Sara Guttinger",
        "customers Zurich financial instruments",
        "wealthy customers",
        "sum (amount) group by (transaction date)",
        "private customers",
        "trading volume",
    ] {
        for result in e.search(query).unwrap() {
            let reparsed = parse_select(&result.sql).expect("generated SQL must parse");
            assert_eq!(reparsed, result.statement, "round trip failed for {query}");
        }
    }
}

#[test]
fn timings_and_complexity_are_reported() {
    let w = minibank::build(42);
    let e = engine(&w);
    let (_r, trace) = e
        .search_traced("customers Zurich financial instruments")
        .unwrap();
    assert!(trace.timings.total().as_nanos() > 0);
    assert_eq!(trace.solutions, 3);
    assert_eq!(trace.results, 3);
}
