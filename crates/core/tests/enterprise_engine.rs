//! End-to-end tests of the SODA engine on the enterprise warehouse, covering
//! the behaviours the workload of Table 2 relies on.

use soda_core::{FeedbackStore, Provenance, SodaConfig, SodaEngine};
use soda_warehouse::enterprise::{self, EnterpriseConfig};
use soda_warehouse::Warehouse;

fn small_warehouse() -> Warehouse {
    // No padding and reduced data volume: these tests exercise behaviour, not
    // scale (scale is covered by the benchmarks).
    enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.2,
    })
}

#[test]
fn q1_private_customers_family_name_uses_ontology_and_schema() {
    let w = small_warehouse();
    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
    let (results, trace) = e.search_traced("private customers family name").unwrap();
    assert!(!results.is_empty());
    let classification: Vec<_> = trace
        .classification
        .iter()
        .map(|(p, _)| p.clone())
        .collect();
    assert!(classification.contains(&"private customers".to_string()));
    assert!(classification.contains(&"family name".to_string()));
    let top = &results[0];
    assert!(top.tables.contains(&"individual".to_string()));
    assert!(
        top.tables.contains(&"party".to_string()),
        "inheritance parent added"
    );
    let rs = e.execute(top).unwrap();
    assert!(rs.row_count() > 100);
}

#[test]
fn q2_sara_interpretations_current_vs_historised() {
    let w = small_warehouse();
    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
    let results = e.search("Sara").unwrap();
    assert!(
        results.len() >= 2,
        "both the current and the historised column should match"
    );
    // The current-name interpretation returns exactly the CURRENT_SARA rows;
    // the historisation gap means no interpretation reaches all 20 parties.
    let counts: Vec<usize> = results
        .iter()
        .map(|r| e.execute(r).map(|rs| rs.row_count()).unwrap_or(0))
        .collect();
    assert!(counts.contains(&soda_warehouse::enterprise::data::CURRENT_SARA));
    assert!(counts.iter().all(|&c| c < 20));
}

#[test]
fn historization_annotations_recover_the_historised_saras() {
    use soda_warehouse::enterprise::data::{CURRENT_SARA, HISTORIC_SARA};
    let config = EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.2,
    };

    // Paper-faithful graph: the interpretation entering through the history
    // table cannot be joined back to individual/party (the join key is not in
    // the metadata graph), so it stays an isolated single-table result — the
    // cause of the Q2.1/Q2.2 recall loss.
    let plain = enterprise::build_with(config);
    let e = SodaEngine::new(&plain.database, &plain.graph, SodaConfig::default());
    let plain_results = e.search("Sara").unwrap();
    assert!(plain_results
        .iter()
        .filter(|r| r.tables.contains(&"individual_name_hist".to_string()))
        .all(|r| !r.tables.contains(&"individual".to_string())));
    let plain_current_best = plain_results
        .iter()
        .filter(|r| r.tables.contains(&"individual".to_string()))
        .map(|r| e.execute(r).map(|rs| rs.row_count()).unwrap_or(0))
        .max()
        .unwrap_or(0);
    assert_eq!(plain_current_best, CURRENT_SARA);

    // Annotated graph (the paper's proposed remedy): the interpretation that
    // enters through the history table joins back to individual/party and
    // recovers the historised names.
    let annotated = enterprise::build_with_historization(config);
    let e = SodaEngine::new(&annotated.database, &annotated.graph, SodaConfig::default());
    let results = e.search("Sara").unwrap();
    assert!(e
        .join_catalog()
        .historization_of("individual_name_hist")
        .is_some());
    let joined_hist = results
        .iter()
        .find(|r| {
            r.tables.contains(&"individual_name_hist".to_string())
                && r.tables.contains(&"individual".to_string())
        })
        .expect("annotated graph must join the history table back to individual");
    let covered = e.execute(joined_hist).unwrap().row_count();
    assert!(
        covered >= HISTORIC_SARA,
        "expected the joined history interpretation to reach the {HISTORIC_SARA} historised names, got {covered}"
    );
}

#[test]
fn valid_at_operator_constrains_annotated_history_tables() {
    let config = EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.2,
    };
    let annotated = enterprise::build_with_historization(config);
    let e = SodaEngine::new(&annotated.database, &annotated.graph, SodaConfig::default());
    let results = e.search("Sara valid at date(2006-06-30)").unwrap();
    // The interpretation entering through the history table carries the
    // validity-interval predicates.
    let temporal = results
        .iter()
        .find(|r| r.tables.contains(&"individual_name_hist".to_string()))
        .expect("a history-table interpretation must exist on the annotated graph");
    assert!(
        temporal.sql.contains("valid_from <= '2006-06-30'")
            && temporal.sql.contains("valid_to >= '2006-06-30'"),
        "{}",
        temporal.sql
    );
    let constrained = e.execute(temporal).unwrap().row_count();
    // Dropping the temporal operator returns at least as many rows.
    let unconstrained = e
        .search("Sara")
        .unwrap()
        .iter()
        .find(|r| r.tables.contains(&"individual_name_hist".to_string()))
        .map(|r| e.execute(r).unwrap().row_count())
        .unwrap();
    assert!(constrained <= unconstrained);
    assert!(
        constrained > 0,
        "the 2006 validity window intersects the generated history"
    );

    // On the paper-faithful graph the operator is ignored with a note.
    let plain = enterprise::build_with(config);
    let e = SodaEngine::new(&plain.database, &plain.graph, SodaConfig::default());
    let results = e.search("Sara valid at date(2006-06-30)").unwrap();
    assert!(results
        .iter()
        .all(|r| !r.sql.contains("valid_from <= '2006-06-30'")));
    assert!(results
        .iter()
        .any(|r| r.notes.iter().any(|n| n.contains("valid at ignored"))));
}

#[test]
fn use_historization_flag_disables_the_temporal_operator() {
    let config = EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.2,
    };
    let annotated = enterprise::build_with_historization(config);
    let soda_config = SodaConfig {
        use_historization: false,
        ..SodaConfig::default()
    };
    let e = SodaEngine::new(&annotated.database, &annotated.graph, soda_config);
    let results = e.search("Sara valid at date(2006-06-30)").unwrap();
    assert!(results
        .iter()
        .all(|r| !r.sql.contains("valid_from <= '2006-06-30'")));
    assert!(results.iter().any(|r| r
        .notes
        .iter()
        .any(|n| n.contains("historization support disabled"))));
}

#[test]
fn q3_credit_suisse_is_ambiguous_between_organization_and_agreement() {
    let w = small_warehouse();
    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
    let results = e.search("Credit Suisse").unwrap();
    assert!(results.len() >= 2);
    let tables: Vec<String> = results.iter().flat_map(|r| r.tables.clone()).collect();
    assert!(tables.contains(&"organization".to_string()));
    assert!(tables.contains(&"agreement_td".to_string()));
}

#[test]
fn disliking_an_interpretation_demotes_it_on_later_queries() {
    let w = small_warehouse();
    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());

    // "Credit Suisse" is ambiguous between the organization and the agreement
    // interpretation (Q3.1 vs Q3.2); both are base-data hits, so the paper's
    // provenance ranking cannot separate them.
    let results = e.search("Credit Suisse").unwrap();
    let top_tables = results[0].tables.clone();
    let disliked = &results[0];

    let mut feedback = FeedbackStore::new();
    // A few consistent dislikes on the top interpretation flip the order…
    for _ in 0..3 {
        feedback.dislike(disliked);
    }
    let reranked = e.search_with_feedback("Credit Suisse", &feedback).unwrap();
    assert_eq!(reranked.len(), results.len(), "feedback only re-ranks");
    assert_ne!(
        reranked[0].tables, top_tables,
        "disliked interpretation still on top"
    );
    assert!(
        reranked.iter().any(|r| r.tables == top_tables),
        "…but it is not removed"
    );

    // …while liking it keeps it on top.
    let mut praise = FeedbackStore::new();
    praise.like(disliked);
    let confirmed = e.search_with_feedback("Credit Suisse", &praise).unwrap();
    assert_eq!(confirmed[0].tables, top_tables);
}

#[test]
fn compactness_rerank_prefers_the_single_table_interpretation() {
    let w = small_warehouse();
    let config = SodaConfig {
        compactness_rerank: true,
        ..SodaConfig::default()
    };
    let e = SodaEngine::new(&w.database, &w.graph, config);
    // Both interpretations of "Credit Suisse" are base-data hits with the same
    // provenance score; the agreement interpretation needs a single table
    // while the organization interpretation drags in the party super-type, so
    // compactness puts the agreement first.
    let results = e.search("Credit Suisse").unwrap();
    assert!(results.len() >= 2);
    assert!(
        results[0].tables == vec!["agreement_td".to_string()],
        "expected the single-table agreement interpretation first, got {:?}",
        results[0].tables
    );
    // Scores stay sorted after the re-rank.
    for pair in results.windows(2) {
        assert!(pair[0].score >= pair[1].score);
    }
}

#[test]
fn q6_date_range_predicate_on_the_ontology_resolved_period() {
    let w = small_warehouse();
    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
    let results = e.search("trade order period > date(2011-09-01)").unwrap();
    assert!(!results.is_empty());
    let top = &results[0];
    assert!(top.sql.contains("order_dt > '2011-09-01'"), "{}", top.sql);
    let rs = e.execute(top).unwrap();
    assert!(rs.row_count() > 0);
    // Every returned order date is after the bound.
    let col = rs
        .columns()
        .iter()
        .position(|c| c.ends_with("order_dt"))
        .expect("order_dt projected");
    for row in rs.rows() {
        assert!(row[col].to_string().as_str() > "2011-09-01");
    }
}

#[test]
fn q7_yen_trade_orders_produce_a_multiway_join() {
    let w = small_warehouse();
    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
    let results = e.search("YEN trade order").unwrap();
    assert!(!results.is_empty());
    // At least one interpretation filters the trade orders by currency and
    // returns rows.
    let good = results.iter().find(|r| {
        r.tables.contains(&"trade_order_td".to_string())
            && e.execute(r).map(|rs| rs.row_count() > 0).unwrap_or(false)
    });
    assert!(
        good.is_some(),
        "no YEN trade-order interpretation produced rows"
    );
}

#[test]
fn short_join_path_bound_breaks_distant_entry_points_far_fetching_repairs_them() {
    let w = small_warehouse();

    // "YEN trade order" needs to connect the currency hit to the trade-order
    // chain.  With a tight join-path bound the entry points cannot be
    // connected (the situation §5.3.1 describes); the default, more
    // far-fetching bound finds the chain.
    let tight = SodaConfig {
        max_join_path_length: 1,
        ..SodaConfig::default()
    };
    let e = SodaEngine::new(&w.database, &w.graph, tight);
    let results = e.search("private customers family name YEN").unwrap();
    assert!(
        results.iter().any(|r| !r.join_path_complete),
        "with a 1-edge bound some interpretation must fail to connect its entry points"
    );

    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
    let results = e.search("private customers family name YEN").unwrap();
    assert!(
        results.iter().any(|r| r.join_path_complete),
        "the default bound must connect the entry points"
    );
}

#[test]
fn q10_sum_investments_grouped_by_currency() {
    let w = small_warehouse();
    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
    let results = e.search("sum(investments) group by (currency)").unwrap();
    assert!(!results.is_empty());
    let top = &results[0];
    assert!(
        top.sql
            .to_lowercase()
            .contains("sum(trade_order_td.amount)"),
        "{}",
        top.sql
    );
    assert!(top.sql.to_lowercase().contains("group by"), "{}", top.sql);
    let rs = e.execute(top).unwrap();
    assert!(
        rs.row_count() >= 5,
        "one row per currency expected: {}",
        top.sql
    );
}

#[test]
fn result_pages_partition_the_ranked_list_without_gaps() {
    let w = small_warehouse();
    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());

    let all = e.search("Credit Suisse").unwrap();
    assert!(all.len() >= 3, "need a few interpretations to page through");

    let page_size = 2;
    let first = e.search_paged("Credit Suisse", 0, page_size).unwrap();
    assert_eq!(first.page, 0);
    assert_eq!(first.results.len(), page_size);
    assert!(first.has_next);
    // The first page is exactly the head of the unpaged ranking.
    assert_eq!(
        first.results.iter().map(|r| &r.sql).collect::<Vec<_>>(),
        all.iter()
            .take(page_size)
            .map(|r| &r.sql)
            .collect::<Vec<_>>()
    );

    let second = e.search_paged("Credit Suisse", 1, page_size).unwrap();
    assert!(!second.results.is_empty());
    // No statement appears on both pages.
    for r in &second.results {
        assert!(first.results.iter().all(|f| f.sql != r.sql));
    }

    // A page past the end is empty but well-formed.
    let beyond = e.search_paged("Credit Suisse", 50, page_size).unwrap();
    assert!(beyond.results.is_empty());
    assert!(!beyond.has_next);
    assert_eq!(beyond.total_results, second.total_results);
}

#[test]
fn unmatched_words_get_reformulation_suggestions() {
    let w = small_warehouse();
    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());

    // "agreemnt" is a typo for the agreement schema term; "Sara" matches the
    // base data and therefore needs no suggestion.
    let suggestions = e.suggestions("Sara agreemnt").unwrap();
    assert_eq!(suggestions.len(), 1, "{suggestions:?}");
    assert_eq!(suggestions[0].term, "agreemnt");
    assert!(
        suggestions[0]
            .candidates
            .iter()
            .any(|c| c.contains("agreement")),
        "{:?}",
        suggestions[0].candidates
    );

    // Fully matched queries produce no suggestions.
    assert!(e.suggestions("private customers").unwrap().is_empty());
}

#[test]
fn wealthy_customers_business_term_resolves_through_the_metadata_filter() {
    let w = small_warehouse();
    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
    let results = e.search("wealthy customers").unwrap();
    assert!(!results.is_empty());
    assert!(
        results[0].sql.contains("salary >= 500000"),
        "{}",
        results[0].sql
    );
}

#[test]
fn dbpedia_synonyms_rank_below_domain_ontology() {
    let w = small_warehouse();
    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
    // "clients" is an alternative name of the ontology concept; "firm" is only
    // a DBpedia synonym of the organization table.
    let (_, trace_onto) = e.search_traced("clients").unwrap();
    let (_, trace_dbp) = e.search_traced("firm").unwrap();
    let onto = &trace_onto.classification[0].1;
    let dbp = &trace_dbp.classification[0].1;
    assert!(onto.contains(&Provenance::DomainOntology));
    assert!(dbp.contains(&Provenance::DbPedia));
}

#[test]
fn disabling_the_inverted_index_removes_base_data_interpretations() {
    let w = small_warehouse();
    let config = SodaConfig {
        use_inverted_index: false,
        ..SodaConfig::default()
    };
    let e = SodaEngine::new(&w.database, &w.graph, config);
    let results = e.search("Credit Suisse").unwrap();
    // "Credit Suisse" only exists in the base data, so metadata-only lookup
    // (the Keymantic situation) cannot interpret it.
    assert!(results.is_empty());
}

#[test]
fn bridge_tables_between_siblings_are_in_the_join_catalog() {
    let w = small_warehouse();
    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
    let bridges = e
        .join_catalog()
        .bridges_connecting("individual", "organization");
    assert_eq!(bridges.len(), 1);
    assert_eq!(bridges[0].table, "associate_employment");
}

#[test]
fn explicit_join_nodes_are_discovered_on_the_trading_chain() {
    let w = small_warehouse();
    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
    let explicit: Vec<_> = e
        .join_catalog()
        .edges
        .iter()
        .filter(|edge| edge.explicit_join_node)
        .collect();
    assert!(explicit.iter().any(|e| e.fk_table == "trade_order_td"));
    assert!(explicit.iter().any(|e| e.fk_table == "account_td"));
}

#[test]
fn padded_warehouse_still_answers_queries() {
    let w = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: true,
        data_scale: 0.1,
    });
    let e = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
    let results = e.search("private customers family name").unwrap();
    assert!(!results.is_empty());
    let rs = e.execute(&results[0]).unwrap();
    assert!(rs.row_count() > 0);
}
