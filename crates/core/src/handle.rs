//! Hot snapshot swapping: a generation-tracked, atomically swappable handle
//! to the current [`EngineSnapshot`].
//!
//! SODA serves warehouses whose data and metadata evolve continuously
//! (§6 of the paper describes the Credit Suisse warehouse's ongoing schema
//! and ontology churn).  The engine's indexes are immutable by design, so
//! freshness comes from *replacement*, not mutation: a writer builds (or
//! derives) a new snapshot and publishes it through a [`SnapshotHandle`],
//! while readers keep whatever snapshot they loaded until they finish — no
//! query is ever dropped or served from a half-swapped index.
//!
//! Three swap granularities, cheapest first:
//!
//! * [`rebuild_shards`](SnapshotHandle::rebuild_shards) — a *data* delta
//!   confined to a known table set: only the inverted-index partitions
//!   owning those tables are rebuilt; classification index, join catalog and
//!   the untouched partitions are shared with the previous generation by
//!   `Arc`, so the other shards keep serving the very same allocations
//!   without a pause.
//! * [`refresh_graph`](SnapshotHandle::refresh_graph) — a *metadata*
//!   refresh: the classification index is rebuilt but shares every
//!   partition whose content survived; the inverted index is shared whole.
//! * [`publish`](SnapshotHandle::publish) — a full replacement snapshot
//!   (new warehouse build, new configuration semantics, anything).
//!
//! Every publication stamps a monotonically increasing **generation** into
//! the snapshot — the whole vector for a full publish, only the rebuilt
//! partitions' slots otherwise.  [`EngineSnapshot::cache_fingerprint`] folds
//! that vector into the cache key space, which is how stale interpretation
//! pages die for free on a swap.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use arc_swap::ArcSwap;

use soda_metagraph::MetaGraph;
use soda_relation::Database;

use crate::snapshot::EngineSnapshot;

/// An atomically swappable, generation-stamping cell holding the current
/// [`EngineSnapshot`].
///
/// Readers ([`load`](Self::load)) get a coherent `Arc` to whatever snapshot
/// is current and keep it for the whole query — concurrent swaps only affect
/// *future* loads.  Writers ([`publish`](Self::publish),
/// [`rebuild_shards`](Self::rebuild_shards),
/// [`refresh_graph`](Self::refresh_graph)) are serialized against each other
/// by an internal lock (never held while readers load), so generation
/// numbers are strictly increasing and derived snapshots always derive from
/// the latest published one.
///
/// ```
/// use std::sync::Arc;
/// use soda_core::{EngineSnapshot, SnapshotHandle, SodaConfig};
///
/// let w = soda_warehouse::minibank::build(42);
/// let handle = SnapshotHandle::new(Arc::new(EngineSnapshot::build(
///     Arc::new(w.database),
///     Arc::new(w.graph),
///     SodaConfig::default(),
/// )));
/// assert_eq!(handle.generation(), 0);
///
/// // A reader holds generation 0 across a swap…
/// let held = handle.load();
/// let w2 = soda_warehouse::minibank::build(43);
/// handle.publish(EngineSnapshot::build(
///     Arc::new(w2.database),
///     Arc::new(w2.graph),
///     SodaConfig::default(),
/// ));
/// // …while new loads see generation 1.
/// assert_eq!(held.generation(), 0);
/// assert_eq!(handle.load().generation(), 1);
/// ```
pub struct SnapshotHandle {
    current: ArcSwap<EngineSnapshot>,
    /// The generation the *next* publication will be stamped with.
    next_generation: AtomicU64,
    /// Serializes writers so derive-from-current + store is atomic.
    writer: Mutex<()>,
}

impl std::fmt::Debug for SnapshotHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotHandle")
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

impl SnapshotHandle {
    /// Wraps an initial snapshot.  Its existing generation (0 for a fresh
    /// build) is kept; the first publication gets the next one.
    pub fn new(snapshot: Arc<EngineSnapshot>) -> Self {
        let next_generation = AtomicU64::new(snapshot.generation() + 1);
        Self {
            current: ArcSwap::new(snapshot),
            next_generation,
            writer: Mutex::new(()),
        }
    }

    /// The current snapshot.  The returned `Arc` stays coherent for as long
    /// as the caller holds it, regardless of concurrent swaps — this is what
    /// a query pins for its whole pipeline run.
    pub fn load(&self) -> Arc<EngineSnapshot> {
        self.current.load_full()
    }

    /// Generation of the currently published snapshot.
    pub fn generation(&self) -> u64 {
        self.load().generation()
    }

    /// Publishes a full replacement snapshot: stamps it (and every shard
    /// slot) with the next generation and swaps it in.  In-flight readers
    /// finish on whatever they loaded; returns the stamped generation.
    pub fn publish(&self, snapshot: EngineSnapshot) -> u64 {
        let _writer = self.writer.lock().expect("snapshot writer poisoned");
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        self.current.store(Arc::new(snapshot.stamped(generation)));
        generation
    }

    /// Per-shard hot swap for a data delta: given a database in which only
    /// `tables` changed, rebuilds the inverted-index partitions owning those
    /// tables from `db` and publishes a derived snapshot that shares every
    /// other structure with the current one.  Only the rebuilt partitions'
    /// generation slots are bumped — the other shards keep serving their
    /// existing postings with zero rebuild cost.  Note that interpretation
    /// caches keyed by [`EngineSnapshot::cache_fingerprint`] still retire
    /// *all* of the superseded generation's pages (the fingerprint covers
    /// the publication generation): the per-shard slots buy cheap rebuilds
    /// and uninterrupted serving, not page retention — retaining provably
    /// unaffected pages is a recorded follow-on.  Returns the new
    /// generation.
    pub fn rebuild_shards(&self, db: Arc<Database>, tables: &[String]) -> u64 {
        let _writer = self.writer.lock().expect("snapshot writer poisoned");
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        let next = self.load().derive_rebuilt_tables(db, tables, generation);
        self.current.store(Arc::new(next));
        generation
    }

    /// Per-shard hot swap for a metadata refresh: rebuilds the
    /// classification index against `graph` (sharing every partition whose
    /// content did not change) and the graph-derived join catalog, keeping
    /// the base data and inverted index.  Only the changed classification
    /// partitions' generation slots are bumped.  Returns the new generation.
    pub fn refresh_graph(&self, graph: Arc<MetaGraph>) -> u64 {
        let _writer = self.writer.lock().expect("snapshot writer poisoned");
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        let next = self.load().derive_refreshed_graph(graph, generation);
        self.current.store(Arc::new(next));
        generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SodaConfig;

    fn assert_send_sync<T: Send + Sync>() {}

    fn minibank_handle(shards: usize) -> SnapshotHandle {
        let w = soda_warehouse::minibank::build(42);
        SnapshotHandle::new(Arc::new(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig {
                shards,
                ..SodaConfig::default()
            },
        )))
    }

    #[test]
    fn handle_is_send_and_sync() {
        assert_send_sync::<SnapshotHandle>();
        assert_send_sync::<Arc<SnapshotHandle>>();
    }

    #[test]
    fn publish_stamps_monotonic_generations() {
        let handle = minibank_handle(4);
        assert_eq!(handle.generation(), 0);
        assert_eq!(handle.load().shard_generations(), &[0, 0, 0, 0]);
        let w = soda_warehouse::minibank::build(42);
        let gen = handle.publish(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig {
                shards: 4,
                ..SodaConfig::default()
            },
        ));
        assert_eq!(gen, 1);
        assert_eq!(handle.generation(), 1);
        assert_eq!(handle.load().shard_generations(), &[1, 1, 1, 1]);
        assert_ne!(
            handle.load().cache_fingerprint(),
            EngineSnapshot::build(
                Arc::new(soda_warehouse::minibank::build(42).database),
                Arc::new(soda_warehouse::minibank::build(42).graph),
                SodaConfig {
                    shards: 4,
                    ..SodaConfig::default()
                },
            )
            .cache_fingerprint(),
            "published generation must change the cache fingerprint"
        );
    }

    #[test]
    fn readers_keep_their_generation_across_swaps() {
        let handle = minibank_handle(1);
        let held = handle.load();
        let expected = held.search("Sara Guttinger").unwrap();
        let w = soda_warehouse::minibank::build(7);
        handle.publish(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig::default(),
        ));
        // The held snapshot still answers exactly as before the swap.
        assert_eq!(held.search("Sara Guttinger").unwrap(), expected);
        assert_eq!(held.generation(), 0);
        assert_eq!(handle.load().generation(), 1);
    }

    #[test]
    fn rebuild_shards_bumps_only_the_owning_partitions() {
        let w = soda_warehouse::minibank::build(42);
        let handle = SnapshotHandle::new(Arc::new(EngineSnapshot::build(
            Arc::new(w.database.clone()),
            Arc::new(w.graph.clone()),
            SodaConfig {
                shards: 4,
                ..SodaConfig::default()
            },
        )));
        let before = handle.load();
        let fp_before = before.cache_fingerprint();

        // Append one individual to a fresh copy of the database and swap in
        // only that table's partition.
        let mut db = w.database.clone();
        let individuals = db.table("individuals").unwrap();
        let mut row = individuals.rows()[0].clone();
        let name_col = individuals
            .schema()
            .columns
            .iter()
            .position(|c| c.name == "firstname")
            .unwrap();
        row[0] = soda_relation::Value::Int(9_999);
        row[name_col] = soda_relation::Value::from("Zebulon");
        db.insert("individuals", row).unwrap();
        let owner = soda_relation::shard_for_table("individuals", 4);
        let gen = handle.rebuild_shards(Arc::new(db), &["individuals".to_string()]);

        assert_eq!(gen, 1);
        let after = handle.load();
        assert_eq!(after.generation(), 1);
        for (i, &slot) in after.shard_generations().iter().enumerate() {
            assert_eq!(
                slot,
                if i == owner { 1 } else { 0 },
                "only the owning partition may be bumped (shard {i})"
            );
        }
        assert_ne!(after.cache_fingerprint(), fp_before);

        // The derived snapshot answers exactly like a full rebuild over the
        // new database, and sees the new row.
        let fresh = EngineSnapshot::build(
            after.database_arc(),
            Arc::new(w.graph),
            SodaConfig {
                shards: 4,
                ..SodaConfig::default()
            },
        );
        for query in ["Zebulon", "Sara Guttinger", "wealthy customers"] {
            assert_eq!(
                after.search(query).unwrap(),
                fresh.search(query).unwrap(),
                "derived snapshot diverged from full rebuild on '{query}'"
            );
        }
        assert!(!after.search("Zebulon").unwrap().is_empty());
        // The old generation still serves its old view.
        assert!(before.search("Zebulon").unwrap().is_empty());
    }

    #[test]
    fn refresh_graph_shares_surviving_classification_partitions() {
        let w = soda_warehouse::minibank::build(42);
        let handle = SnapshotHandle::new(Arc::new(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph.clone()),
            SodaConfig {
                shards: 4,
                ..SodaConfig::default()
            },
        )));
        // Republishing the same graph bumps the snapshot generation but not a
        // single partition slot: every classification shard survived.
        let before = handle.load();
        let gen = handle.refresh_graph(Arc::new(w.graph));
        assert_eq!(gen, 1);
        let after = handle.load();
        assert_eq!(after.generation(), 1);
        assert_eq!(after.shard_generations(), &[0, 0, 0, 0]);
        assert!(after
            .classification_index()
            .shares_shard_with(before.classification_index(), 0));
        // Generation is folded into the fingerprint even when no partition
        // changed, so caches keyed on it can distinguish the publications.
        assert_ne!(after.cache_fingerprint(), before.cache_fingerprint());
        assert_eq!(
            after.search("wealthy customers").unwrap(),
            before.search("wealthy customers").unwrap()
        );
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_swap() {
        let handle = Arc::new(minibank_handle(2));
        let expected_old = handle.load().search("Sara Guttinger").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = Arc::clone(&handle);
                let expected_old = expected_old.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let snapshot = handle.load();
                        let got = snapshot.search("Sara Guttinger").unwrap();
                        // Whatever generation we pinned, the answer matches a
                        // single-threaded run against that same snapshot.
                        assert_eq!(got, snapshot.search("Sara Guttinger").unwrap());
                        if snapshot.generation() == 0 {
                            assert_eq!(got, expected_old);
                        }
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..10 {
                    let w = soda_warehouse::minibank::build(42);
                    handle.publish(EngineSnapshot::build(
                        Arc::new(w.database),
                        Arc::new(w.graph),
                        SodaConfig {
                            shards: 2,
                            ..SodaConfig::default()
                        },
                    ));
                }
            });
        });
        assert_eq!(handle.generation(), 10);
    }
}
