//! Hot snapshot swapping: a generation-tracked, atomically swappable handle
//! to the current [`EngineSnapshot`].
//!
//! SODA serves warehouses whose data and metadata evolve continuously
//! (§6 of the paper describes the Credit Suisse warehouse's ongoing schema
//! and ontology churn).  The engine's indexes are immutable by design, so
//! freshness comes from *replacement*, not mutation: a writer builds (or
//! derives) a new snapshot and publishes it through a [`SnapshotHandle`],
//! while readers keep whatever snapshot they loaded until they finish — no
//! query is ever dropped or served from a half-swapped index.
//!
//! Three swap granularities, cheapest first:
//!
//! * [`rebuild_shards`](SnapshotHandle::rebuild_shards) — a *data* delta
//!   confined to a known table set: only the inverted-index partitions
//!   owning those tables are rebuilt; classification index, join catalog and
//!   the untouched partitions are shared with the previous generation by
//!   `Arc`, so the other shards keep serving the very same allocations
//!   without a pause.
//! * [`refresh_graph`](SnapshotHandle::refresh_graph) — a *metadata*
//!   refresh: the classification index is rebuilt but shares every
//!   partition whose content survived; the inverted index is shared whole.
//! * [`publish`](SnapshotHandle::publish) — a full replacement snapshot
//!   (new warehouse build, new configuration semantics, anything).
//!
//! Every publication stamps a monotonically increasing **generation** into
//! the snapshot — the whole vector for a full publish, only the rebuilt
//! partitions' slots otherwise.  [`EngineSnapshot::cache_fingerprint`] folds
//! that vector into the cache key space, which is how stale interpretation
//! pages die for free on a swap.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use arc_swap::ArcSwap;

use soda_ingest::ChangeFeed;
use soda_metagraph::MetaGraph;
use soda_relation::Database;

use crate::error::Result;
use crate::snapshot::EngineSnapshot;

/// What one [`SnapshotHandle::absorb_owned`] published: the stamped
/// generation plus the ingest report describing how much the copy-on-write
/// derive actually moved (and how much it structurally shared).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsorbOutcome {
    /// Generation the absorbed snapshot was stamped with.
    pub generation: u64,
    /// Sizes and sharing counters of the absorb.
    pub report: soda_ingest::IngestReport,
}

/// An atomically swappable, generation-stamping cell holding the current
/// [`EngineSnapshot`].
///
/// Readers ([`load`](Self::load)) get a coherent `Arc` to whatever snapshot
/// is current and keep it for the whole query — concurrent swaps only affect
/// *future* loads.  Writers ([`publish`](Self::publish),
/// [`rebuild_shards`](Self::rebuild_shards),
/// [`refresh_graph`](Self::refresh_graph)) are serialized against each other
/// by an internal lock (never held while readers load), so generation
/// numbers are strictly increasing and derived snapshots always derive from
/// the latest published one.
///
/// ```
/// use std::sync::Arc;
/// use soda_core::{EngineSnapshot, SnapshotHandle, SodaConfig};
///
/// let w = soda_warehouse::minibank::build(42);
/// let handle = SnapshotHandle::new(Arc::new(EngineSnapshot::build(
///     Arc::new(w.database),
///     Arc::new(w.graph),
///     SodaConfig::default(),
/// )));
/// assert_eq!(handle.generation(), 0);
///
/// // A reader holds generation 0 across a swap…
/// let held = handle.load();
/// let w2 = soda_warehouse::minibank::build(43);
/// handle.publish(EngineSnapshot::build(
///     Arc::new(w2.database),
///     Arc::new(w2.graph),
///     SodaConfig::default(),
/// ));
/// // …while new loads see generation 1.
/// assert_eq!(held.generation(), 0);
/// assert_eq!(handle.load().generation(), 1);
/// ```
pub struct SnapshotHandle {
    current: ArcSwap<EngineSnapshot>,
    /// The generation the *next* publication will be stamped with.
    next_generation: AtomicU64,
    /// Serializes writers so derive-from-current + store is atomic.
    writer: Mutex<()>,
}

impl std::fmt::Debug for SnapshotHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotHandle")
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

impl SnapshotHandle {
    /// Wraps an initial snapshot.  Its existing generation (0 for a fresh
    /// build) is kept; the first publication gets the next one.
    pub fn new(snapshot: Arc<EngineSnapshot>) -> Self {
        let next_generation = AtomicU64::new(snapshot.generation() + 1);
        Self {
            current: ArcSwap::new(snapshot),
            next_generation,
            writer: Mutex::new(()),
        }
    }

    /// The current snapshot.  The returned `Arc` stays coherent for as long
    /// as the caller holds it, regardless of concurrent swaps — this is what
    /// a query pins for its whole pipeline run.
    pub fn load(&self) -> Arc<EngineSnapshot> {
        self.current.load_full()
    }

    /// Generation of the currently published snapshot.
    pub fn generation(&self) -> u64 {
        self.load().generation()
    }

    /// Publishes a full replacement snapshot: stamps it (and every shard
    /// slot) with the next generation and swaps it in.  In-flight readers
    /// finish on whatever they loaded; returns the stamped generation.
    pub fn publish(&self, snapshot: EngineSnapshot) -> u64 {
        let _writer = self.writer.lock().expect("snapshot writer poisoned");
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        self.current.store(Arc::new(snapshot.stamped(generation)));
        generation
    }

    /// Per-shard hot swap for a data delta: given a database in which only
    /// `tables` changed, rebuilds the inverted-index partitions owning those
    /// tables from `db` and publishes a derived snapshot that shares every
    /// other structure with the current one.  Only the rebuilt partitions'
    /// generation slots are bumped — the other shards keep serving their
    /// existing postings with zero rebuild cost.  Interpretation caches
    /// keyed by [`EngineSnapshot::cache_fingerprint`] see every page of the
    /// superseded generation stop being addressable; the serving layer's
    /// retention pass ([`EngineSnapshot::retains_page`]) re-keys the pages
    /// that provably never consulted a rebuilt partition instead of
    /// recomputing them.  Returns the new generation.
    pub fn rebuild_shards(&self, db: Arc<Database>, tables: &[String]) -> u64 {
        let _writer = self.writer.lock().expect("snapshot writer poisoned");
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        let next = self.load().derive_rebuilt_tables(db, tables, generation);
        self.current.store(Arc::new(next));
        generation
    }

    /// Streaming ingestion: absorbs a row-level [`ChangeFeed`] into a new
    /// generation **without rebuilding any frozen index partition** — the
    /// events are applied to a copy of the base data and their indexed
    /// consequences accumulate in per-shard side logs that every probe
    /// merges on the fly.  Only the shards whose logs changed get their
    /// generation slot bumped.  Returns the new generation; on any feed
    /// error (unknown table, arity violation) nothing is published and the
    /// current generation keeps serving.
    ///
    /// Side logs tax probes on their shard; fold them back into rebuilt
    /// partitions with [`compact`](Self::compact) once they outgrow a
    /// budget (`soda_ingest::CompactionPolicy` decides when).
    pub fn absorb(&self, feed: &ChangeFeed) -> Result<u64> {
        Ok(self.absorb_owned(feed.clone())?.generation)
    }

    /// [`absorb`](Self::absorb) for an **owned** feed — the zero-copy path:
    /// appended rows move by value through the copy-on-write database derive
    /// instead of being cloned out of a borrowed feed.  Returns the stamped
    /// generation together with the [`IngestReport`](soda_ingest::IngestReport)
    /// so serving layers can surface structural-sharing metrics.
    pub fn absorb_owned(&self, feed: ChangeFeed) -> Result<AbsorbOutcome> {
        let _writer = self.writer.lock().expect("snapshot writer poisoned");
        // Reserve the number only after the derive succeeds, so a rejected
        // feed leaves no gap in the generation sequence.
        let generation = self.next_generation.load(Ordering::Relaxed);
        let (next, report) = self.load().derive_absorbed(feed, generation)?;
        self.current.store(Arc::new(next));
        self.next_generation
            .store(generation + 1, Ordering::Relaxed);
        Ok(AbsorbOutcome { generation, report })
    }

    /// Folds the side logs of `shards` into freshly rebuilt partitions — the
    /// background half of streaming ingestion, reusing the per-shard rebuild
    /// machinery of [`rebuild_shards`](Self::rebuild_shards) against the
    /// *current* base data (which already contains every logged row), so
    /// answers are unchanged by construction.  Shards without a log to fold
    /// are skipped; returns `None` (publishing nothing) when none of the
    /// named shards has one, otherwise the new generation.
    pub fn compact(&self, shards: &[usize]) -> Option<u64> {
        let _writer = self.writer.lock().expect("snapshot writer poisoned");
        let current = self.load();
        let logged = current.shards_with_side_logs();
        let foldable: Vec<usize> = shards
            .iter()
            .copied()
            .filter(|s| logged.contains(s))
            .collect();
        if foldable.is_empty() {
            return None;
        }
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        let next = current.derive_compacted(&foldable, generation);
        self.current.store(Arc::new(next));
        Some(generation)
    }

    /// Restores the generation stamps a durable checkpoint recorded — the
    /// recovery counterpart of the stamping the swap paths do.  The current
    /// snapshot is republished carrying exactly `generation` and
    /// `shard_generations` (sharing every built structure), and the next
    /// publication will be stamped `generation + 1`, continuing the
    /// pre-crash sequence densely.
    ///
    /// Validates the checkpoint against the live engine before touching
    /// anything: the vector must have one slot per lookup-layer shard and no
    /// slot may exceed the snapshot generation (no swap can stamp a shard
    /// with a generation that was never published).  A violation means the
    /// checkpoint was written by an engine shaped differently from the one
    /// recovering — an error, not a panic, so the caller can surface it.
    pub fn restore_generations(&self, generation: u64, shard_generations: &[u64]) -> Result<()> {
        let _writer = self.writer.lock().expect("snapshot writer poisoned");
        let current = self.load();
        if shard_generations.len() != current.shard_count() {
            return Err(crate::SodaError::Pipeline(format!(
                "recovery checkpoint carries {} shard generation slots, \
                 but the engine has {} lookup-layer shards",
                shard_generations.len(),
                current.shard_count()
            )));
        }
        if let Some(&bad) = shard_generations.iter().find(|&&slot| slot > generation) {
            return Err(crate::SodaError::Pipeline(format!(
                "recovery checkpoint stamps a shard with generation {bad}, \
                 beyond its snapshot generation {generation}"
            )));
        }
        self.current.store(Arc::new(
            current.restored(generation, shard_generations.to_vec()),
        ));
        self.next_generation
            .store(generation + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Per-shard hot swap for a metadata refresh: rebuilds the
    /// classification index against `graph` (sharing every partition whose
    /// content did not change) and the graph-derived join catalog, keeping
    /// the base data and inverted index.  Only the changed classification
    /// partitions' generation slots are bumped.  Returns the new generation.
    pub fn refresh_graph(&self, graph: Arc<MetaGraph>) -> u64 {
        let _writer = self.writer.lock().expect("snapshot writer poisoned");
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        let next = self.load().derive_refreshed_graph(graph, generation);
        self.current.store(Arc::new(next));
        generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SodaConfig;

    fn assert_send_sync<T: Send + Sync>() {}

    fn minibank_handle(shards: usize) -> SnapshotHandle {
        let (db, graph) = soda_warehouse::minibank::build(42).shared_parts();
        SnapshotHandle::new(Arc::new(EngineSnapshot::build(
            db,
            graph,
            SodaConfig {
                shards,
                ..SodaConfig::default()
            },
        )))
    }

    #[test]
    fn handle_is_send_and_sync() {
        assert_send_sync::<SnapshotHandle>();
        assert_send_sync::<Arc<SnapshotHandle>>();
    }

    #[test]
    fn publish_stamps_monotonic_generations() {
        let handle = minibank_handle(4);
        assert_eq!(handle.generation(), 0);
        assert_eq!(handle.load().shard_generations(), &[0, 0, 0, 0]);
        let w = soda_warehouse::minibank::build(42);
        let gen = handle.publish(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig {
                shards: 4,
                ..SodaConfig::default()
            },
        ));
        assert_eq!(gen, 1);
        assert_eq!(handle.generation(), 1);
        assert_eq!(handle.load().shard_generations(), &[1, 1, 1, 1]);
        assert_ne!(
            handle.load().cache_fingerprint(),
            EngineSnapshot::build(
                Arc::new(soda_warehouse::minibank::build(42).database),
                Arc::new(soda_warehouse::minibank::build(42).graph),
                SodaConfig {
                    shards: 4,
                    ..SodaConfig::default()
                },
            )
            .cache_fingerprint(),
            "published generation must change the cache fingerprint"
        );
    }

    #[test]
    fn readers_keep_their_generation_across_swaps() {
        let handle = minibank_handle(1);
        let held = handle.load();
        let expected = held.search("Sara Guttinger").unwrap();
        let w = soda_warehouse::minibank::build(7);
        handle.publish(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig::default(),
        ));
        // The held snapshot still answers exactly as before the swap.
        assert_eq!(held.search("Sara Guttinger").unwrap(), expected);
        assert_eq!(held.generation(), 0);
        assert_eq!(handle.load().generation(), 1);
    }

    #[test]
    fn rebuild_shards_bumps_only_the_owning_partitions() {
        let w = soda_warehouse::minibank::build(42);
        let handle = SnapshotHandle::new(Arc::new(EngineSnapshot::build(
            Arc::new(w.database.clone()),
            Arc::new(w.graph.clone()),
            SodaConfig {
                shards: 4,
                ..SodaConfig::default()
            },
        )));
        let before = handle.load();
        let fp_before = before.cache_fingerprint();

        // Append one individual to a fresh copy of the database and swap in
        // only that table's partition.
        let mut db = w.database.clone();
        let individuals = db.table("individuals").unwrap();
        let mut row = individuals.rows()[0].clone();
        let name_col = individuals
            .schema()
            .columns
            .iter()
            .position(|c| c.name == "firstname")
            .unwrap();
        row[0] = soda_relation::Value::Int(9_999);
        row[name_col] = soda_relation::Value::from("Zebulon");
        db.insert("individuals", row).unwrap();
        let owner = soda_relation::shard_for_table("individuals", 4);
        let gen = handle.rebuild_shards(Arc::new(db), &["individuals".to_string()]);

        assert_eq!(gen, 1);
        let after = handle.load();
        assert_eq!(after.generation(), 1);
        for (i, &slot) in after.shard_generations().iter().enumerate() {
            assert_eq!(
                slot,
                if i == owner { 1 } else { 0 },
                "only the owning partition may be bumped (shard {i})"
            );
        }
        assert_ne!(after.cache_fingerprint(), fp_before);

        // The derived snapshot answers exactly like a full rebuild over the
        // new database, and sees the new row.
        let fresh = EngineSnapshot::build(
            after.database_arc(),
            Arc::new(w.graph),
            SodaConfig {
                shards: 4,
                ..SodaConfig::default()
            },
        );
        for query in ["Zebulon", "Sara Guttinger", "wealthy customers"] {
            assert_eq!(
                after.search(query).unwrap(),
                fresh.search(query).unwrap(),
                "derived snapshot diverged from full rebuild on '{query}'"
            );
        }
        assert!(!after.search("Zebulon").unwrap().is_empty());
        // The old generation still serves its old view.
        assert!(before.search("Zebulon").unwrap().is_empty());
    }

    fn address_feed(id: i64, city: &str) -> ChangeFeed {
        ChangeFeed::new().append_row(
            "addresses",
            vec![
                soda_relation::Value::Int(id),
                soda_relation::Value::Int(1),
                soda_relation::Value::from("Stream Lane 1"),
                soda_relation::Value::from(city),
                soda_relation::Value::from("Switzerland"),
            ],
        )
    }

    #[test]
    fn absorb_serves_new_rows_without_touching_frozen_partitions() {
        let w = soda_warehouse::minibank::build(42);
        let config = SodaConfig {
            shards: 4,
            ..SodaConfig::default()
        };
        let handle = SnapshotHandle::new(Arc::new(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph.clone()),
            config.clone(),
        )));
        let before = handle.load();
        assert!(before.search("Streamville").unwrap().is_empty());

        let generation = handle.absorb(&address_feed(900, "Streamville")).unwrap();
        assert_eq!(generation, 1);
        let after = handle.load();
        assert!(!after.search("Streamville").unwrap().is_empty());
        // The pinned old generation still serves its old view.
        assert!(before.search("Streamville").unwrap().is_empty());

        // No frozen partition was rebuilt: every shard Arc is shared.
        for (old, new) in before
            .inverted_index()
            .unwrap()
            .shards()
            .iter()
            .zip(after.inverted_index().unwrap().shards())
        {
            assert!(Arc::ptr_eq(old, new), "absorb must not rebuild partitions");
        }
        // Only the owning shard's generation slot is bumped.
        let owner = soda_relation::shard_for_table("addresses", 4);
        for (i, &slot) in after.shard_generations().iter().enumerate() {
            assert_eq!(slot, if i == owner { 1 } else { 0 }, "shard {i}");
        }
        assert_eq!(after.shards_with_side_logs(), vec![owner]);
        assert_ne!(after.cache_fingerprint(), before.cache_fingerprint());

        // Byte-identical to a full rebuild over the absorbed database.
        let fresh = EngineSnapshot::build(after.database_arc(), after.graph_arc(), config.clone());
        for query in ["Streamville", "Sara Guttinger", "wealthy customers"] {
            assert_eq!(
                after.search(query).unwrap(),
                fresh.search(query).unwrap(),
                "'{query}' diverged from full rebuild"
            );
        }
        let stats = after.shard_stats();
        assert!(stats.log_postings[owner] > 0);
        assert_eq!(stats.log_rows[owner], 1);
    }

    #[test]
    fn absorb_shares_every_untouched_table_with_the_previous_database() {
        let handle = minibank_handle(4);
        let before = handle.load();
        let outcome = handle
            .absorb_owned(address_feed(900, "Streamville"))
            .unwrap();
        assert_eq!(outcome.generation, 1);
        let after = handle.load();

        // Copy-on-write derive: only `addresses` was copied; every other
        // table of the new database is the *same allocation* as before.
        let table_count = before.database().table_count();
        assert_eq!(outcome.report.tables_copied, 1);
        assert_eq!(outcome.report.tables_shared, table_count - 1);
        assert_eq!(outcome.report.rows_appended, 1);
        assert_eq!(
            after.database().tables_shared_with(before.database()),
            table_count - 1
        );
        assert!(!Arc::ptr_eq(
            before.database().table_arc("addresses").unwrap(),
            after.database().table_arc("addresses").unwrap()
        ));
        for name in before.database().table_names() {
            if name != "addresses" {
                assert!(
                    Arc::ptr_eq(
                        before.database().table_arc(name).unwrap(),
                        after.database().table_arc(name).unwrap()
                    ),
                    "table '{name}' must be structurally shared across absorb"
                );
            }
        }
        // The shared-table database still answers like a full rebuild.
        let fresh = EngineSnapshot::build(
            after.database_arc(),
            after.graph_arc(),
            after.config().clone(),
        );
        assert_eq!(
            after.search("Streamville").unwrap(),
            fresh.search("Streamville").unwrap()
        );
    }

    #[test]
    fn compact_folds_side_logs_without_changing_answers() {
        let handle = minibank_handle(4);
        handle.absorb(&address_feed(900, "Streamville")).unwrap();
        let logged = handle.load();
        let owner = soda_relation::shard_for_table("addresses", 4);
        let expected = logged.search("Streamville").unwrap();
        assert!(!expected.is_empty());

        let generation = handle.compact(&[0, 1, 2, 3]).expect("a log to fold");
        assert_eq!(generation, 2);
        let folded = handle.load();
        assert!(folded.shards_with_side_logs().is_empty());
        assert_eq!(folded.shard_stats().log_postings, vec![0; 4]);
        assert_eq!(folded.search("Streamville").unwrap(), expected);
        // Only the folded shard's slot moves; untouched partitions stay
        // shared between the logged and the folded generation.
        for (i, (old, new)) in logged
            .inverted_index()
            .unwrap()
            .shards()
            .iter()
            .zip(folded.inverted_index().unwrap().shards())
            .enumerate()
        {
            assert_eq!(Arc::ptr_eq(old, new), i != owner, "shard {i}");
        }
        assert_eq!(folded.shard_generations()[owner], 2);

        // Nothing left to fold: no generation is spent.
        assert!(handle.compact(&[0, 1, 2, 3]).is_none());
        assert_eq!(handle.generation(), 2);
    }

    #[test]
    fn rejected_feeds_publish_nothing_and_leave_no_generation_gap() {
        let handle = minibank_handle(2);
        let bad = ChangeFeed::new().append_row("no_such_table", vec![]);
        assert!(handle.absorb(&bad).is_err());
        assert_eq!(handle.generation(), 0);
        // The next successful publication continues the sequence densely.
        let generation = handle.absorb(&address_feed(901, "Gapless")).unwrap();
        assert_eq!(generation, 1);
        assert!(!handle.load().search("Gapless").unwrap().is_empty());
    }

    #[test]
    fn restore_generations_relands_the_recorded_stamps() {
        let handle = minibank_handle(4);
        handle.absorb(&address_feed(900, "Streamville")).unwrap();
        let live = handle.load();
        let expected_fp = live.cache_fingerprint();
        let generation = live.generation();
        let shard_generations = live.shard_generations().to_vec();
        let answer = live.search("Streamville").unwrap();

        // A "rebooted" handle over an equivalent snapshot starts at
        // generation 0 with a different fingerprint…
        let rebooted = SnapshotHandle::new(Arc::new(EngineSnapshot::build(
            live.database_arc(),
            live.graph_arc(),
            live.config().clone(),
        )));
        assert_ne!(rebooted.load().cache_fingerprint(), expected_fp);
        // …until the checkpoint stamps are restored.
        rebooted
            .restore_generations(generation, &shard_generations)
            .unwrap();
        let restored = rebooted.load();
        assert_eq!(restored.generation(), generation);
        assert_eq!(restored.shard_generations(), &shard_generations[..]);
        assert_eq!(restored.cache_fingerprint(), expected_fp);
        assert_eq!(restored.search("Streamville").unwrap(), answer);
        // The sequence continues densely after restoration.
        let next = rebooted.absorb(&address_feed(901, "Afterville")).unwrap();
        assert_eq!(next, generation + 1);
    }

    #[test]
    fn restore_generations_rejects_malformed_checkpoints() {
        let handle = minibank_handle(4);
        // Wrong slot count: the checkpoint came from a different shard count.
        assert!(handle.restore_generations(3, &[3, 3]).is_err());
        // A slot beyond the snapshot generation was never published.
        assert!(handle.restore_generations(3, &[3, 4, 0, 0]).is_err());
        // The handle is untouched by the failed attempts.
        assert_eq!(handle.generation(), 0);
    }

    #[test]
    fn refresh_graph_shares_surviving_classification_partitions() {
        let w = soda_warehouse::minibank::build(42);
        let handle = SnapshotHandle::new(Arc::new(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph.clone()),
            SodaConfig {
                shards: 4,
                ..SodaConfig::default()
            },
        )));
        // Republishing the same graph bumps the snapshot generation but not a
        // single partition slot: every classification shard survived.
        let before = handle.load();
        let gen = handle.refresh_graph(Arc::new(w.graph));
        assert_eq!(gen, 1);
        let after = handle.load();
        assert_eq!(after.generation(), 1);
        assert_eq!(after.shard_generations(), &[0, 0, 0, 0]);
        assert!(after
            .classification_index()
            .shares_shard_with(before.classification_index(), 0));
        // Generation is folded into the fingerprint even when no partition
        // changed, so caches keyed on it can distinguish the publications.
        assert_ne!(after.cache_fingerprint(), before.cache_fingerprint());
        assert_eq!(
            after.search("wealthy customers").unwrap(),
            before.search("wealthy customers").unwrap()
        );
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_swap() {
        let handle = Arc::new(minibank_handle(2));
        let expected_old = handle.load().search("Sara Guttinger").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = Arc::clone(&handle);
                let expected_old = expected_old.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let snapshot = handle.load();
                        let got = snapshot.search("Sara Guttinger").unwrap();
                        // Whatever generation we pinned, the answer matches a
                        // single-threaded run against that same snapshot.
                        assert_eq!(got, snapshot.search("Sara Guttinger").unwrap());
                        if snapshot.generation() == 0 {
                            assert_eq!(got, expected_old);
                        }
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..10 {
                    let w = soda_warehouse::minibank::build(42);
                    handle.publish(EngineSnapshot::build(
                        Arc::new(w.database),
                        Arc::new(w.graph),
                        SodaConfig {
                            shards: 2,
                            ..SodaConfig::default()
                        },
                    ));
                }
            });
        });
        assert_eq!(handle.generation(), 10);
    }
}
