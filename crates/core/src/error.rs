//! Error type of the SODA engine.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, SodaError>;

/// Errors produced while parsing an input query or running the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SodaError {
    /// The input query could not be parsed.
    Query(String),
    /// The input query contained no usable terms.
    EmptyQuery,
    /// A pipeline step failed.
    Pipeline(String),
    /// The underlying relational engine reported an error.
    Relation(String),
}

impl fmt::Display for SodaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SodaError::Query(m) => write!(f, "query parse error: {m}"),
            SodaError::EmptyQuery => write!(f, "the query contains no recognisable terms"),
            SodaError::Pipeline(m) => write!(f, "pipeline error: {m}"),
            SodaError::Relation(m) => write!(f, "relational engine error: {m}"),
        }
    }
}

impl std::error::Error for SodaError {}

impl From<soda_relation::RelationError> for SodaError {
    fn from(e: soda_relation::RelationError) -> Self {
        SodaError::Relation(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = SodaError::Query("bad operator".into());
        assert!(e.to_string().contains("bad operator"));
        let r: SodaError = soda_relation::RelationError::UnknownTable("x".into()).into();
        assert!(matches!(r, SodaError::Relation(_)));
        assert!(r.to_string().contains("unknown table"));
    }
}
