//! Result types returned by the engine: scored SQL statements and the
//! per-query trace with the step timings and complexity figures reported in
//! Table 4 of the paper.

use std::time::Duration;

use soda_relation::SelectStatement;

use crate::provenance::Provenance;

/// One interpretation choice: which metadata node a matched phrase was
/// resolved against.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct Interpretation {
    /// The matched phrase.
    pub phrase: String,
    /// Which part of the metadata the phrase was found in.
    pub provenance: Provenance,
    /// URI of the metadata-graph node chosen as the entry point (for
    /// base-data hits, the physical column node).  This is what relevance
    /// feedback votes on: it distinguishes, e.g., the organization-name and
    /// the agreement-name interpretation of the same phrase.
    pub entry_uri: String,
}

/// One scored, executable SQL statement produced for an input query.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SodaResult {
    /// The SQL text (printable, parseable by `soda_relation::parse_select`).
    pub sql: String,
    /// The statement as an AST.
    pub statement: SelectStatement,
    /// Ranking score of the underlying interpretation.
    pub score: f64,
    /// Tables participating in the statement.
    pub tables: Vec<String>,
    /// The interpretation: per matched phrase, where it was found.
    pub interpretation: Vec<Interpretation>,
    /// True when every pair of entry-point tables could be connected through
    /// join conditions.
    pub join_path_complete: bool,
    /// Bridge tables whose joins were added.
    pub used_bridges: Vec<String>,
    /// Notes from the pipeline (skipped constraints, missing columns, …).
    pub notes: Vec<String>,
}

/// One page of ranked results (the paper's "result page": the user can ask
/// for the next set of candidate queries).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ResultPage {
    /// The results on this page, best first.
    pub results: Vec<SodaResult>,
    /// Zero-based page index.
    pub page: usize,
    /// Requested page size.
    pub page_size: usize,
    /// Total number of results generated for the query (across all pages the
    /// engine materialised).
    pub total_results: usize,
    /// Whether a further page exists.
    pub has_next: bool,
}

/// Wall-clock timings of the pipeline steps (the "SODA runtime" of Table 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct StepTimings {
    /// Step 1 — lookup.
    pub lookup: Duration,
    /// Step 2 — rank and top N.
    pub rank: Duration,
    /// Step 3 — tables and joins.
    pub tables: Duration,
    /// Step 4 — filters.
    pub filters: Duration,
    /// Step 5 — SQL generation.
    pub sql: Duration,
}

impl StepTimings {
    /// Total SODA processing time (excludes executing the generated SQL).
    pub fn total(&self) -> Duration {
        self.lookup + self.rank + self.tables + self.filters + self.sql
    }
}

/// Trace of one query through the pipeline.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct QueryTrace {
    /// The input text.
    pub input: String,
    /// Query complexity: size of the combinatorial product of entry points
    /// (Table 4, column "Complexity").
    pub complexity: usize,
    /// Number of solutions that survived ranking.
    pub solutions: usize,
    /// Number of SQL statements produced.
    pub results: usize,
    /// Matched phrases and how many candidates each has (Figure 5).
    pub classification: Vec<(String, Vec<Provenance>)>,
    /// Words that could not be matched.
    pub unmatched: Vec<String>,
    /// Step timings.
    pub timings: StepTimings,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_timings_sum_to_total() {
        let t = StepTimings {
            lookup: Duration::from_millis(5),
            rank: Duration::from_millis(1),
            tables: Duration::from_millis(10),
            filters: Duration::from_millis(2),
            sql: Duration::from_millis(3),
        };
        assert_eq!(t.total(), Duration::from_millis(21));
    }

    #[test]
    fn default_trace_is_empty() {
        let t = QueryTrace::default();
        assert_eq!(t.complexity, 0);
        assert_eq!(t.results, 0);
        assert!(t.classification.is_empty());
    }
}
