//! Binary encoding of served result pages and their probe dependencies —
//! what the serving layer writes into its persistent page-cache file on a
//! graceful drain and reads back on recovery.
//!
//! Built on the primitive [`Encoder`] / [`Decoder`] pair from
//! [`soda_relation::codec`]; statements are encoded structurally (not
//! re-parsed from SQL text) and floats bit-exactly, so a reloaded page is
//! byte-identical to the page that was persisted.

use soda_relation::codec::{CodecError, CodecResult, Decoder, Encoder};

use crate::provenance::Provenance;
use crate::result::{Interpretation, ResultPage, SodaResult};
use crate::shard::ProbeDep;

fn provenance_tag(p: Provenance) -> u8 {
    match p {
        Provenance::DomainOntology => 0,
        Provenance::ConceptualSchema => 1,
        Provenance::LogicalSchema => 2,
        Provenance::PhysicalSchema => 3,
        Provenance::BaseData => 4,
        Provenance::DbPedia => 5,
    }
}

fn provenance_from_tag(tag: u8) -> CodecResult<Provenance> {
    Ok(match tag {
        0 => Provenance::DomainOntology,
        1 => Provenance::ConceptualSchema,
        2 => Provenance::LogicalSchema,
        3 => Provenance::PhysicalSchema,
        4 => Provenance::BaseData,
        5 => Provenance::DbPedia,
        tag => {
            return Err(CodecError::BadTag {
                what: "Provenance",
                tag,
            })
        }
    })
}

fn put_string_list(enc: &mut Encoder, items: &[String]) {
    enc.put_usize(items.len());
    for s in items {
        enc.put_str(s);
    }
}

fn get_string_list(dec: &mut Decoder<'_>) -> CodecResult<Vec<String>> {
    let n = dec.get_usize()?;
    if n > dec.remaining() {
        return Err(CodecError::BadLength);
    }
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(dec.get_str()?);
    }
    Ok(items)
}

/// Appends one [`Interpretation`] to `enc`.
pub fn encode_interpretation(enc: &mut Encoder, i: &Interpretation) {
    enc.put_str(&i.phrase);
    enc.put_u8(provenance_tag(i.provenance));
    enc.put_str(&i.entry_uri);
}

/// Decodes one [`Interpretation`].
pub fn decode_interpretation(dec: &mut Decoder<'_>) -> CodecResult<Interpretation> {
    Ok(Interpretation {
        phrase: dec.get_str()?,
        provenance: provenance_from_tag(dec.get_u8()?)?,
        entry_uri: dec.get_str()?,
    })
}

/// Appends one [`SodaResult`] to `enc`.
pub fn encode_result(enc: &mut Encoder, r: &SodaResult) {
    enc.put_str(&r.sql);
    enc.put_statement(&r.statement);
    enc.put_f64(r.score);
    put_string_list(enc, &r.tables);
    enc.put_usize(r.interpretation.len());
    for i in &r.interpretation {
        encode_interpretation(enc, i);
    }
    enc.put_bool(r.join_path_complete);
    put_string_list(enc, &r.used_bridges);
    put_string_list(enc, &r.notes);
}

/// Decodes one [`SodaResult`].
pub fn decode_result(dec: &mut Decoder<'_>) -> CodecResult<SodaResult> {
    let sql = dec.get_str()?;
    let statement = dec.get_statement()?;
    let score = dec.get_f64()?;
    let tables = get_string_list(dec)?;
    let n = dec.get_usize()?;
    if n > dec.remaining() {
        return Err(CodecError::BadLength);
    }
    let mut interpretation = Vec::with_capacity(n);
    for _ in 0..n {
        interpretation.push(decode_interpretation(dec)?);
    }
    Ok(SodaResult {
        sql,
        statement,
        score,
        tables,
        interpretation,
        join_path_complete: dec.get_bool()?,
        used_bridges: get_string_list(dec)?,
        notes: get_string_list(dec)?,
    })
}

/// Appends one [`ResultPage`] to `enc`.
pub fn encode_page(enc: &mut Encoder, page: &ResultPage) {
    enc.put_usize(page.results.len());
    for r in &page.results {
        encode_result(enc, r);
    }
    enc.put_usize(page.page);
    enc.put_usize(page.page_size);
    enc.put_usize(page.total_results);
    enc.put_bool(page.has_next);
}

/// Decodes one [`ResultPage`].
pub fn decode_page(dec: &mut Decoder<'_>) -> CodecResult<ResultPage> {
    let n = dec.get_usize()?;
    if n > dec.remaining() {
        return Err(CodecError::BadLength);
    }
    let mut results = Vec::with_capacity(n);
    for _ in 0..n {
        results.push(decode_result(dec)?);
    }
    Ok(ResultPage {
        results,
        page: dec.get_usize()?,
        page_size: dec.get_usize()?,
        total_results: dec.get_usize()?,
        has_next: dec.get_bool()?,
    })
}

/// Appends one [`ProbeDep`] to `enc`.
pub fn encode_probe_dep(enc: &mut Encoder, dep: &ProbeDep) {
    enc.put_str(&dep.phrase);
    enc.put_opt_str(dep.token.as_deref());
}

/// Decodes one [`ProbeDep`].
pub fn decode_probe_dep(dec: &mut Decoder<'_>) -> CodecResult<ProbeDep> {
    Ok(ProbeDep {
        phrase: dec.get_str()?,
        token: dec.get_opt_str()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineSnapshot, SodaConfig};
    use std::sync::Arc;

    #[test]
    fn served_pages_round_trip_byte_identically() {
        let w = soda_warehouse::minibank::build(42);
        let snapshot = EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig::default(),
        );
        for query in ["Sara Guttinger", "wealthy customers", "customers Zurich"] {
            let page = snapshot.search_paged(query, 0, 5).unwrap();
            let mut enc = Encoder::new();
            encode_page(&mut enc, &page);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            let back = decode_page(&mut dec).unwrap();
            assert!(dec.is_empty());
            assert_eq!(back, page, "page for '{query}' must round-trip exactly");
        }
    }

    #[test]
    fn every_provenance_round_trips() {
        for p in [
            Provenance::DomainOntology,
            Provenance::ConceptualSchema,
            Provenance::LogicalSchema,
            Provenance::PhysicalSchema,
            Provenance::BaseData,
            Provenance::DbPedia,
        ] {
            assert_eq!(provenance_from_tag(provenance_tag(p)).unwrap(), p);
        }
        assert!(provenance_from_tag(6).is_err());
    }

    #[test]
    fn probe_deps_round_trip() {
        for dep in [
            ProbeDep {
                phrase: "sara guttinger".into(),
                token: Some("guttinger".into()),
            },
            ProbeDep {
                phrase: "nowhereville".into(),
                token: None,
            },
        ] {
            let mut enc = Encoder::new();
            encode_probe_dep(&mut enc, &dep);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(decode_probe_dep(&mut dec).unwrap(), dep);
            assert!(dec.is_empty());
        }
    }
}
