//! Configuration of the SODA engine.
//!
//! The defaults follow the paper; the switches exist so that the ablation
//! benchmarks can turn individual design decisions off (direct-path join
//! pruning, bridge-table detection, provenance-weighted ranking, the inverted
//! index over the base data, DBpedia).

use crate::provenance::Provenance;

/// Ranking weights per entry-point provenance (Step 2 of the pipeline).
///
/// The paper ranks domain-ontology hits above DBpedia hits because the
/// ontology was built by domain experts; the other weights interpolate along
/// the metadata layering of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct RankingWeights {
    /// Weight of a domain-ontology hit.
    pub domain_ontology: f64,
    /// Weight of a conceptual-schema hit.
    pub conceptual: f64,
    /// Weight of a logical-schema hit.
    pub logical: f64,
    /// Weight of a physical-schema hit.
    pub physical: f64,
    /// Weight of a base-data hit.
    pub base_data: f64,
    /// Weight of a DBpedia hit.
    pub dbpedia: f64,
}

impl Default for RankingWeights {
    fn default() -> Self {
        Self {
            domain_ontology: 1.0,
            conceptual: 0.9,
            logical: 0.8,
            physical: 0.7,
            base_data: 0.6,
            dbpedia: 0.4,
        }
    }
}

impl RankingWeights {
    /// Uniform weights: every provenance counts the same (used by the ranking
    /// ablation).
    pub fn uniform() -> Self {
        Self {
            domain_ontology: 1.0,
            conceptual: 1.0,
            logical: 1.0,
            physical: 1.0,
            base_data: 1.0,
            dbpedia: 1.0,
        }
    }

    /// Weight of one provenance.
    pub fn weight(&self, p: Provenance) -> f64 {
        match p {
            Provenance::DomainOntology => self.domain_ontology,
            Provenance::ConceptualSchema => self.conceptual,
            Provenance::LogicalSchema => self.logical,
            Provenance::PhysicalSchema => self.physical,
            Provenance::BaseData => self.base_data,
            Provenance::DbPedia => self.dbpedia,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SodaConfig {
    /// How many ranked solutions continue past Step 2 (the paper's "top N").
    pub top_n: usize,
    /// Maximum number of SQL statements returned.
    pub max_results: usize,
    /// Maximum keyword-combination length tried by the lookup step.
    pub max_phrase_tokens: usize,
    /// Maximum traversal depth in the tables step.
    pub traversal_depth: usize,
    /// Maximum number of join conditions on a path between two entry-point
    /// tables ("far-fetching" control, §5.3.1): a small bound keeps results
    /// precise but may miss joins between entities that are far apart in the
    /// schema graph; raising it ("far-fetching") finds them at the cost of
    /// longer join chains and more results.
    pub max_join_path_length: usize,
    /// Whether join conditions are pruned to direct paths between entry
    /// points (Figure 9).
    pub direct_path_pruning: bool,
    /// Whether bridge tables (physical N-to-N implementations) are added.
    pub use_bridge_tables: bool,
    /// Whether the base data is consulted through the inverted index.
    pub use_inverted_index: bool,
    /// Whether DBpedia synonyms participate in the lookup.
    pub use_dbpedia: bool,
    /// Whether historization annotations in the metadata graph are exploited
    /// (temporal `valid at` predicates on annotated history tables).  A no-op
    /// on paper-faithful graphs, which carry no such annotations.
    pub use_historization: bool,
    /// Whether results are re-ranked by compactness after SQL generation
    /// (BLINKS-inspired: interpretations that connect their entry points with
    /// fewer tables and a complete join path rank higher).  Off by default —
    /// the paper's ranking uses entry-point provenance only.
    pub compactness_rerank: bool,
    /// Number of partitions ("shards") the lookup-layer indexes are split
    /// into.  `1` (the default) keeps the classic monolithic classification
    /// and inverted indexes; larger values partition both by stable hash
    /// (inverted index by owning table, classification index by phrase) and
    /// make the lookup step fan each term's base-data probe out across the
    /// shards on scoped threads.  The merge is canonical, so generated SQL is
    /// byte-identical for every shard count; the knob only trades lookup
    /// latency against thread fan-out overhead.  Folded into
    /// [`fingerprint`](Self::fingerprint) like every other field.
    pub shards: usize,
    /// Ranking weights.
    pub weights: RankingWeights,
    /// Number of snippet rows materialised when executing a result.
    pub snippet_rows: usize,
}

impl SodaConfig {
    /// A stable hash over every configuration field, used by the serving
    /// layer (`soda-service`) to key its interpretation cache: two engines
    /// with different configurations must never share cached result pages,
    /// because almost every field changes what the pipeline produces.
    ///
    /// Stable within one process run (and across runs of the same build) —
    /// it hashes the `Debug` rendering, which covers every field by
    /// construction and keeps float fields (the ranking weights) exact.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        format!("{self:?}").hash(&mut hasher);
        hasher.finish()
    }
}

impl Default for SodaConfig {
    fn default() -> Self {
        Self {
            top_n: 10,
            max_results: 10,
            max_phrase_tokens: 4,
            traversal_depth: 6,
            max_join_path_length: 6,
            direct_path_pruning: true,
            use_bridge_tables: true,
            use_inverted_index: true,
            use_dbpedia: true,
            use_historization: true,
            compactness_rerank: false,
            shards: default_shards(),
            weights: RankingWeights::default(),
            snippet_rows: 20,
        }
    }
}

/// The default lookup-shard count: 1, unless the `SODA_TEST_SHARDS`
/// environment variable overrides it.
///
/// The override exists for CI: because SQL output is shard-invariant by
/// construction, the entire workspace test suite can be re-run with e.g.
/// `SODA_TEST_SHARDS=4` to exercise the multi-shard fan-out paths everywhere
/// a test builds a default-configured engine, without touching any test.
fn default_shards() -> usize {
    std::env::var("SODA_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = SodaConfig::default();
        assert_eq!(c.top_n, 10);
        assert_eq!(c.snippet_rows, 20);
        assert!(c.direct_path_pruning);
        assert!(c.use_bridge_tables);
        assert!(c.use_inverted_index);
    }

    #[test]
    fn ontology_outranks_dbpedia() {
        let w = RankingWeights::default();
        assert!(w.weight(Provenance::DomainOntology) > w.weight(Provenance::DbPedia));
        assert!(w.weight(Provenance::ConceptualSchema) > w.weight(Provenance::BaseData));
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = SodaConfig::default();
        let b = SodaConfig::default();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = SodaConfig {
            top_n: 25,
            ..SodaConfig::default()
        };
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = SodaConfig {
            weights: RankingWeights::uniform(),
            ..SodaConfig::default()
        };
        assert_ne!(a.fingerprint(), d.fingerprint());
        // The shard knob must invalidate service caches too.  Derived from
        // the default so the assertion holds under a SODA_TEST_SHARDS
        // override as well.
        let e = SodaConfig {
            shards: a.shards + 1,
            ..SodaConfig::default()
        };
        assert_ne!(a.fingerprint(), e.fingerprint());
    }

    #[test]
    fn shard_default_is_at_least_one() {
        assert!(SodaConfig::default().shards >= 1);
    }

    #[test]
    fn uniform_weights_are_flat() {
        let w = RankingWeights::uniform();
        assert_eq!(
            w.weight(Provenance::DomainOntology),
            w.weight(Provenance::DbPedia)
        );
    }
}
