//! Owned, shareable engine state for long-lived query serving.
//!
//! [`SodaEngine`](crate::SodaEngine) borrows its warehouse, which is the
//! right shape for one-shot experiments but not for a service: a serving
//! process builds the warehouse once, then answers queries from many threads
//! for hours.  [`EngineSnapshot`] is the owned counterpart — it holds the
//! base data and the metadata graph behind [`Arc`]s together with the built
//! indexes (classification index, inverted index, join catalog), is
//! `Send + Sync`, and can outlive whatever built it.
//!
//! ```
//! use std::sync::Arc;
//! use soda_core::{EngineSnapshot, SodaConfig};
//!
//! let snapshot = {
//!     // The warehouse is dropped at the end of this scope; the snapshot
//!     // keeps serving.
//!     let warehouse = soda_warehouse::minibank::build(42);
//!     EngineSnapshot::build(
//!         Arc::new(warehouse.database),
//!         Arc::new(warehouse.graph),
//!         SodaConfig::default(),
//!     )
//! };
//! let results = snapshot.search("Sara Guttinger").unwrap();
//! assert!(!results.is_empty());
//! ```

use std::sync::Arc;

use soda_metagraph::MetaGraph;
use soda_relation::{Database, ResultSet, ShardedInvertedIndex};

use crate::classification::ClassificationIndex;
use crate::config::SodaConfig;
use crate::engine::EngineCore;
use crate::error::Result;
use crate::feedback::FeedbackStore;
use crate::joins::JoinCatalog;
use crate::patterns::SodaPatterns;
use crate::pipeline::lookup::LookupResult;
use crate::result::{QueryTrace, ResultPage, SodaResult};
use crate::shard::ShardStats;
use crate::suggest::TermSuggestion;

/// An owned, immutable, thread-safe SODA engine.
///
/// Construction cost is identical to [`SodaEngine`](crate::SodaEngine) (the
/// same indexes are built); afterwards every method takes `&self` and the
/// whole snapshot can be wrapped in an [`Arc`] and shared across threads —
/// the `soda-service` crate builds its worker pool on exactly that.
///
/// The snapshot is built around the *sharded* lookup layer: both indexes are
/// partitioned into `config.shards` partitions at construction and every
/// query's lookup step fans its base-data probes out across them;
/// [`shard_stats`](Self::shard_stats) reports the per-shard sizes and probe
/// counts the serving layer folds into its metrics.
pub struct EngineSnapshot {
    db: Arc<Database>,
    graph: Arc<MetaGraph>,
    core: EngineCore,
}

impl EngineSnapshot {
    /// Builds a snapshot over an owned warehouse with the default patterns.
    pub fn build(db: Arc<Database>, graph: Arc<MetaGraph>, config: SodaConfig) -> Self {
        Self::with_patterns(db, graph, config, SodaPatterns::default())
    }

    /// Builds a snapshot with custom metadata-graph patterns.
    pub fn with_patterns(
        db: Arc<Database>,
        graph: Arc<MetaGraph>,
        config: SodaConfig,
        patterns: SodaPatterns,
    ) -> Self {
        let core = EngineCore::build(&db, &graph, config, patterns);
        Self { db, graph, core }
    }

    /// Assembles a snapshot from already-built engine state (used by
    /// [`SodaEngine::into_shared`](crate::SodaEngine::into_shared) to avoid
    /// rebuilding the indexes).
    pub(crate) fn from_parts(db: Arc<Database>, graph: Arc<MetaGraph>, core: EngineCore) -> Self {
        Self { db, graph, core }
    }

    /// The base data.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// A clone of the [`Arc`] holding the base data.
    pub fn database_arc(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// The metadata graph.
    pub fn graph(&self) -> &MetaGraph {
        &self.graph
    }

    /// A clone of the [`Arc`] holding the metadata graph.
    pub fn graph_arc(&self) -> Arc<MetaGraph> {
        Arc::clone(&self.graph)
    }

    /// The engine configuration.
    pub fn config(&self) -> &SodaConfig {
        self.core.config()
    }

    /// The join catalog (exposed for experiments and figures).
    pub fn join_catalog(&self) -> &JoinCatalog {
        self.core.join_catalog()
    }

    /// The classification index (exposed for experiments and figures).
    pub fn classification_index(&self) -> &ClassificationIndex {
        self.core.classification_index()
    }

    /// The inverted index over the base data, if enabled.
    pub fn inverted_index(&self) -> Option<&ShardedInvertedIndex> {
        self.core.inverted_index()
    }

    /// Number of lookup-layer shards this snapshot was built with.
    pub fn shard_count(&self) -> usize {
        self.config().shards.max(1)
    }

    /// Per-shard sizes and probe counts of the lookup layer.
    pub fn shard_stats(&self) -> ShardStats {
        self.core.shard_stats()
    }

    /// Runs only Step 1 (lookup) for an input (see
    /// [`SodaEngine::lookup`](crate::SodaEngine::lookup)).
    pub fn lookup(&self, input: &str) -> Result<LookupResult> {
        self.core.lookup(&self.db, &self.graph, input)
    }

    /// Translates a keyword query into a ranked list of SQL statements.
    pub fn search(&self, input: &str) -> Result<Vec<SodaResult>> {
        self.search_traced(input).map(|(results, _)| results)
    }

    /// Like [`search`](Self::search) but also returns the pipeline trace.
    pub fn search_traced(&self, input: &str) -> Result<(Vec<SodaResult>, QueryTrace)> {
        self.core.search_limited(
            &self.db,
            &self.graph,
            input,
            None,
            self.config().max_results,
        )
    }

    /// Like [`search`](Self::search) but folding accumulated relevance
    /// feedback into the ranking.
    pub fn search_with_feedback(
        &self,
        input: &str,
        feedback: &FeedbackStore,
    ) -> Result<Vec<SodaResult>> {
        self.core
            .search_limited(
                &self.db,
                &self.graph,
                input,
                Some(feedback),
                self.config().max_results,
            )
            .map(|(results, _)| results)
    }

    /// One page of the ranked result list (see
    /// [`SodaEngine::search_paged`](crate::SodaEngine::search_paged)).
    pub fn search_paged(&self, input: &str, page: usize, page_size: usize) -> Result<ResultPage> {
        self.core
            .search_paged(&self.db, &self.graph, input, page, page_size)
    }

    /// Reformulation suggestions for unmatched input words.
    pub fn suggestions(&self, input: &str) -> Result<Vec<TermSuggestion>> {
        self.core.suggestions(&self.db, &self.graph, input)
    }

    /// Executes one generated statement against the base data.
    pub fn execute(&self, result: &SodaResult) -> Result<ResultSet> {
        self.core.execute(&self.db, result)
    }

    /// Executes a statement and renders the snippet of up to
    /// `config.snippet_rows` rows shown on the result page.
    pub fn snippet(&self, result: &SodaResult) -> Result<String> {
        self.core.snippet(&self.db, result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SodaEngine;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn snapshot_is_send_and_sync() {
        assert_send_sync::<EngineSnapshot>();
        assert_send_sync::<Arc<EngineSnapshot>>();
    }

    #[test]
    fn snapshot_outlives_its_warehouse() {
        let snapshot = {
            let w = soda_warehouse::minibank::build(42);
            EngineSnapshot::build(
                Arc::new(w.database),
                Arc::new(w.graph),
                SodaConfig::default(),
            )
        };
        let results = snapshot.search("Sara Guttinger").unwrap();
        assert!(!results.is_empty());
        assert!(results[0].sql.starts_with("SELECT"));
    }

    #[test]
    fn snapshot_matches_borrowed_engine() {
        let w = soda_warehouse::minibank::build(42);
        let engine = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
        let snapshot = EngineSnapshot::build(
            Arc::new(w.database.clone()),
            Arc::new(w.graph.clone()),
            SodaConfig::default(),
        );
        for query in [
            "Sara Guttinger",
            "wealthy customers",
            "sum (amount) group by (transaction date)",
        ] {
            let borrowed = engine.search(query).unwrap();
            let owned = snapshot.search(query).unwrap();
            assert_eq!(borrowed, owned, "divergence on '{query}'");
        }
    }

    #[test]
    fn into_shared_preserves_behaviour() {
        let w = soda_warehouse::minibank::build(42);
        let engine = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
        let before = engine.search("wealthy customers").unwrap();
        let snapshot = engine.into_shared();
        drop(w);
        let after = snapshot.search("wealthy customers").unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn sharded_snapshot_is_byte_identical_and_reports_stats() {
        let w = soda_warehouse::minibank::build(42);
        let baseline = EngineSnapshot::build(
            Arc::new(w.database.clone()),
            Arc::new(w.graph.clone()),
            SodaConfig {
                shards: 1,
                ..SodaConfig::default()
            },
        );
        let sharded = EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig {
                shards: 4,
                ..SodaConfig::default()
            },
        );
        assert_eq!(sharded.shard_count(), 4);
        for query in ["Sara Guttinger", "wealthy customers", "customers Zurich"] {
            assert_eq!(
                baseline.search(query).unwrap(),
                sharded.search(query).unwrap(),
                "divergence on '{query}'"
            );
        }
        let stats = sharded.shard_stats();
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.classification_phrases.len(), 4);
        assert_eq!(stats.index_postings.len(), 4);
        assert_eq!(
            stats.classification_phrases.iter().sum::<usize>(),
            sharded.classification_index().len()
        );
        assert_eq!(
            stats.index_postings.iter().sum::<usize>(),
            sharded.inverted_index().unwrap().posting_count()
        );
        // The searches above probed the base data, so scan work accumulated
        // on the shards holding the matched tables.
        assert_eq!(stats.probes.len(), 4);
        assert!(stats.total_probes() > 0);
    }

    #[test]
    fn shared_snapshot_serves_multiple_threads() {
        let w = soda_warehouse::minibank::build(42);
        let snapshot = Arc::new(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig::default(),
        ));
        let expected = snapshot.search("Sara Guttinger").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let snapshot = Arc::clone(&snapshot);
                let expected = expected.clone();
                scope.spawn(move || {
                    let got = snapshot.search("Sara Guttinger").unwrap();
                    assert_eq!(got, expected);
                });
            }
        });
    }
}
