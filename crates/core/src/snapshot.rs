//! Owned, shareable engine state for long-lived query serving.
//!
//! [`SodaEngine`](crate::SodaEngine) borrows its warehouse, which is the
//! right shape for one-shot experiments but not for a service: a serving
//! process builds the warehouse once, then answers queries from many threads
//! for hours.  [`EngineSnapshot`] is the owned counterpart — it holds the
//! base data and the metadata graph behind [`Arc`]s together with the built
//! indexes (classification index, inverted index, join catalog), is
//! `Send + Sync`, and can outlive whatever built it.
//!
//! ```
//! use std::sync::Arc;
//! use soda_core::{EngineSnapshot, SodaConfig};
//!
//! let snapshot = {
//!     // The warehouse is dropped at the end of this scope; the snapshot
//!     // keeps serving.
//!     let warehouse = soda_warehouse::minibank::build(42);
//!     EngineSnapshot::build(
//!         Arc::new(warehouse.database),
//!         Arc::new(warehouse.graph),
//!         SodaConfig::default(),
//!     )
//! };
//! let results = snapshot.search("Sara Guttinger").unwrap();
//! assert!(!results.is_empty());
//! ```

use std::sync::Arc;

use soda_metagraph::MetaGraph;
use soda_relation::{Database, ResultSet, ShardedInvertedIndex};

use crate::classification::ClassificationIndex;
use crate::config::SodaConfig;
use crate::engine::EngineCore;
use crate::error::Result;
use crate::feedback::FeedbackStore;
use crate::joins::JoinCatalog;
use crate::patterns::SodaPatterns;
use crate::pipeline::lookup::LookupResult;
use crate::result::{QueryTrace, ResultPage, SodaResult, StepTimings};
use crate::shard::{ProbeDep, ProbeRecorder, ShardStats};
use crate::suggest::TermSuggestion;

/// An owned, immutable, thread-safe SODA engine.
///
/// Construction cost is identical to [`SodaEngine`](crate::SodaEngine) (the
/// same indexes are built); afterwards every method takes `&self` and the
/// whole snapshot can be wrapped in an [`Arc`] and shared across threads —
/// the `soda-service` crate builds its worker pool on exactly that.
///
/// The snapshot is built around the *sharded* lookup layer: both indexes are
/// partitioned into `config.shards` partitions at construction and every
/// query's lookup step fans its base-data probes out across them;
/// [`shard_stats`](Self::shard_stats) reports the per-shard sizes and probe
/// counts the serving layer folds into its metrics.
///
/// ## Generations
///
/// Every snapshot carries a [`generation`](Self::generation) counter and a
/// per-shard generation vector, stamped by the
/// [`SnapshotHandle`](crate::SnapshotHandle) that publishes it (both stay `0`
/// for snapshots that never go through a handle).  A freshly published full
/// snapshot carries its generation in every slot; a per-shard rebuild bumps
/// only the rebuilt partitions' slots — the vector records *which*
/// partitions each publication touched (surfaced through
/// [`shard_stats`](Self::shard_stats)).  [`cache_fingerprint`](Self::cache_fingerprint)
/// folds the configuration fingerprint together with the publication
/// generation and the vector, so a superseded generation's cached pages
/// stop being addressable; for data-only swaps the serving layer re-keys
/// pages that provably never consulted a dirty shard
/// ([`retains_page`](Self::retains_page)) instead of recomputing them.
pub struct EngineSnapshot {
    db: Arc<Database>,
    graph: Arc<MetaGraph>,
    core: EngineCore,
    /// Generation stamped at publication (0 = never published via a handle).
    generation: u64,
    /// Generation that last rebuilt each lookup-layer partition.
    shard_generations: Vec<u64>,
    /// [`cache_fingerprint`](Self::cache_fingerprint), precomputed.  The
    /// serving layer reads the fingerprint on *every* submission (it keys
    /// the interpretation cache), and its inputs — configuration and the
    /// generation stamps — are immutable once a snapshot is constructed, so
    /// every constructor seals the value eagerly via [`Self::sealed`].
    fingerprint: u64,
}

impl EngineSnapshot {
    /// Builds a snapshot over an owned warehouse with the default patterns.
    pub fn build(db: Arc<Database>, graph: Arc<MetaGraph>, config: SodaConfig) -> Self {
        Self::with_patterns(db, graph, config, SodaPatterns::default())
    }

    /// Builds a snapshot with custom metadata-graph patterns.
    pub fn with_patterns(
        db: Arc<Database>,
        graph: Arc<MetaGraph>,
        config: SodaConfig,
        patterns: SodaPatterns,
    ) -> Self {
        let core = EngineCore::build(&db, &graph, config, patterns);
        Self::from_parts(db, graph, core)
    }

    /// Assembles a snapshot from already-built engine state (used by
    /// [`SodaEngine::into_shared`](crate::SodaEngine::into_shared) to avoid
    /// rebuilding the indexes).
    pub(crate) fn from_parts(db: Arc<Database>, graph: Arc<MetaGraph>, core: EngineCore) -> Self {
        let shards = core.config().shards.max(1);
        Self {
            db,
            graph,
            core,
            generation: 0,
            shard_generations: vec![0; shards],
            fingerprint: 0,
        }
        .sealed()
    }

    /// Stamps this snapshot as published at `generation` (every shard slot
    /// included) — called by [`SnapshotHandle::publish`](crate::SnapshotHandle::publish).
    pub(crate) fn stamped(mut self, generation: u64) -> Self {
        self.generation = generation;
        self.shard_generations = vec![generation; self.shard_generations.len()];
        self.sealed()
    }

    /// A structurally identical snapshot carrying exactly the given
    /// generation stamps — the durable-recovery path uses this (via
    /// [`SnapshotHandle::restore_generations`](crate::SnapshotHandle::restore_generations))
    /// to land a rebooted engine on the same generation vector, and thus the
    /// same [`cache_fingerprint`](Self::cache_fingerprint), a checkpoint
    /// recorded.  Every built structure is shared with `self`.
    pub(crate) fn restored(&self, generation: u64, shard_generations: Vec<u64>) -> Self {
        Self {
            db: Arc::clone(&self.db),
            graph: Arc::clone(&self.graph),
            core: self.core.share(),
            generation,
            shard_generations,
            fingerprint: 0,
        }
        .sealed()
    }

    /// Derives a snapshot over `db` in which only `tables` changed: the
    /// inverted-index partitions owning those tables are rebuilt from `db`
    /// and stamped with `generation`; every other structure — classification
    /// index, join catalog, probe counters, untouched index partitions — is
    /// shared with `self`.
    pub(crate) fn derive_rebuilt_tables(
        &self,
        db: Arc<Database>,
        tables: &[String],
        generation: u64,
    ) -> Self {
        let (core, affected) = self.core.derive_with_rebuilt_tables(&db, tables);
        let mut shard_generations = self.shard_generations.clone();
        for shard in affected {
            if let Some(slot) = shard_generations.get_mut(shard) {
                *slot = generation;
            }
        }
        Self {
            db,
            graph: Arc::clone(&self.graph),
            core,
            generation,
            shard_generations,
            fingerprint: 0,
        }
        .sealed()
    }

    /// Derives a snapshot that has absorbed a row-level change feed: the
    /// events are applied to a copy of the base data and routed into
    /// per-shard side logs — **no frozen index partition is touched**.  The
    /// shards whose logs changed get `generation` stamped into their slot
    /// (they answer differently now), everything else is shared with `self`.
    ///
    /// The feed is consumed (rows move by value) and the derived database
    /// structurally shares every untouched table with `self`'s — the whole
    /// chain is O(delta).  Returns the snapshot plus the ingest report so
    /// callers can surface sharing metrics.
    pub(crate) fn derive_absorbed(
        &self,
        feed: soda_ingest::ChangeFeed,
        generation: u64,
    ) -> Result<(Self, soda_ingest::IngestReport)> {
        let (db, core, report) = self.core.derive_with_ingested(&self.db, feed)?;
        let mut shard_generations = self.shard_generations.clone();
        for &shard in &report.touched_shards {
            if let Some(slot) = shard_generations.get_mut(shard) {
                *slot = generation;
            }
        }
        Ok((
            Self {
                db: Arc::new(db),
                graph: Arc::clone(&self.graph),
                core,
                generation,
                shard_generations,
                fingerprint: 0,
            }
            .sealed(),
            report,
        ))
    }

    /// Derives a snapshot in which the partitions named by `shards` are
    /// rebuilt from the *current* base data, folding (and clearing) their
    /// side logs — a compaction.  Answers are unchanged by construction (the
    /// database already contains every logged row); the folded shards' slots
    /// get `generation` so fingerprint-scoped caches notice.
    pub(crate) fn derive_compacted(&self, shards: &[usize], generation: u64) -> Self {
        let core = self.core.derive_with_rebuilt_partitions(&self.db, shards);
        let mut shard_generations = self.shard_generations.clone();
        for &shard in shards {
            if let Some(slot) = shard_generations.get_mut(shard) {
                *slot = generation;
            }
        }
        Self {
            db: Arc::clone(&self.db),
            graph: Arc::clone(&self.graph),
            core,
            generation,
            shard_generations,
            fingerprint: 0,
        }
        .sealed()
    }

    /// Derives a snapshot over a refreshed metadata graph (unchanged base
    /// data): the classification index is rebuilt sharing every unchanged
    /// partition, the join catalog is rebuilt, and only the classification
    /// partitions the refresh touched get `generation` stamped into their
    /// slot.
    pub(crate) fn derive_refreshed_graph(&self, graph: Arc<MetaGraph>, generation: u64) -> Self {
        let (core, changed) = self.core.derive_with_refreshed_graph(&self.db, &graph);
        let mut shard_generations = self.shard_generations.clone();
        for (slot, changed) in shard_generations.iter_mut().zip(&changed) {
            if *changed {
                *slot = generation;
            }
        }
        Self {
            db: Arc::clone(&self.db),
            graph,
            core,
            generation,
            shard_generations,
            fingerprint: 0,
        }
        .sealed()
    }

    /// Generation stamped at publication (0 when the snapshot never went
    /// through a [`SnapshotHandle`](crate::SnapshotHandle)).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Generation that last rebuilt each lookup-layer partition.
    pub fn shard_generations(&self) -> &[u64] {
        &self.shard_generations
    }

    /// A stable fingerprint of everything that determines this snapshot's
    /// answers *and* freshness: the configuration fingerprint folded with the
    /// snapshot generation and the per-shard generation vector.  The serving
    /// layer keys its interpretation cache by this, so pages computed against
    /// a swapped-out generation can never be returned for a newer one — they
    /// stop being addressable and the service purges them.
    pub fn cache_fingerprint(&self) -> u64 {
        // Precomputed at construction (see `sealed`): the serving layer
        // calls this on every submission, and hashing the configuration's
        // `Debug` rendering each time dominated the warm cache-hit path.
        self.fingerprint
    }

    /// Computes and stores [`cache_fingerprint`](Self::cache_fingerprint) —
    /// the final step of every constructor, after the generation stamps are
    /// settled.
    fn sealed(mut self) -> Self {
        // FNV-1a over the generation vector, seeded by the config
        // fingerprint: cheap, stable, and sensitive to slot order.
        let mut hash = self.config().fingerprint() ^ 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.generation);
        for &g in &self.shard_generations {
            mix(g);
        }
        self.fingerprint = hash;
        self
    }

    /// The base data.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// A clone of the [`Arc`] holding the base data.
    pub fn database_arc(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// The metadata graph.
    pub fn graph(&self) -> &MetaGraph {
        &self.graph
    }

    /// A clone of the [`Arc`] holding the metadata graph.
    pub fn graph_arc(&self) -> Arc<MetaGraph> {
        Arc::clone(&self.graph)
    }

    /// The engine configuration.
    pub fn config(&self) -> &SodaConfig {
        self.core.config()
    }

    /// The join catalog (exposed for experiments and figures).
    pub fn join_catalog(&self) -> &JoinCatalog {
        self.core.join_catalog()
    }

    /// The classification index (exposed for experiments and figures).
    pub fn classification_index(&self) -> &ClassificationIndex {
        self.core.classification_index()
    }

    /// The inverted index over the base data, if enabled.
    pub fn inverted_index(&self) -> Option<&ShardedInvertedIndex> {
        self.core.inverted_index()
    }

    /// Number of lookup-layer shards this snapshot was built with.
    pub fn shard_count(&self) -> usize {
        self.config().shards.max(1)
    }

    /// Per-shard sizes and probe counts of the lookup layer, with this
    /// snapshot's per-shard generation vector overlaid.
    pub fn shard_stats(&self) -> ShardStats {
        let mut stats = self.core.shard_stats();
        stats.generations = self.shard_generations.clone();
        stats
    }

    /// The partitions owning `tables`, sorted and deduplicated — the dirty
    /// set of a data-only swap over those tables.
    pub fn shards_for_tables(&self, tables: &[String]) -> Vec<usize> {
        self.core.shards_for_tables(tables)
    }

    /// The shards currently carrying a non-empty ingestion side log —
    /// compaction candidates.
    pub fn shards_with_side_logs(&self) -> Vec<usize> {
        self.core.shards_with_side_logs()
    }

    /// Decides whether a result page computed against an *earlier* snapshot
    /// generation provably still answers correctly against `self`, given
    /// that the swap between them was **data-only** (base rows of the tables
    /// owned by `dirty` changed; schemas, metadata graph and configuration
    /// identical) and given what the page's query actually consulted:
    ///
    /// * `touched_mask` / `touched_overflow` — the shards its probes scanned
    ///   (from a [`ProbeRecorder`]),
    /// * `deps` — the phrases it probed and the probe tokens they selected.
    ///
    /// The page survives when none of its probes scanned a dirty shard, and
    /// for every probed phrase the *new* index still selects the same probe
    /// token with zero candidates in every dirty shard — then the hit set is
    /// computed from the same postings over unchanged rows (non-lookup
    /// pipeline steps only read schema-level catalog data, which a data
    /// delta cannot change).  Everything else is conservatively rejected.
    pub fn retains_page(
        &self,
        touched_mask: u64,
        touched_overflow: bool,
        deps: &[ProbeDep],
        dirty: &[usize],
    ) -> bool {
        RetentionGate::new(self, dirty).retains(touched_mask, touched_overflow, deps)
    }

    /// Whether one probe dependency is provably unchanged by a data-only
    /// swap dirtying `dirty`: the index still selects the same probe token
    /// for the phrase, and no dirty shard holds candidates for it.  The
    /// building block of [`retains_page`](Self::retains_page); swap-time
    /// cache passes memoize it per distinct dependency through a
    /// [`RetentionGate`].
    pub fn probe_dep_unchanged(&self, dep: &ProbeDep, dirty: &[usize]) -> bool {
        let Some(index) = self.core.inverted_index() else {
            // Without an inverted index no query consults base rows during
            // interpretation, so data deltas cannot change any page.
            return true;
        };
        let probe = index.probe(&dep.phrase);
        match (&probe, &dep.token) {
            (None, None) => true,
            (Some(probe), Some(token)) if &probe.token == token => dirty
                .iter()
                .all(|&shard| index.shard_candidates(shard, probe) == 0),
            _ => false,
        }
    }

    /// Like [`search_paged`](Self::search_paged), additionally reporting
    /// into `recorder` which shards the query's base-data probes scanned and
    /// which probe token each phrase selected — the dependency set
    /// [`retains_page`](Self::retains_page) consumes.
    pub fn search_paged_recorded(
        &self,
        input: &str,
        page: usize,
        page_size: usize,
        recorder: &ProbeRecorder,
    ) -> Result<ResultPage> {
        self.core.search_paged(
            &self.db,
            &self.graph,
            input,
            page,
            page_size,
            Some(recorder),
        )
    }

    /// The full observability surface of one paged search: probe
    /// dependencies into `recorder` (when given), pipeline spans into `sink`
    /// — the root `query` span with one child per stage, and per-shard
    /// `probe_shard` sub-spans under `lookup` — and the per-stage
    /// [`StepTimings`] returned alongside the page.
    ///
    /// With [`soda_trace::NoopSink`] this is exactly
    /// [`search_paged_recorded`](Self::search_paged_recorded): span
    /// reporting is guarded by [`soda_trace::TraceSink::enabled`] at every
    /// site, so tracing can never perturb the generated SQL (the
    /// `shard_invariance` suite pins this).
    pub fn search_paged_observed(
        &self,
        input: &str,
        page: usize,
        page_size: usize,
        recorder: Option<&ProbeRecorder>,
        sink: &dyn soda_trace::TraceSink,
    ) -> Result<(ResultPage, StepTimings)> {
        self.core.search_paged_observed(
            &self.db,
            &self.graph,
            input,
            page,
            page_size,
            recorder,
            sink,
        )
    }

    /// Runs only Step 1 (lookup) for an input (see
    /// [`SodaEngine::lookup`](crate::SodaEngine::lookup)).
    pub fn lookup(&self, input: &str) -> Result<LookupResult> {
        self.core.lookup(&self.db, &self.graph, input)
    }

    /// Translates a keyword query into a ranked list of SQL statements.
    pub fn search(&self, input: &str) -> Result<Vec<SodaResult>> {
        self.search_traced(input).map(|(results, _)| results)
    }

    /// Like [`search`](Self::search) but also returns the pipeline trace.
    pub fn search_traced(&self, input: &str) -> Result<(Vec<SodaResult>, QueryTrace)> {
        self.core.search_limited(
            &self.db,
            &self.graph,
            input,
            None,
            self.config().max_results,
            None,
        )
    }

    /// Like [`search`](Self::search) but folding accumulated relevance
    /// feedback into the ranking.
    pub fn search_with_feedback(
        &self,
        input: &str,
        feedback: &FeedbackStore,
    ) -> Result<Vec<SodaResult>> {
        self.core
            .search_limited(
                &self.db,
                &self.graph,
                input,
                Some(feedback),
                self.config().max_results,
                None,
            )
            .map(|(results, _)| results)
    }

    /// One page of the ranked result list (see
    /// [`SodaEngine::search_paged`](crate::SodaEngine::search_paged)).
    pub fn search_paged(&self, input: &str, page: usize, page_size: usize) -> Result<ResultPage> {
        self.core
            .search_paged(&self.db, &self.graph, input, page, page_size, None)
    }

    /// Reformulation suggestions for unmatched input words.
    pub fn suggestions(&self, input: &str) -> Result<Vec<TermSuggestion>> {
        self.core.suggestions(&self.db, &self.graph, input)
    }

    /// Executes one generated statement against the base data.
    pub fn execute(&self, result: &SodaResult) -> Result<ResultSet> {
        self.core.execute(&self.db, result)
    }

    /// Executes a statement and renders the snippet of up to
    /// `config.snippet_rows` rows shown on the result page.
    pub fn snippet(&self, result: &SodaResult) -> Result<String> {
        self.core.snippet(&self.db, result)
    }
}

/// A memoizing retention checker for one data-only swap episode: each
/// distinct probe dependency is checked against the new index at most once,
/// no matter how many cached pages share it — the swap-time pass over a
/// full cache costs `O(distinct dependencies)` probes instead of
/// `O(entries × deps)`.
pub struct RetentionGate<'a> {
    snapshot: &'a EngineSnapshot,
    dirty: &'a [usize],
    memo: std::collections::HashMap<ProbeDep, bool>,
}

impl<'a> RetentionGate<'a> {
    /// A gate for pages crossing the swap that dirtied `dirty` shards,
    /// checked against the *new* snapshot.
    pub fn new(snapshot: &'a EngineSnapshot, dirty: &'a [usize]) -> Self {
        Self {
            snapshot,
            dirty,
            memo: std::collections::HashMap::new(),
        }
    }

    /// [`EngineSnapshot::retains_page`] with the per-dependency probe checks
    /// memoized across calls.
    pub fn retains(
        &mut self,
        touched_mask: u64,
        touched_overflow: bool,
        deps: &[ProbeDep],
    ) -> bool {
        if self.dirty.is_empty() {
            return true;
        }
        if touched_overflow || self.dirty.iter().any(|&s| s >= 64) {
            return false;
        }
        if self.dirty.iter().any(|&s| touched_mask & (1 << s) != 0) {
            return false;
        }
        deps.iter().all(|dep| self.dep_unchanged(dep))
    }

    fn dep_unchanged(&mut self, dep: &ProbeDep) -> bool {
        if let Some(&ok) = self.memo.get(dep) {
            return ok;
        }
        let ok = self.snapshot.probe_dep_unchanged(dep, self.dirty);
        self.memo.insert(dep.clone(), ok);
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SodaEngine;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn snapshot_is_send_and_sync() {
        assert_send_sync::<EngineSnapshot>();
        assert_send_sync::<Arc<EngineSnapshot>>();
    }

    #[test]
    fn snapshot_outlives_its_warehouse() {
        let snapshot = {
            let w = soda_warehouse::minibank::build(42);
            EngineSnapshot::build(
                Arc::new(w.database),
                Arc::new(w.graph),
                SodaConfig::default(),
            )
        };
        let results = snapshot.search("Sara Guttinger").unwrap();
        assert!(!results.is_empty());
        assert!(results[0].sql.starts_with("SELECT"));
    }

    #[test]
    fn snapshot_matches_borrowed_engine() {
        let w = soda_warehouse::minibank::build(42);
        let engine = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
        let snapshot = EngineSnapshot::build(
            Arc::new(w.database.clone()),
            Arc::new(w.graph.clone()),
            SodaConfig::default(),
        );
        for query in [
            "Sara Guttinger",
            "wealthy customers",
            "sum (amount) group by (transaction date)",
        ] {
            let borrowed = engine.search(query).unwrap();
            let owned = snapshot.search(query).unwrap();
            assert_eq!(borrowed, owned, "divergence on '{query}'");
        }
    }

    #[test]
    fn into_shared_preserves_behaviour() {
        let w = soda_warehouse::minibank::build(42);
        let engine = SodaEngine::new(&w.database, &w.graph, SodaConfig::default());
        let before = engine.search("wealthy customers").unwrap();
        let snapshot = engine.into_shared();
        drop(w);
        let after = snapshot.search("wealthy customers").unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn sharded_snapshot_is_byte_identical_and_reports_stats() {
        let (db, graph) = soda_warehouse::minibank::build(42).shared_parts();
        let baseline = EngineSnapshot::build(
            Arc::clone(&db),
            Arc::clone(&graph),
            SodaConfig {
                shards: 1,
                ..SodaConfig::default()
            },
        );
        let sharded = EngineSnapshot::build(
            db,
            graph,
            SodaConfig {
                shards: 4,
                ..SodaConfig::default()
            },
        );
        assert_eq!(sharded.shard_count(), 4);
        for query in ["Sara Guttinger", "wealthy customers", "customers Zurich"] {
            assert_eq!(
                baseline.search(query).unwrap(),
                sharded.search(query).unwrap(),
                "divergence on '{query}'"
            );
        }
        let stats = sharded.shard_stats();
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.classification_phrases.len(), 4);
        assert_eq!(stats.index_postings.len(), 4);
        assert_eq!(
            stats.classification_phrases.iter().sum::<usize>(),
            sharded.classification_index().len()
        );
        assert_eq!(
            stats.index_postings.iter().sum::<usize>(),
            sharded.inverted_index().unwrap().posting_count()
        );
        // The searches above probed the base data, so scan work accumulated
        // on the shards holding the matched tables.
        assert_eq!(stats.probes.len(), 4);
        assert!(stats.total_probes() > 0);
    }

    #[test]
    fn retains_page_attests_only_provably_unaffected_queries() {
        // At 8 shards `individuals` (shard 7) and `addresses` (shard 3) land
        // in different partitions — the split this test relies on.
        let shards = 8;
        assert_ne!(
            soda_relation::shard_for_table("individuals", shards),
            soda_relation::shard_for_table("addresses", shards),
        );
        let w = soda_warehouse::minibank::build(42);
        let handle = crate::SnapshotHandle::new(Arc::new(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig {
                shards,
                ..SodaConfig::default()
            },
        )));
        let recorder = crate::shard::ProbeRecorder::new();
        handle
            .load()
            .search_paged_recorded("Sara Guttinger", 0, 10, &recorder)
            .unwrap();
        let deps = recorder.deps();
        assert!(!deps.is_empty(), "the query probes the base data");
        let mask = recorder.touched_mask();
        assert!(!recorder.overflowed());

        // Ingest into `addresses`: the Sara page provably never saw it.
        let feed = crate::ChangeFeed::new().append_row(
            "addresses",
            vec![
                soda_relation::Value::Int(900),
                soda_relation::Value::Int(1),
                soda_relation::Value::from("Retain Lane 1"),
                soda_relation::Value::from("Retainville"),
                soda_relation::Value::from("Switzerland"),
            ],
        );
        handle.absorb(&feed).unwrap();
        let after = handle.load();
        let dirty = after.shards_for_tables(&["addresses".to_string()]);
        assert!(after.retains_page(mask, false, &deps, &dirty));
        // …and the retained answer really is unchanged.
        assert_eq!(
            after.search("Sara Guttinger").unwrap(),
            handle.load().search("Sara Guttinger").unwrap()
        );

        // A swap dirtying a shard the page's probes scanned is rejected.
        let sara_shard = after.shards_for_tables(&["individuals".to_string()]);
        assert!(!after.retains_page(mask, false, &deps, &sara_shard));
        // Overflowed recorders and empty dirty sets take the trivial paths.
        assert!(!after.retains_page(mask, true, &deps, &dirty));
        assert!(after.retains_page(mask, true, &deps, &[]));

        // A feed that gives a previously postings-free phrase candidates in
        // a dirty shard kills pages that probed it: "Retainville" was
        // nowhere before this absorb, so a page that probed it carried a
        // `None` token — and now the probe resolves.
        let nowhere = crate::shard::ProbeRecorder::new();
        handle
            .load()
            .search_paged_recorded("Nowhereville", 0, 10, &nowhere)
            .unwrap();
        let nowhere_deps = nowhere.deps();
        assert!(nowhere_deps.iter().any(|d| d.token.is_none()));
        let retain_probe = crate::shard::ProbeRecorder::new();
        handle
            .load()
            .search_paged_recorded("Retainville", 0, 10, &retain_probe)
            .unwrap();
        assert!(
            retain_probe.deps().iter().any(|d| d.token.is_some()),
            "the absorbed row resolves the probe"
        );
        // Against a hypothetical swap dirtying the addresses shard, the
        // Retainville page (whose probe scanned it) must not be retained.
        assert!(!after.retains_page(
            retain_probe.touched_mask(),
            retain_probe.overflowed(),
            &retain_probe.deps(),
            &dirty
        ));
    }

    #[test]
    fn shared_snapshot_serves_multiple_threads() {
        let w = soda_warehouse::minibank::build(42);
        let snapshot = Arc::new(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig::default(),
        ));
        let expected = snapshot.search("Sara Guttinger").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let snapshot = Arc::clone(&snapshot);
                let expected = expected.clone();
                scope.spawn(move || {
                    let got = snapshot.search("Sara Guttinger").unwrap();
                    assert_eq!(got, expected);
                });
            }
        });
    }
}
