//! The join catalog: table-level join knowledge derived from the metadata
//! graph by matching the Foreign-Key, Join-Relationship and Inheritance-Child
//! patterns over all nodes.
//!
//! Step 3 of the pipeline needs to connect the tables discovered for the entry
//! points through join conditions that lie "on a direct path between the entry
//! points" (Figure 9), to add the parent tables of inheritance children, and
//! to detect bridge tables (physical implementations of N-to-N relationships,
//! including the problematic bridges *between inheritance siblings* of
//! Figure 10).  All of that is table-level reasoning, so the engine
//! pre-computes this catalog once per warehouse.

use std::collections::{HashMap, HashSet, VecDeque};

use soda_metagraph::{Matcher, MetaGraph};
use soda_relation::Database;

use crate::patterns::SodaPatterns;
use crate::resolve::column_name;

/// One join condition between two physical columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize)]
pub struct JoinEdge {
    /// Referencing (foreign-key) table.
    pub fk_table: String,
    /// Referencing column.
    pub fk_column: String,
    /// Referenced (primary-key) table.
    pub pk_table: String,
    /// Referenced column.
    pub pk_column: String,
    /// Whether the edge came from an explicit join node rather than a plain
    /// `foreign_key` edge.
    pub explicit_join_node: bool,
}

impl JoinEdge {
    /// The table on the other side of the edge, if `table` is one endpoint.
    pub fn other(&self, table: &str) -> Option<&str> {
        if self.fk_table.eq_ignore_ascii_case(table) {
            Some(&self.pk_table)
        } else if self.pk_table.eq_ignore_ascii_case(table) {
            Some(&self.fk_table)
        } else {
            None
        }
    }

    /// Renders the join condition as SQL text (for traces and tests).
    pub fn condition(&self) -> String {
        format!(
            "{}.{} = {}.{}",
            self.fk_table, self.fk_column, self.pk_table, self.pk_column
        )
    }
}

/// An inheritance link between a parent table and one child table.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct InheritanceLink {
    /// Super-type table.
    pub parent_table: String,
    /// Sub-type table.
    pub child_table: String,
    /// The join edge connecting the two (child FK → parent PK), when the
    /// schema graph contains one.
    pub join: Option<JoinEdge>,
}

/// A bi-temporal historization annotation discovered through the
/// Historization pattern (extension): `hist_table` stores the history of
/// `current_table`, with validity bounded by the named columns of the history
/// table.  Paper-faithful metadata graphs carry no such annotations; the
/// annotated warehouse variants do (§5.2.1, §7).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct HistorizationLink {
    /// The history table.
    pub hist_table: String,
    /// The table carrying the current state.
    pub current_table: String,
    /// Validity-start column of the history table.
    pub valid_from_column: String,
    /// Validity-end column of the history table.
    pub valid_to_column: String,
}

/// A bridge table: a table with at least two foreign keys referencing at least
/// two distinct other tables.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct BridgeTable {
    /// The bridge table itself.
    pub table: String,
    /// Its outgoing foreign-key edges.
    pub edges: Vec<JoinEdge>,
}

impl BridgeTable {
    /// The set of tables this bridge connects.
    pub fn connects(&self) -> Vec<&str> {
        let mut tables: Vec<&str> = self.edges.iter().map(|e| e.pk_table.as_str()).collect();
        tables.sort_unstable();
        tables.dedup();
        tables
    }
}

/// The pre-computed join catalog of a warehouse.
#[derive(Debug, Default, Clone)]
pub struct JoinCatalog {
    /// All join edges.
    pub edges: Vec<JoinEdge>,
    /// All inheritance links.
    pub inheritance: Vec<InheritanceLink>,
    /// All bridge tables.
    pub bridges: Vec<BridgeTable>,
    /// All historization annotations (empty on paper-faithful graphs).
    pub historization: Vec<HistorizationLink>,
    /// Table adjacency: table → indexes into `edges`.
    adjacency: HashMap<String, Vec<usize>>,
}

impl JoinCatalog {
    /// Builds the catalog by matching the join-related patterns over the whole
    /// metadata graph.
    pub fn build(graph: &MetaGraph, patterns: &SodaPatterns, db: &Database) -> Self {
        let matcher = Matcher::new(graph, patterns.registry());
        let mut edges: Vec<JoinEdge> = Vec::new();

        // Plain foreign-key edges.
        for (node, binding) in matcher.match_all(patterns.foreign_key()) {
            let Some((fk_table, fk_column)) = column_name(graph, node, db) else {
                continue;
            };
            let Some(pk_node) = binding.node("y") else {
                continue;
            };
            let Some((pk_table, pk_column)) = column_name(graph, pk_node, db) else {
                continue;
            };
            edges.push(JoinEdge {
                fk_table,
                fk_column,
                pk_table,
                pk_column,
                explicit_join_node: false,
            });
        }

        // Explicit join nodes (Credit Suisse style).
        for (_node, binding) in matcher.match_all(patterns.join_relationship()) {
            let (Some(f), Some(p)) = (binding.node("f"), binding.node("p")) else {
                continue;
            };
            let (Some((fk_table, fk_column)), Some((pk_table, pk_column))) =
                (column_name(graph, f, db), column_name(graph, p, db))
            else {
                continue;
            };
            edges.push(JoinEdge {
                fk_table,
                fk_column,
                pk_table,
                pk_column,
                explicit_join_node: true,
            });
        }
        edges.sort_by_key(|a| a.condition());
        edges.dedup_by(|a, b| a.condition() == b.condition());

        // Inheritance links.
        let mut inheritance = Vec::new();
        for (child_node, binding) in matcher.match_all(patterns.inheritance_child()) {
            let Some(child_table) = crate::resolve::table_name(graph, child_node, db) else {
                continue;
            };
            let Some(parent_node) = binding.node("p") else {
                continue;
            };
            let Some(parent_table) = crate::resolve::table_name(graph, parent_node, db) else {
                continue;
            };
            let join = edges
                .iter()
                .find(|e| {
                    (e.fk_table.eq_ignore_ascii_case(&child_table)
                        && e.pk_table.eq_ignore_ascii_case(&parent_table))
                        || (e.fk_table.eq_ignore_ascii_case(&parent_table)
                            && e.pk_table.eq_ignore_ascii_case(&child_table))
                })
                .cloned();
            let link = InheritanceLink {
                parent_table,
                child_table,
                join,
            };
            if !inheritance.contains(&link) {
                inheritance.push(link);
            }
        }

        // Historization annotations (only present on graphs built with the
        // annotated warehouse variants).
        let mut historization = Vec::new();
        for (hist_node, binding) in matcher.match_all(patterns.historization()) {
            let Some(hist_table) = crate::resolve::table_name(graph, hist_node, db) else {
                continue;
            };
            let Some(current_node) = binding.node("c") else {
                continue;
            };
            let Some(current_table) = crate::resolve::table_name(graph, current_node, db) else {
                continue;
            };
            let link = HistorizationLink {
                hist_table,
                current_table,
                valid_from_column: binding.text("f").unwrap_or("valid_from").to_string(),
                valid_to_column: binding.text("v").unwrap_or("valid_to").to_string(),
            };
            if !historization.contains(&link) {
                historization.push(link);
            }
        }
        historization.sort_by(|a: &HistorizationLink, b| a.hist_table.cmp(&b.hist_table));

        // Bridge tables: group edges by their FK table.
        let mut by_fk: HashMap<String, Vec<JoinEdge>> = HashMap::new();
        for e in &edges {
            by_fk
                .entry(e.fk_table.to_ascii_lowercase())
                .or_default()
                .push(e.clone());
        }
        let mut bridges = Vec::new();
        for (table, table_edges) in by_fk {
            let distinct_targets: HashSet<String> = table_edges
                .iter()
                .map(|e| e.pk_table.to_ascii_lowercase())
                .collect();
            if table_edges.len() >= 2 && distinct_targets.len() >= 2 {
                bridges.push(BridgeTable {
                    table,
                    edges: table_edges,
                });
            }
        }
        bridges.sort_by(|a, b| a.table.cmp(&b.table));

        let mut catalog = Self {
            edges,
            inheritance,
            bridges,
            historization,
            adjacency: HashMap::new(),
        };
        catalog.rebuild_adjacency();
        catalog
    }

    fn rebuild_adjacency(&mut self) {
        self.adjacency.clear();
        for (i, e) in self.edges.iter().enumerate() {
            self.adjacency
                .entry(e.fk_table.to_ascii_lowercase())
                .or_default()
                .push(i);
            self.adjacency
                .entry(e.pk_table.to_ascii_lowercase())
                .or_default()
                .push(i);
        }
    }

    /// All edges incident to a table.
    pub fn edges_of(&self, table: &str) -> Vec<&JoinEdge> {
        self.adjacency
            .get(&table.to_ascii_lowercase())
            .map(|idxs| idxs.iter().map(|&i| &self.edges[i]).collect())
            .unwrap_or_default()
    }

    /// Shortest join path (sequence of edges) between two tables, treating
    /// edges as undirected.  Returns `None` when the tables are not connected.
    pub fn path(&self, from: &str, to: &str) -> Option<Vec<JoinEdge>> {
        self.path_within(from, to, usize::MAX)
    }

    /// Like [`path`](Self::path) but only considering paths of at most
    /// `max_edges` join conditions.  This is the "far-fetching" control of
    /// §5.3.1: a small bound keeps results precise but may miss joins between
    /// entities that are far apart in the schema graph; a large bound
    /// ("far-fetching") finds them at the cost of more, longer join chains.
    pub fn path_within(&self, from: &str, to: &str, max_edges: usize) -> Option<Vec<JoinEdge>> {
        let from = from.to_ascii_lowercase();
        let to = to.to_ascii_lowercase();
        if from == to {
            return Some(Vec::new());
        }
        if max_edges == 0 {
            return None;
        }
        let mut prev: HashMap<String, (String, usize)> = HashMap::new();
        let mut depth: HashMap<String, usize> = HashMap::new();
        let mut seen: HashSet<String> = HashSet::new();
        let mut queue: VecDeque<String> = VecDeque::new();
        seen.insert(from.clone());
        depth.insert(from.clone(), 0);
        queue.push_back(from.clone());
        while let Some(current) = queue.pop_front() {
            let current_depth = depth.get(&current).copied().unwrap_or(0);
            if current_depth >= max_edges {
                continue;
            }
            let Some(idxs) = self.adjacency.get(&current) else {
                continue;
            };
            for &i in idxs {
                let edge = &self.edges[i];
                let Some(next) = edge.other(&current) else {
                    continue;
                };
                let next = next.to_ascii_lowercase();
                if seen.insert(next.clone()) {
                    prev.insert(next.clone(), (current.clone(), i));
                    depth.insert(next.clone(), current_depth + 1);
                    if next == to {
                        // Reconstruct.
                        let mut path = Vec::new();
                        let mut cursor = to.clone();
                        while let Some((p, idx)) = prev.get(&cursor) {
                            path.push(self.edges[*idx].clone());
                            cursor = p.clone();
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// The inheritance link whose child is `table`, if any.
    pub fn parent_of(&self, table: &str) -> Option<&InheritanceLink> {
        self.inheritance
            .iter()
            .find(|l| l.child_table.eq_ignore_ascii_case(table))
    }

    /// The historization annotation whose *history* table is `table`, if any.
    pub fn historization_of(&self, table: &str) -> Option<&HistorizationLink> {
        self.historization
            .iter()
            .find(|l| l.hist_table.eq_ignore_ascii_case(table))
    }

    /// The historization annotation whose *current* table is `table`, if any
    /// (i.e. the history table that historizes `table`).
    pub fn history_of(&self, table: &str) -> Option<&HistorizationLink> {
        self.historization
            .iter()
            .find(|l| l.current_table.eq_ignore_ascii_case(table))
    }

    /// Bridge tables that connect (at least) the two given tables.
    pub fn bridges_connecting(&self, a: &str, b: &str) -> Vec<&BridgeTable> {
        self.bridges
            .iter()
            .filter(|bridge| {
                let targets = bridge.connects();
                targets.iter().any(|t| t.eq_ignore_ascii_case(a))
                    && targets.iter().any(|t| t.eq_ignore_ascii_case(b))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_metagraph::GraphBuilder;
    use soda_relation::{DataType, TableSchema};

    /// party ← individual / organization (inheritance), individual ←
    /// associate_employment → organization (bridge), agreement → party,
    /// account → agreement (explicit join node).
    fn fixtures() -> (MetaGraph, Database) {
        let mut db = Database::new();
        for (name, cols) in [
            ("party", vec!["party_id"]),
            ("individual", vec!["party_id", "given_name"]),
            ("organization", vec!["party_id", "org_name"]),
            (
                "associate_employment",
                vec!["individual_id", "organization_id"],
            ),
            ("agreement_td", vec!["agreement_id", "party_id"]),
            ("account_td", vec!["account_id", "agreement_id"]),
        ] {
            let mut b = TableSchema::builder(name);
            for c in cols {
                b = b.column(c, DataType::Int);
            }
            db.create_table(b.build()).unwrap();
        }

        let mut b = GraphBuilder::new();
        let mk_table = |b: &mut GraphBuilder, name: &str, cols: &[&str]| {
            let t = b.physical_table(&format!("phys/{name}"), name);
            let col_ids: Vec<_> = cols
                .iter()
                .map(|c| b.physical_column(t, &format!("phys/{name}/{c}"), c))
                .collect();
            (t, col_ids)
        };
        let (party, party_cols) = mk_table(&mut b, "party", &["party_id"]);
        let (individual, ind_cols) = mk_table(&mut b, "individual", &["party_id", "given_name"]);
        let (organization, org_cols) = mk_table(&mut b, "organization", &["party_id", "org_name"]);
        let (_bridge, bridge_cols) = mk_table(
            &mut b,
            "associate_employment",
            &["individual_id", "organization_id"],
        );
        let (_agreement, agr_cols) =
            mk_table(&mut b, "agreement_td", &["agreement_id", "party_id"]);
        let (_account, acc_cols) = mk_table(&mut b, "account_td", &["account_id", "agreement_id"]);

        b.foreign_key(ind_cols[0], party_cols[0]);
        b.foreign_key(org_cols[0], party_cols[0]);
        b.foreign_key(bridge_cols[0], ind_cols[0]);
        b.foreign_key(bridge_cols[1], org_cols[0]);
        b.foreign_key(agr_cols[1], party_cols[0]);
        b.join_relationship("join/account_agreement", acc_cols[1], agr_cols[0]);
        b.inheritance("inh/party", party, &[individual, organization]);
        (b.build(), db)
    }

    #[test]
    fn foreign_key_and_join_node_edges_are_collected() {
        let (g, db) = fixtures();
        let catalog = JoinCatalog::build(&g, &SodaPatterns::default(), &db);
        assert_eq!(catalog.edges.len(), 6);
        assert!(catalog.edges.iter().any(|e| e.explicit_join_node
            && e.fk_table == "account_td"
            && e.pk_table == "agreement_td"));
        assert_eq!(catalog.edges_of("party").len(), 3);
    }

    #[test]
    fn inheritance_links_carry_their_join() {
        let (g, db) = fixtures();
        let catalog = JoinCatalog::build(&g, &SodaPatterns::default(), &db);
        assert_eq!(catalog.inheritance.len(), 2);
        let link = catalog.parent_of("individual").unwrap();
        assert_eq!(link.parent_table, "party");
        assert_eq!(
            link.join.as_ref().unwrap().condition(),
            "individual.party_id = party.party_id"
        );
        assert!(catalog.parent_of("party").is_none());
    }

    #[test]
    fn bridge_between_inheritance_siblings_is_detected() {
        let (g, db) = fixtures();
        let catalog = JoinCatalog::build(&g, &SodaPatterns::default(), &db);
        let bridges = catalog.bridges_connecting("individual", "organization");
        assert_eq!(bridges.len(), 1);
        assert_eq!(bridges[0].table, "associate_employment");
        assert_eq!(bridges[0].connects(), vec!["individual", "organization"]);
        assert!(catalog.bridges_connecting("party", "account_td").is_empty());
    }

    #[test]
    fn historization_annotations_are_collected_when_present() {
        // Paper-faithful graph: no annotations.
        let (g, db) = fixtures();
        let catalog = JoinCatalog::build(&g, &SodaPatterns::default(), &db);
        assert!(catalog.historization.is_empty());
        assert!(catalog.historization_of("individual_name_hist").is_none());

        // Annotated graph: add a history table plus the historization node.
        let mut db = db;
        db.create_table(
            TableSchema::builder("individual_name_hist")
                .column("party_id", DataType::Int)
                .column("valid_from", DataType::Date)
                .column("valid_to", DataType::Date)
                .build(),
        )
        .unwrap();
        let mut b = GraphBuilder::new();
        let individual = b.physical_table("phys/individual", "individual");
        let hist = b.physical_table("phys/individual_name_hist", "individual_name_hist");
        b.physical_column(individual, "phys/individual/party_id", "party_id");
        b.physical_column(hist, "phys/individual_name_hist/party_id", "party_id");
        b.historization(
            "hist/individual_name_hist",
            hist,
            individual,
            "valid_from",
            "valid_to",
        );
        let g = b.build();
        let catalog = JoinCatalog::build(&g, &SodaPatterns::default(), &db);
        assert_eq!(catalog.historization.len(), 1);
        let link = catalog.historization_of("individual_name_hist").unwrap();
        assert_eq!(link.current_table, "individual");
        assert_eq!(link.valid_to_column, "valid_to");
        assert_eq!(
            catalog.history_of("individual").unwrap().hist_table,
            "individual_name_hist"
        );
        assert!(catalog.history_of("individual_name_hist").is_none());
    }

    #[test]
    fn shortest_path_spans_multiple_hops() {
        let (g, db) = fixtures();
        let catalog = JoinCatalog::build(&g, &SodaPatterns::default(), &db);
        let path = catalog.path("account_td", "individual").unwrap();
        // account_td → agreement_td → party → individual.
        assert_eq!(path.len(), 3);
        assert_eq!(path[0].fk_table, "account_td");
        assert!(catalog.path("account_td", "account_td").unwrap().is_empty());
        assert!(catalog.path("account_td", "nonexistent").is_none());
    }

    #[test]
    fn bounded_path_search_respects_the_far_fetching_limit() {
        let (g, db) = fixtures();
        let catalog = JoinCatalog::build(&g, &SodaPatterns::default(), &db);
        // The account_td → individual path needs 3 edges.
        assert!(catalog.path_within("account_td", "individual", 2).is_none());
        assert_eq!(
            catalog
                .path_within("account_td", "individual", 3)
                .unwrap()
                .len(),
            3
        );
        // A generous bound behaves like the unbounded search.
        assert_eq!(
            catalog.path_within("account_td", "individual", 100),
            catalog.path("account_td", "individual")
        );
        // Degenerate bounds.
        assert!(catalog
            .path_within("account_td", "agreement_td", 0)
            .is_none());
        assert!(catalog
            .path_within("account_td", "account_td", 0)
            .unwrap()
            .is_empty());
    }
}
