//! Shard bookkeeping for the partitioned lookup layer.
//!
//! The classification index and the inverted index are partitioned by stable
//! hashes (see [`crate::classification`] and
//! [`soda_relation::ShardedInvertedIndex`]); this module carries the
//! cross-cutting accounting: per-shard probe counters the lookup step bumps
//! on every base-data probe, and the [`ShardStats`] snapshot the serving
//! layer surfaces through its metrics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-shard probe counters, shared by every pipeline run of one engine.
///
/// Lock-free: the lookup step runs on worker threads (and fans out over
/// scoped threads), so the counters are relaxed atomics — totals are exact,
/// momentary cross-shard skew is acceptable for a metrics gauge.
#[derive(Debug)]
pub struct ShardProbes {
    counters: Vec<AtomicU64>,
}

impl ShardProbes {
    /// Creates counters for `shards` partitions (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        Self {
            counters: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of shards tracked.
    pub fn shard_count(&self) -> usize {
        self.counters.len()
    }

    /// Records one probe of `shard` (out-of-range indexes are ignored).
    pub fn record(&self, shard: usize) {
        if let Some(counter) = self.counters.get(shard) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Probe count per shard, in partition order.
    pub fn counts(&self) -> Vec<u64> {
        self.counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total probes across all shards.
    pub fn total(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

/// Per-shard sizes and probe counts of one engine's lookup layer, exposed by
/// [`SodaEngine::shard_stats`](crate::SodaEngine::shard_stats) /
/// [`EngineSnapshot::shard_stats`](crate::EngineSnapshot::shard_stats) and
/// embedded in the serving layer's `ServiceMetrics`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ShardStats {
    /// Number of lookup-layer shards (the `shards` configuration knob).
    pub shards: usize,
    /// Distinct classification phrases per shard.
    pub classification_phrases: Vec<usize>,
    /// Distinct inverted-index tokens per shard (empty when the inverted
    /// index is disabled).
    pub index_tokens: Vec<usize>,
    /// Inverted-index postings per shard (empty when disabled).
    pub index_postings: Vec<usize>,
    /// Base-data probes served per shard since the engine was built.  Probe
    /// counters are shared across derived snapshot generations (a per-shard
    /// rebuild does not reset the other shards' history).
    pub probes: Vec<u64>,
    /// Snapshot generation that last rebuilt each lookup-layer partition
    /// (all zero for an engine that never went through a
    /// [`SnapshotHandle`](crate::SnapshotHandle) swap).
    pub generations: Vec<u64>,
}

impl ShardStats {
    /// Total base-data probes across all shards.
    pub fn total_probes(&self) -> u64 {
        self.probes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_accumulate_per_shard() {
        let probes = ShardProbes::new(3);
        assert_eq!(probes.shard_count(), 3);
        probes.record(0);
        probes.record(2);
        probes.record(2);
        probes.record(99); // out of range: ignored
        assert_eq!(probes.counts(), vec![1, 0, 2]);
        assert_eq!(probes.total(), 3);
    }

    #[test]
    fn zero_shards_clamp_to_one() {
        let probes = ShardProbes::new(0);
        assert_eq!(probes.shard_count(), 1);
        probes.record(0);
        assert_eq!(probes.total(), 1);
    }

    #[test]
    fn stats_total_sums_shards() {
        let stats = ShardStats {
            shards: 2,
            classification_phrases: vec![10, 12],
            index_tokens: vec![5, 7],
            index_postings: vec![100, 90],
            probes: vec![3, 4],
            generations: vec![0, 1],
        };
        assert_eq!(stats.total_probes(), 7);
    }
}
