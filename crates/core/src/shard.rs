//! Shard bookkeeping for the partitioned lookup layer.
//!
//! The classification index and the inverted index are partitioned by stable
//! hashes (see [`crate::classification`] and
//! [`soda_relation::ShardedInvertedIndex`]); this module carries the
//! cross-cutting accounting: per-shard probe counters the lookup step bumps
//! on every base-data probe, and the [`ShardStats`] snapshot the serving
//! layer surfaces through its metrics.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-shard probe counters, shared by every pipeline run of one engine.
///
/// Lock-free: the lookup step runs on worker threads (and fans out over
/// scoped threads), so the counters are relaxed atomics — totals are exact,
/// momentary cross-shard skew is acceptable for a metrics gauge.
#[derive(Debug)]
pub struct ShardProbes {
    counters: Vec<AtomicU64>,
}

impl ShardProbes {
    /// Creates counters for `shards` partitions (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        Self {
            counters: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of shards tracked.
    pub fn shard_count(&self) -> usize {
        self.counters.len()
    }

    /// Records one probe of `shard` (out-of-range indexes are ignored).
    pub fn record(&self, shard: usize) {
        if let Some(counter) = self.counters.get(shard) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Probe count per shard, in partition order.
    pub fn counts(&self) -> Vec<u64> {
        self.counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total probes across all shards.
    pub fn total(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

/// One base-data probe dependency of a served query: the phrase the lookup
/// step probed and the globally-chosen probe token it scanned (`None` when
/// the phrase had no postings anywhere, which is itself a dependency — rows
/// ingested later could give it some).
///
/// Recorded by a [`ProbeRecorder`] and kept with cached result pages: after
/// a data-only snapshot swap, a page provably still answers correctly when
/// every recorded probe still selects the same token and none of the swap's
/// dirty shards holds candidates for it (see
/// [`EngineSnapshot::retains_page`](crate::EngineSnapshot::retains_page)).
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize)]
pub struct ProbeDep {
    /// The probed phrase, as handed to the inverted index.
    pub phrase: String,
    /// The probe token the index selected (normalized), or `None` when the
    /// phrase could not be probed.
    pub token: Option<String>,
}

/// Records what one query's lookup actually consulted in the base data: the
/// shards its probes scanned and the (phrase, token) pair of every probe.
///
/// Thread-safe because the lookup step fans probes out over scoped threads;
/// shards are a relaxed bitmask (counts don't matter, membership does) and
/// the dependency list sits behind a mutex taken once per probed phrase.
/// Shard indexes ≥ 64 set the overflow flag instead — consumers must then
/// treat the query as having touched everything.
#[derive(Debug, Default)]
pub struct ProbeRecorder {
    mask: AtomicU64,
    overflow: AtomicBool,
    deps: Mutex<Vec<ProbeDep>>,
}

impl ProbeRecorder {
    /// A fresh recorder (nothing touched).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `shard` as scanned by a probe.
    pub fn touch(&self, shard: usize) {
        if shard < 64 {
            self.mask.fetch_or(1 << shard, Ordering::Relaxed);
        } else {
            self.overflow.store(true, Ordering::Relaxed);
        }
    }

    /// Records one phrase probe and its selected token (deduplicated by
    /// phrase — the same phrase always selects the same token within one
    /// snapshot).
    pub fn record_probe(&self, phrase: &str, token: Option<String>) {
        let mut deps = self.deps.lock().expect("probe deps poisoned");
        if !deps.iter().any(|d| d.phrase == phrase) {
            deps.push(ProbeDep {
                phrase: phrase.to_string(),
                token,
            });
        }
    }

    /// Bitmask of the shards scanned (bit i = shard i; only meaningful when
    /// [`overflowed`](Self::overflowed) is false).
    pub fn touched_mask(&self) -> u64 {
        self.mask.load(Ordering::Relaxed)
    }

    /// True when a shard index beyond the mask width was touched.
    pub fn overflowed(&self) -> bool {
        self.overflow.load(Ordering::Relaxed)
    }

    /// The recorded probe dependencies.
    pub fn deps(&self) -> Vec<ProbeDep> {
        self.deps.lock().expect("probe deps poisoned").clone()
    }
}

/// Per-shard sizes and probe counts of one engine's lookup layer, exposed by
/// [`SodaEngine::shard_stats`](crate::SodaEngine::shard_stats) /
/// [`EngineSnapshot::shard_stats`](crate::EngineSnapshot::shard_stats) and
/// embedded in the serving layer's `ServiceMetrics`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ShardStats {
    /// Number of lookup-layer shards (the `shards` configuration knob).
    pub shards: usize,
    /// Distinct classification phrases per shard.
    pub classification_phrases: Vec<usize>,
    /// Distinct inverted-index tokens per shard (empty when the inverted
    /// index is disabled).
    pub index_tokens: Vec<usize>,
    /// Inverted-index postings per shard (empty when disabled).
    pub index_postings: Vec<usize>,
    /// Side-log postings per shard — the streaming-ingestion overlay a
    /// compaction folds back into the frozen partition (empty when the
    /// inverted index is disabled, all zero when nothing was ingested).
    pub log_postings: Vec<usize>,
    /// Side-log rows per shard.
    pub log_rows: Vec<usize>,
    /// Masked tables per shard's side log (replaced/truncated tables whose
    /// frozen postings are filtered on every probe until a compaction folds
    /// them — any mask makes the shard due).
    pub log_masks: Vec<usize>,
    /// Base-data probes served per shard since the engine was built.  Probe
    /// counters are shared across derived snapshot generations (a per-shard
    /// rebuild does not reset the other shards' history).
    pub probes: Vec<u64>,
    /// Snapshot generation that last rebuilt each lookup-layer partition
    /// (all zero for an engine that never went through a
    /// [`SnapshotHandle`](crate::SnapshotHandle) swap).
    pub generations: Vec<u64>,
}

impl ShardStats {
    /// Total base-data probes across all shards.
    pub fn total_probes(&self) -> u64 {
        self.probes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_accumulate_per_shard() {
        let probes = ShardProbes::new(3);
        assert_eq!(probes.shard_count(), 3);
        probes.record(0);
        probes.record(2);
        probes.record(2);
        probes.record(99); // out of range: ignored
        assert_eq!(probes.counts(), vec![1, 0, 2]);
        assert_eq!(probes.total(), 3);
    }

    #[test]
    fn zero_shards_clamp_to_one() {
        let probes = ShardProbes::new(0);
        assert_eq!(probes.shard_count(), 1);
        probes.record(0);
        assert_eq!(probes.total(), 1);
    }

    #[test]
    fn stats_total_sums_shards() {
        let stats = ShardStats {
            shards: 2,
            classification_phrases: vec![10, 12],
            index_tokens: vec![5, 7],
            index_postings: vec![100, 90],
            log_postings: vec![0, 8],
            log_rows: vec![0, 2],
            log_masks: vec![0, 1],
            probes: vec![3, 4],
            generations: vec![0, 1],
        };
        assert_eq!(stats.total_probes(), 7);
    }

    #[test]
    fn recorder_tracks_shards_and_deduplicates_phrases() {
        let rec = ProbeRecorder::new();
        rec.touch(0);
        rec.touch(3);
        rec.record_probe("zurich", Some("zurich".into()));
        rec.record_probe("zurich", Some("zurich".into()));
        rec.record_probe("nowhere", None);
        assert_eq!(rec.touched_mask(), 0b1001);
        assert!(!rec.overflowed());
        let deps = rec.deps();
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].token.as_deref(), Some("zurich"));
        assert_eq!(deps[1].token, None);
    }

    #[test]
    fn recorder_overflows_past_the_mask_width() {
        let rec = ProbeRecorder::new();
        rec.touch(64);
        assert!(rec.overflowed());
        assert_eq!(rec.touched_mask(), 0);
    }
}
