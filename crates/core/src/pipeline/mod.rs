//! The five-step SODA pipeline (Figure 4):
//!
//! 1. [`lookup`] — match keywords and operators against the classification
//!    index and the base data, producing sets of candidate entry points.
//! 2. [`rank`] — enumerate the combinatorial product of entry points, score
//!    each combination by the provenance of its entry points and keep the
//!    best N.
//! 3. [`tables`] — traverse the metadata graph from the entry points, test the
//!    Table / Column / Inheritance-Child patterns to discover tables, then
//!    select join conditions on direct paths between the entry points and add
//!    bridge tables.
//! 4. [`filters`] — collect filter conditions from the input query, the base
//!    data hits and the metadata-defined business terms.
//! 5. [`sqlgen`] — combine everything into an executable SQL statement.

pub mod filters;
pub mod lookup;
pub mod rank;
pub mod sqlgen;
pub mod tables;

use soda_metagraph::MetaGraph;
use soda_relation::{Database, ShardedInvertedIndex};
use soda_trace::TraceSink;

use crate::classification::ClassificationIndex;
use crate::config::SodaConfig;
use crate::joins::JoinCatalog;
use crate::patterns::SodaPatterns;
use crate::shard::{ProbeRecorder, ShardProbes};

/// Shared, read-only context handed to every pipeline step.
pub struct PipelineContext<'a> {
    /// The base data.
    pub db: &'a Database,
    /// The metadata graph.
    pub graph: &'a MetaGraph,
    /// Engine configuration.
    pub config: &'a SodaConfig,
    /// Classification index over metadata labels (sharded by phrase hash;
    /// lookups route directly to the owning shard).
    pub classification: &'a ClassificationIndex,
    /// Sharded inverted index over the base data (absent when disabled).
    /// The lookup step fans each term's probe out across
    /// [`shards`](ShardedInvertedIndex::shards).
    pub index: Option<&'a ShardedInvertedIndex>,
    /// Per-shard probe counters, bumped by the lookup step.
    pub probes: &'a ShardProbes,
    /// Optional per-query dependency recorder: when present, the lookup
    /// step reports which shards its base-data probes scanned and which
    /// probe token each phrase selected — what the serving layer needs to
    /// retain cached pages across data-only snapshot swaps.
    pub recorder: Option<&'a ProbeRecorder>,
    /// Where the pipeline reports its spans (stage timings, per-shard probe
    /// sub-spans).  Carried exactly like [`recorder`](Self::recorder); with
    /// [`soda_trace::NoopSink`] every instrumentation site reduces to one
    /// virtual `enabled()` check.
    pub sink: &'a dyn TraceSink,
    /// The metadata-graph patterns.
    pub patterns: &'a SodaPatterns,
    /// The pre-computed join catalog.
    pub joins: &'a JoinCatalog,
}
