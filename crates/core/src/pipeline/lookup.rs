//! Step 1 — Lookup.
//!
//! Keywords are matched with the *longest word combination* strategy of
//! §4.2.2: the longest span of adjacent words that matches either the
//! classification index (metadata labels) or the base data (through the
//! inverted index) becomes one term; unmatched words (such as "and") are
//! dropped.  Each matched term yields a set of candidate entry points — the
//! combinatorial product of those sets is the query complexity reported in
//! Table 4.
//!
//! ## Shard fan-out
//!
//! The inverted index is partitioned by table; each term's base-data probe
//! fans out across the shards (`base_data_hits`) — on scoped threads when
//! the probe token's postings are plentiful enough to amortise the spawns,
//! inline otherwise — and the per-shard results merge in canonical
//! `(table, column, value)` order.  Every shard scans the postings of the
//! *same*, globally chosen probe token, so the merged candidate set (and
//! therefore the generated SQL) is byte-identical for any shard count.

use soda_relation::index::tokenizer::tokenize;
use soda_relation::{merge_hits, AggFunc, CompareOp, PhraseHit, Value};
use soda_trace::{names, SpanId};

use soda_metagraph::NodeId;

use crate::pipeline::PipelineContext;
use crate::provenance::Provenance;
use crate::query::{QueryTerm, SodaQuery};

/// A filter induced by a base-data hit ("Zurich" found in `address.city`).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct BaseDataFilter {
    /// Table containing the hit.
    pub table: String,
    /// Column containing the hit.
    pub column: String,
    /// Either the exact cell value (when all matching rows share one value) or
    /// the searched phrase (then matched with `LIKE`).
    pub value: String,
    /// True when `value` is an exact cell value.
    pub exact: bool,
}

/// One candidate entry point for a term.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct EntryPoint {
    /// The matched phrase.
    pub phrase: String,
    /// The metadata-graph node representing the match (for base-data hits this
    /// is the physical column node).
    #[serde(skip)]
    pub node: NodeId,
    /// Where the match was found.
    pub provenance: Provenance,
    /// The induced filter for base-data hits.
    pub base_filter: Option<BaseDataFilter>,
}

/// What role a matched term plays in the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum TermRole {
    /// An ordinary search keyword.
    Keyword,
    /// The attribute of an aggregation operator.
    AggregationAttribute,
    /// A group-by attribute.
    GroupByAttribute,
}

/// A matched term with all its candidate entry points.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TermMatch {
    /// The matched phrase.
    pub phrase: String,
    /// The term's role.
    pub role: TermRole,
    /// Candidate entry points (alternatives — one is chosen per solution).
    pub candidates: Vec<EntryPoint>,
}

/// A constraint from the input query (comparison / range / like), attached to
/// the keyword phrase preceding it.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Constraint {
    /// The phrase the constraint applies to (`None` when nothing preceded it).
    pub target_phrase: Option<String>,
    /// The constraint itself.
    pub kind: ConstraintKind,
}

/// The kind of input constraint.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub enum ConstraintKind {
    /// A comparison against a literal value.
    Compare {
        /// Operator.
        op: CompareOp,
        /// Literal value.
        value: Value,
    },
    /// An inclusive range.
    Between {
        /// Lower bound.
        low: Value,
        /// Upper bound.
        high: Value,
    },
    /// A `like` pattern.
    Like(String),
    /// A `valid at` date (extension): restrict annotated history tables to
    /// rows whose validity interval contains the date.
    ValidAt(Value),
}

/// An aggregation requested by the query.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Aggregation {
    /// Aggregate function.
    pub func: AggFunc,
    /// The aggregated attribute phrase (`None` for a bare `count()`).
    pub attribute: Option<String>,
}

/// The outcome of the lookup step.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct LookupResult {
    /// Matched terms with their candidate entry points.
    pub matches: Vec<TermMatch>,
    /// Words that could not be matched anywhere.
    pub unmatched: Vec<String>,
    /// Constraints from the input query.
    pub constraints: Vec<Constraint>,
    /// Aggregations requested by the query.
    pub aggregations: Vec<Aggregation>,
    /// Group-by attribute phrases.
    pub group_by: Vec<String>,
    /// `top N` limit.
    pub top_n: Option<usize>,
}

impl LookupResult {
    /// The query complexity of Table 4: the size of the combinatorial product
    /// of all candidate sets.
    pub fn complexity(&self) -> usize {
        self.matches
            .iter()
            .map(|m| m.candidates.len().max(1))
            .product()
    }
}

/// Runs the lookup step.  `span` is the enclosing `lookup` trace span (or
/// [`SpanId::NONE`]): each phrase's base-data probe reports a `probe` span
/// under it, with one `probe_shard` sub-span per scanned shard.
pub fn run(ctx: &PipelineContext<'_>, query: &SodaQuery, span: SpanId) -> LookupResult {
    let mut result = LookupResult::default();
    let mut last_phrase: Option<String> = None;

    for term in &query.terms {
        match term {
            QueryTerm::Keywords(group) => {
                let (matches, unmatched) = segment(ctx, group, TermRole::Keyword, span);
                if let Some(m) = matches.last() {
                    last_phrase = Some(m.phrase.clone());
                }
                result.matches.extend(matches);
                result.unmatched.extend(unmatched);
            }
            QueryTerm::Comparison { op, value } => {
                result.constraints.push(Constraint {
                    target_phrase: last_phrase.clone(),
                    kind: ConstraintKind::Compare {
                        op: *op,
                        value: value.to_value(),
                    },
                });
            }
            QueryTerm::Between { low, high } => {
                result.constraints.push(Constraint {
                    target_phrase: last_phrase.clone(),
                    kind: ConstraintKind::Between {
                        low: low.to_value(),
                        high: high.to_value(),
                    },
                });
            }
            QueryTerm::Like(pattern) => {
                result.constraints.push(Constraint {
                    target_phrase: last_phrase.clone(),
                    kind: ConstraintKind::Like(pattern.clone()),
                });
            }
            QueryTerm::Aggregation { func, attribute } => {
                if attribute.trim().is_empty() {
                    result.aggregations.push(Aggregation {
                        func: *func,
                        attribute: None,
                    });
                } else {
                    let (matches, unmatched) =
                        segment(ctx, attribute, TermRole::AggregationAttribute, span);
                    let phrase = matches
                        .first()
                        .map(|m| m.phrase.clone())
                        .unwrap_or_else(|| attribute.clone());
                    result.matches.extend(matches);
                    result.unmatched.extend(unmatched);
                    result.aggregations.push(Aggregation {
                        func: *func,
                        attribute: Some(phrase),
                    });
                }
            }
            QueryTerm::GroupBy(attrs) => {
                for attr in attrs {
                    let (matches, unmatched) = segment(ctx, attr, TermRole::GroupByAttribute, span);
                    let phrase = matches
                        .first()
                        .map(|m| m.phrase.clone())
                        .unwrap_or_else(|| attr.clone());
                    result.matches.extend(matches);
                    result.unmatched.extend(unmatched);
                    result.group_by.push(phrase);
                }
            }
            QueryTerm::TopN(n) => result.top_n = Some(*n),
            QueryTerm::ValidAt(value) => {
                result.constraints.push(Constraint {
                    target_phrase: None,
                    kind: ConstraintKind::ValidAt(value.to_value()),
                });
            }
        }
    }
    result
}

/// Longest-word-combination segmentation of one keyword group.
fn segment(
    ctx: &PipelineContext<'_>,
    group: &str,
    role: TermRole,
    trace_span: SpanId,
) -> (Vec<TermMatch>, Vec<String>) {
    let tokens = tokenize(group);
    let mut matches = Vec::new();
    let mut unmatched = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let max_span = ctx.config.max_phrase_tokens.min(tokens.len() - i);
        let mut matched = false;
        for span in (1..=max_span).rev() {
            let phrase = tokens[i..i + span].join(" ");
            let candidates = candidates_for(ctx, &phrase, trace_span);
            if !candidates.is_empty() {
                matches.push(TermMatch {
                    phrase,
                    role,
                    candidates,
                });
                i += span;
                matched = true;
                break;
            }
        }
        if !matched {
            unmatched.push(tokens[i].clone());
            i += 1;
        }
    }
    (matches, unmatched)
}

/// Minimum number of candidate postings (of the probe token, across all
/// shards) before the per-shard probes fan out on scoped threads.  Below
/// this, thread-spawn overhead dwarfs the scan and the shards are probed
/// inline on the caller's thread; either way the merged result is identical.
const PARALLEL_PROBE_MIN_POSTINGS: usize = 512;

/// Minimum candidate postings a single shard must hold to earn its own
/// helper thread during fan-out; shards below this ride along on the
/// caller's thread, whose scan of the largest shard bounds the critical path
/// anyway.
const PARALLEL_PROBE_MIN_SHARD_POSTINGS: usize = 256;

/// Cached `available_parallelism`: on a single-core host helper threads can
/// only serialize behind the caller plus spawn overhead, so fan-out is
/// skipped entirely; on an N-core host at most N-1 helpers are spawned.
fn probe_parallelism() -> usize {
    static PARALLELISM: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *PARALLELISM.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Permits taken from the process-global [`crate::budget::ProbeBudget`] for
/// one fan-out, returned on drop so a panicking probe can't leak them.
struct ProbePermits {
    granted: usize,
}

impl ProbePermits {
    fn acquire(wanted: usize) -> Self {
        ProbePermits {
            granted: crate::budget::ProbeBudget::global().try_acquire(wanted),
        }
    }

    fn none() -> Self {
        ProbePermits { granted: 0 }
    }
}

impl Drop for ProbePermits {
    fn drop(&mut self) {
        crate::budget::ProbeBudget::global().release(self.granted);
    }
}

/// Probes the base data for a phrase: one probe per inverted-index shard
/// holding candidates, fanned out on scoped threads for heavy probes and
/// merged canonically.
///
/// Fan-out spawns threads only for the shards where the probe token actually
/// has postings, and the calling thread scans the *largest* such shard
/// itself while the helpers run — the largest shard bounds the critical path
/// anyway, so its scan absorbs the spawn latency of the others.  Shard
/// partitioning is by table, so result merging is a plain canonical sort
/// ([`merge_hits`]) regardless of which thread produced what.
fn base_data_hits(ctx: &PipelineContext<'_>, phrase: &str, trace_span: SpanId) -> Vec<PhraseHit> {
    let Some(index) = ctx.index else {
        return Vec::new();
    };
    let probe = index.probe(phrase);
    if let Some(recorder) = ctx.recorder {
        // Probing is a dependency even when it misses: ingested rows could
        // give a postings-free phrase candidates later, so a cached page is
        // only reusable while the probe outcome is provably unchanged.
        recorder.record_probe(phrase, probe.as_ref().map(|p| p.token.clone()));
    }
    let Some(probe) = probe else {
        return Vec::new();
    };
    let enabled = ctx.sink.enabled();
    let probe_span = if enabled {
        let span = ctx.sink.begin_span(names::PROBE, trace_span);
        ctx.sink.annotate(span, "phrase", phrase.into());
        ctx.sink.annotate(span, "token", probe.token.clone().into());
        span
    } else {
        SpanId::NONE
    };
    // Shards with candidate postings (frozen + side log) for the probe
    // token, largest first; the probe counters track which shards carried
    // real scan work.
    let mut busy: Vec<(usize, usize)> = (0..index.shard_count())
        .filter_map(|i| {
            let candidates = index.shard_candidates(i, &probe);
            (candidates > 0).then_some((i, candidates))
        })
        .collect();
    busy.sort_by_key(|&(i, candidates)| (std::cmp::Reverse(candidates), i));
    for &(i, _) in &busy {
        ctx.probes.record(i);
        if let Some(recorder) = ctx.recorder {
            recorder.touch(i);
        }
    }
    let total_candidates: usize = busy.iter().map(|&(_, n)| n).sum();
    if enabled {
        ctx.sink
            .annotate(probe_span, "candidates", total_candidates.into());
    }
    // One shard's scan, wrapped in a `probe_shard` span when tracing: the
    // span carries the shard id and splits its candidates into frozen-index
    // vs. side-log postings, so a trace shows whether scan work came from
    // the built partition or from not-yet-compacted streaming ingests.
    // Captures only shared references, so it is `Copy` and can be handed to
    // every helper thread of the fan-out below.
    let probe_ref = &probe;
    let probe_one = move |i: usize| -> Vec<PhraseHit> {
        if !enabled {
            return index.probe_shard(i, ctx.db, probe_ref);
        }
        let span = ctx.sink.begin_span(names::PROBE_SHARD, probe_span);
        ctx.sink.annotate(span, "shard", i.into());
        let (frozen, log) = index.shard_candidate_split(i, probe_ref);
        ctx.sink.annotate(span, "frozen_candidates", frozen.into());
        ctx.sink.annotate(span, "log_candidates", log.into());
        let hits = index.probe_shard(i, ctx.db, probe_ref);
        ctx.sink.annotate(span, "hits", hits.len().into());
        ctx.sink.end_span(span);
        hits
    };
    // Helper threads are only worth their spawn cost for shards with a
    // substantial scan, and only up to the host's spare cores; the caller
    // keeps the largest shard (which bounds the critical path regardless)
    // plus every below-threshold or over-core straggler.  Each helper also
    // needs a permit from the process-global probe budget, so concurrent
    // probes — from many service workers or many tenants — never
    // oversubscribe the cores between them; a depleted budget degrades the
    // probe to an inline scan with an identical merged result.
    let mut helpers: Vec<usize> = busy
        .iter()
        .skip(1)
        .filter(|&&(_, n)| n >= PARALLEL_PROBE_MIN_SHARD_POSTINGS)
        .map(|&(i, _)| i)
        .take(probe_parallelism().saturating_sub(1))
        .collect();
    let heavy = total_candidates >= PARALLEL_PROBE_MIN_POSTINGS;
    let permits = if heavy && !helpers.is_empty() {
        ProbePermits::acquire(helpers.len())
    } else {
        ProbePermits::none()
    };
    helpers.truncate(permits.granted);
    let per_shard: Vec<Vec<PhraseHit>> = if !helpers.is_empty() {
        std::thread::scope(|scope| {
            let handles: Vec<_> = helpers
                .iter()
                .map(|&i| scope.spawn(move || probe_one(i)))
                .collect();
            let mut results: Vec<Vec<PhraseHit>> = busy
                .iter()
                .filter(|&&(i, _)| !helpers.contains(&i))
                .map(|&(i, _)| probe_one(i))
                .collect();
            results.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard probe thread panicked")),
            );
            results
        })
    } else {
        busy.iter().map(|&(i, _)| probe_one(i)).collect()
    };
    drop(permits);
    let merged = merge_hits(per_shard);
    if enabled {
        ctx.sink.annotate(probe_span, "hits", merged.len().into());
        ctx.sink.end_span(probe_span);
    }
    merged
}

/// All candidate entry points for a phrase: metadata labels plus base data.
fn candidates_for(ctx: &PipelineContext<'_>, phrase: &str, trace_span: SpanId) -> Vec<EntryPoint> {
    let mut out: Vec<EntryPoint> = ctx
        .classification
        .lookup(phrase)
        .iter()
        .map(|e| EntryPoint {
            phrase: phrase.to_string(),
            node: e.node,
            provenance: e.provenance,
            base_filter: None,
        })
        .collect();

    if ctx.index.is_some() {
        let hits = base_data_hits(ctx, phrase, trace_span);
        // Group hits per column; a column with a single distinct value gets an
        // equality filter on that value, otherwise a LIKE on the phrase.
        let mut per_column: Vec<(String, String, Vec<String>)> = Vec::new();
        for hit in hits {
            match per_column
                .iter_mut()
                .find(|(t, c, _)| *t == hit.table && *c == hit.column)
            {
                Some((_, _, values)) => values.push(hit.value),
                None => per_column.push((hit.table, hit.column, vec![hit.value])),
            }
        }
        for (table, column, values) in per_column {
            let Some(node) = ctx.graph.node(&format!("phys/{table}/{column}")) else {
                continue;
            };
            let exact = values.len() == 1;
            out.push(EntryPoint {
                phrase: phrase.to_string(),
                node,
                provenance: Provenance::BaseData,
                base_filter: Some(BaseDataFilter {
                    table,
                    column,
                    value: if exact {
                        values.into_iter().next().expect("one value")
                    } else {
                        phrase.to_string()
                    },
                    exact,
                }),
            });
        }
    }
    out
}
