//! Step 1 — Lookup.
//!
//! Keywords are matched with the *longest word combination* strategy of
//! §4.2.2: the longest span of adjacent words that matches either the
//! classification index (metadata labels) or the base data (through the
//! inverted index) becomes one term; unmatched words (such as "and") are
//! dropped.  Each matched term yields a set of candidate entry points — the
//! combinatorial product of those sets is the query complexity reported in
//! Table 4.

use soda_relation::index::tokenizer::tokenize;
use soda_relation::{AggFunc, CompareOp, Value};

use soda_metagraph::NodeId;

use crate::pipeline::PipelineContext;
use crate::provenance::Provenance;
use crate::query::{QueryTerm, SodaQuery};

/// A filter induced by a base-data hit ("Zurich" found in `address.city`).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct BaseDataFilter {
    /// Table containing the hit.
    pub table: String,
    /// Column containing the hit.
    pub column: String,
    /// Either the exact cell value (when all matching rows share one value) or
    /// the searched phrase (then matched with `LIKE`).
    pub value: String,
    /// True when `value` is an exact cell value.
    pub exact: bool,
}

/// One candidate entry point for a term.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct EntryPoint {
    /// The matched phrase.
    pub phrase: String,
    /// The metadata-graph node representing the match (for base-data hits this
    /// is the physical column node).
    #[serde(skip)]
    pub node: NodeId,
    /// Where the match was found.
    pub provenance: Provenance,
    /// The induced filter for base-data hits.
    pub base_filter: Option<BaseDataFilter>,
}

/// What role a matched term plays in the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum TermRole {
    /// An ordinary search keyword.
    Keyword,
    /// The attribute of an aggregation operator.
    AggregationAttribute,
    /// A group-by attribute.
    GroupByAttribute,
}

/// A matched term with all its candidate entry points.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TermMatch {
    /// The matched phrase.
    pub phrase: String,
    /// The term's role.
    pub role: TermRole,
    /// Candidate entry points (alternatives — one is chosen per solution).
    pub candidates: Vec<EntryPoint>,
}

/// A constraint from the input query (comparison / range / like), attached to
/// the keyword phrase preceding it.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Constraint {
    /// The phrase the constraint applies to (`None` when nothing preceded it).
    pub target_phrase: Option<String>,
    /// The constraint itself.
    pub kind: ConstraintKind,
}

/// The kind of input constraint.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub enum ConstraintKind {
    /// A comparison against a literal value.
    Compare {
        /// Operator.
        op: CompareOp,
        /// Literal value.
        value: Value,
    },
    /// An inclusive range.
    Between {
        /// Lower bound.
        low: Value,
        /// Upper bound.
        high: Value,
    },
    /// A `like` pattern.
    Like(String),
    /// A `valid at` date (extension): restrict annotated history tables to
    /// rows whose validity interval contains the date.
    ValidAt(Value),
}

/// An aggregation requested by the query.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Aggregation {
    /// Aggregate function.
    pub func: AggFunc,
    /// The aggregated attribute phrase (`None` for a bare `count()`).
    pub attribute: Option<String>,
}

/// The outcome of the lookup step.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct LookupResult {
    /// Matched terms with their candidate entry points.
    pub matches: Vec<TermMatch>,
    /// Words that could not be matched anywhere.
    pub unmatched: Vec<String>,
    /// Constraints from the input query.
    pub constraints: Vec<Constraint>,
    /// Aggregations requested by the query.
    pub aggregations: Vec<Aggregation>,
    /// Group-by attribute phrases.
    pub group_by: Vec<String>,
    /// `top N` limit.
    pub top_n: Option<usize>,
}

impl LookupResult {
    /// The query complexity of Table 4: the size of the combinatorial product
    /// of all candidate sets.
    pub fn complexity(&self) -> usize {
        self.matches
            .iter()
            .map(|m| m.candidates.len().max(1))
            .product()
    }
}

/// Runs the lookup step.
pub fn run(ctx: &PipelineContext<'_>, query: &SodaQuery) -> LookupResult {
    let mut result = LookupResult::default();
    let mut last_phrase: Option<String> = None;

    for term in &query.terms {
        match term {
            QueryTerm::Keywords(group) => {
                let (matches, unmatched) = segment(ctx, group, TermRole::Keyword);
                if let Some(m) = matches.last() {
                    last_phrase = Some(m.phrase.clone());
                }
                result.matches.extend(matches);
                result.unmatched.extend(unmatched);
            }
            QueryTerm::Comparison { op, value } => {
                result.constraints.push(Constraint {
                    target_phrase: last_phrase.clone(),
                    kind: ConstraintKind::Compare {
                        op: *op,
                        value: value.to_value(),
                    },
                });
            }
            QueryTerm::Between { low, high } => {
                result.constraints.push(Constraint {
                    target_phrase: last_phrase.clone(),
                    kind: ConstraintKind::Between {
                        low: low.to_value(),
                        high: high.to_value(),
                    },
                });
            }
            QueryTerm::Like(pattern) => {
                result.constraints.push(Constraint {
                    target_phrase: last_phrase.clone(),
                    kind: ConstraintKind::Like(pattern.clone()),
                });
            }
            QueryTerm::Aggregation { func, attribute } => {
                if attribute.trim().is_empty() {
                    result.aggregations.push(Aggregation {
                        func: *func,
                        attribute: None,
                    });
                } else {
                    let (matches, unmatched) =
                        segment(ctx, attribute, TermRole::AggregationAttribute);
                    let phrase = matches
                        .first()
                        .map(|m| m.phrase.clone())
                        .unwrap_or_else(|| attribute.clone());
                    result.matches.extend(matches);
                    result.unmatched.extend(unmatched);
                    result.aggregations.push(Aggregation {
                        func: *func,
                        attribute: Some(phrase),
                    });
                }
            }
            QueryTerm::GroupBy(attrs) => {
                for attr in attrs {
                    let (matches, unmatched) = segment(ctx, attr, TermRole::GroupByAttribute);
                    let phrase = matches
                        .first()
                        .map(|m| m.phrase.clone())
                        .unwrap_or_else(|| attr.clone());
                    result.matches.extend(matches);
                    result.unmatched.extend(unmatched);
                    result.group_by.push(phrase);
                }
            }
            QueryTerm::TopN(n) => result.top_n = Some(*n),
            QueryTerm::ValidAt(value) => {
                result.constraints.push(Constraint {
                    target_phrase: None,
                    kind: ConstraintKind::ValidAt(value.to_value()),
                });
            }
        }
    }
    result
}

/// Longest-word-combination segmentation of one keyword group.
fn segment(
    ctx: &PipelineContext<'_>,
    group: &str,
    role: TermRole,
) -> (Vec<TermMatch>, Vec<String>) {
    let tokens = tokenize(group);
    let mut matches = Vec::new();
    let mut unmatched = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let max_span = ctx.config.max_phrase_tokens.min(tokens.len() - i);
        let mut matched = false;
        for span in (1..=max_span).rev() {
            let phrase = tokens[i..i + span].join(" ");
            let candidates = candidates_for(ctx, &phrase);
            if !candidates.is_empty() {
                matches.push(TermMatch {
                    phrase,
                    role,
                    candidates,
                });
                i += span;
                matched = true;
                break;
            }
        }
        if !matched {
            unmatched.push(tokens[i].clone());
            i += 1;
        }
    }
    (matches, unmatched)
}

/// All candidate entry points for a phrase: metadata labels plus base data.
fn candidates_for(ctx: &PipelineContext<'_>, phrase: &str) -> Vec<EntryPoint> {
    let mut out: Vec<EntryPoint> = ctx
        .classification
        .lookup(phrase)
        .iter()
        .map(|e| EntryPoint {
            phrase: phrase.to_string(),
            node: e.node,
            provenance: e.provenance,
            base_filter: None,
        })
        .collect();

    if let Some(index) = ctx.index {
        let hits = index.lookup_phrase(ctx.db, phrase);
        // Group hits per column; a column with a single distinct value gets an
        // equality filter on that value, otherwise a LIKE on the phrase.
        let mut per_column: Vec<(String, String, Vec<String>)> = Vec::new();
        for hit in hits {
            match per_column
                .iter_mut()
                .find(|(t, c, _)| *t == hit.table && *c == hit.column)
            {
                Some((_, _, values)) => values.push(hit.value),
                None => per_column.push((hit.table, hit.column, vec![hit.value])),
            }
        }
        for (table, column, values) in per_column {
            let Some(node) = ctx.graph.node(&format!("phys/{table}/{column}")) else {
                continue;
            };
            let exact = values.len() == 1;
            out.push(EntryPoint {
                phrase: phrase.to_string(),
                node,
                provenance: Provenance::BaseData,
                base_filter: Some(BaseDataFilter {
                    table,
                    column,
                    value: if exact {
                        values.into_iter().next().expect("one value")
                    } else {
                        phrase.to_string()
                    },
                    exact,
                }),
            });
        }
    }
    out
}
