//! Step 3 — Tables and joins.
//!
//! Starting from every entry point of a solution, the metadata graph is
//! traversed along its layering edges (ontology → conceptual → logical →
//! physical), testing the Table, Column and Inheritance-Child patterns at
//! every visited node to discover the participating tables.  Join conditions
//! are then selected from the join catalog so that they lie on a direct path
//! between the entry-point tables (Figure 9), inheritance parents are added so
//! the generated SQL is correct, and bridge tables connecting two entry-point
//! tables contribute additional join conditions (§4.2.1, "Bridge Tables in
//! Large Schemas").

use std::collections::{BTreeSet, HashSet, VecDeque};

use soda_metagraph::{Matcher, NodeId};

use crate::joins::JoinEdge;
use crate::pipeline::lookup::{BaseDataFilter, TermRole};
use crate::pipeline::rank::Solution;
use crate::pipeline::PipelineContext;
use crate::provenance::Provenance;
use crate::resolve::{column_name, table_name};

/// Predicates the tables-step traversal is allowed to follow: the metadata
/// layering edges of Figure 3.  Foreign keys, inheritance and join nodes are
/// handled through the join catalog instead, and `type` edges would connect
/// everything to everything.
const FOLLOWED_PREDICATES: &[&str] = &[
    "classifies",
    "synonym_of",
    "refined_by",
    "implemented_by",
    "realized_by",
    "attribute",
    "broader",
];

/// The anchor derived from one entry point.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct EntryAnchor {
    /// The matched phrase.
    pub phrase: String,
    /// The term role (keyword, aggregation attribute, group-by attribute).
    pub role: TermRole,
    /// Where the entry point was found.
    pub provenance: Provenance,
    /// The primary table reached from this entry point.
    pub table: Option<String>,
    /// The focus column reached from this entry point (for attributes,
    /// base-data hits and ontology concepts classifying a column).
    pub column: Option<(String, String)>,
    /// All tables discovered from this entry point.
    pub discovered: Vec<String>,
    /// Base-data filter carried over from the lookup step.
    pub base_filter: Option<BaseDataFilter>,
    /// The originating graph node.
    #[serde(skip)]
    pub node: Option<NodeId>,
}

/// The outcome of the tables step for one solution.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct TablePlan {
    /// Per-entry anchors.
    pub anchors: Vec<EntryAnchor>,
    /// All tables participating in the generated SQL.
    pub tables: BTreeSet<String>,
    /// Join conditions.
    pub joins: Vec<JoinEdge>,
    /// Bridge tables that contributed joins.
    pub used_bridges: Vec<String>,
    /// Inheritance parent tables that were added.
    pub added_parents: Vec<String>,
    /// History tables whose current-state table was added through a
    /// historization annotation (extension; empty on paper-faithful graphs).
    pub added_history_expansions: Vec<String>,
    /// True when every pair of entry-point tables could be connected.
    pub join_path_complete: bool,
}

/// Runs the tables step for one solution.
pub fn run(ctx: &PipelineContext<'_>, solution: &Solution) -> TablePlan {
    let mut plan = TablePlan {
        join_path_complete: true,
        ..TablePlan::default()
    };

    // --- discover anchors ----------------------------------------------------
    for (entry, role) in solution.entries.iter().zip(&solution.roles) {
        let mut anchor = EntryAnchor {
            phrase: entry.phrase.clone(),
            role: *role,
            provenance: entry.provenance,
            table: None,
            column: None,
            discovered: Vec::new(),
            base_filter: entry.base_filter.clone(),
            node: Some(entry.node),
        };
        if let Some(filter) = &entry.base_filter {
            anchor.table = Some(filter.table.clone());
            anchor.column = Some((filter.table.clone(), filter.column.clone()));
            anchor.discovered.push(filter.table.clone());
        } else {
            traverse_entry(ctx, entry.node, &mut anchor);
        }
        for t in &anchor.discovered {
            plan.tables.insert(t.clone());
        }
        plan.anchors.push(anchor);
    }

    // --- join selection -------------------------------------------------------
    let anchor_tables: Vec<String> = plan
        .anchors
        .iter()
        .filter_map(|a| a.table.clone())
        .collect();

    if ctx.config.direct_path_pruning {
        for i in 0..anchor_tables.len() {
            for j in (i + 1)..anchor_tables.len() {
                let (a, b) = (&anchor_tables[i], &anchor_tables[j]);
                if a.eq_ignore_ascii_case(b) {
                    continue;
                }
                match ctx.joins.path_within(a, b, ctx.config.max_join_path_length) {
                    Some(path) => {
                        for edge in path {
                            plan.tables.insert(edge.fk_table.clone());
                            plan.tables.insert(edge.pk_table.clone());
                            push_unique(&mut plan.joins, edge);
                        }
                    }
                    None => plan.join_path_complete = false,
                }
            }
        }
    } else {
        // Ablation: take every join condition between any two discovered tables.
        for table in plan.tables.clone() {
            for edge in ctx.joins.edges_of(&table) {
                let other = edge.other(&table).unwrap_or_default().to_string();
                if plan.tables.iter().any(|t| t.eq_ignore_ascii_case(&other)) {
                    push_unique(&mut plan.joins, edge.clone());
                }
            }
        }
    }

    // --- historization expansion (extension) -----------------------------------
    // When the metadata graph carries historization annotations, a plan that
    // enters through a history table is extended with the table holding the
    // current state, so the result carries the full entity context (and, via
    // the inheritance handling below, its super-type).  Paper-faithful graphs
    // have no annotations, so this is a no-op there.
    if ctx.config.use_historization {
        for table in plan.tables.clone() {
            let Some(link) = ctx.joins.historization_of(&table) else {
                continue;
            };
            let current = link.current_table.clone();
            // Only expand when the annotated join relationship actually exists
            // in the catalog — adding the table without a join condition would
            // turn the result into a cross product.
            let connecting: Vec<JoinEdge> = ctx
                .joins
                .edges_of(&table)
                .into_iter()
                .filter(|edge| {
                    edge.other(&table)
                        .is_some_and(|o| o.eq_ignore_ascii_case(&current))
                })
                .cloned()
                .collect();
            if connecting.is_empty() {
                continue;
            }
            if !plan.tables.iter().any(|t| t.eq_ignore_ascii_case(&current)) {
                plan.tables.insert(current.clone());
                plan.added_history_expansions.push(table.clone());
            }
            for edge in connecting {
                push_unique(&mut plan.joins, edge);
            }
        }
    }

    // --- inheritance parents --------------------------------------------------
    for table in plan.tables.clone() {
        if let Some(link) = ctx.joins.parent_of(&table) {
            if !plan
                .tables
                .iter()
                .any(|t| t.eq_ignore_ascii_case(&link.parent_table))
            {
                plan.tables.insert(link.parent_table.clone());
                plan.added_parents.push(link.parent_table.clone());
            }
            if let Some(join) = &link.join {
                push_unique(&mut plan.joins, join.clone());
            }
        }
    }

    // --- bridge tables ----------------------------------------------------------
    if ctx.config.use_bridge_tables {
        for i in 0..anchor_tables.len() {
            for j in (i + 1)..anchor_tables.len() {
                let (a, b) = (&anchor_tables[i], &anchor_tables[j]);
                if a.eq_ignore_ascii_case(b) {
                    continue;
                }
                for bridge in ctx.joins.bridges_connecting(a, b) {
                    plan.tables.insert(bridge.table.clone());
                    if !plan.used_bridges.contains(&bridge.table) {
                        plan.used_bridges.push(bridge.table.clone());
                    }
                    for edge in &bridge.edges {
                        if edge.pk_table.eq_ignore_ascii_case(a)
                            || edge.pk_table.eq_ignore_ascii_case(b)
                        {
                            push_unique(&mut plan.joins, edge.clone());
                        }
                    }
                }
            }
        }
    }

    // --- connectivity clean-up --------------------------------------------------
    // Tables that ended up without any join to the rest (and are not anchors)
    // would force a cross product in the executor; connect them if possible,
    // otherwise drop them.
    let anchor_set: HashSet<String> = anchor_tables
        .iter()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if plan.tables.len() > 1 {
        let connected: HashSet<String> = plan
            .joins
            .iter()
            .flat_map(|j| {
                [
                    j.fk_table.to_ascii_lowercase(),
                    j.pk_table.to_ascii_lowercase(),
                ]
            })
            .collect();
        let reference = anchor_tables
            .first()
            .cloned()
            .or_else(|| plan.tables.iter().next().cloned());
        for table in plan.tables.clone() {
            let key = table.to_ascii_lowercase();
            if connected.contains(&key) {
                continue;
            }
            let mut linked = false;
            if let Some(reference) = &reference {
                if !reference.eq_ignore_ascii_case(&table) {
                    if let Some(path) =
                        ctx.joins
                            .path_within(&table, reference, ctx.config.max_join_path_length)
                    {
                        for edge in path {
                            plan.tables.insert(edge.fk_table.clone());
                            plan.tables.insert(edge.pk_table.clone());
                            push_unique(&mut plan.joins, edge);
                        }
                        linked = true;
                    }
                }
            }
            if !linked && !anchor_set.contains(&key) && plan.tables.len() > 1 {
                plan.tables.remove(&table);
            }
        }
    }

    plan
}

fn push_unique(joins: &mut Vec<JoinEdge>, edge: JoinEdge) {
    if !joins.iter().any(|e| e.condition() == edge.condition()) {
        joins.push(edge);
    }
}

/// Breadth-first traversal along the metadata layering edges, testing the
/// Table, Column and Inheritance-Child patterns at every visited node.
fn traverse_entry(ctx: &PipelineContext<'_>, start: NodeId, anchor: &mut EntryAnchor) {
    let matcher = Matcher::new(ctx.graph, ctx.patterns.registry());
    let followed: Vec<_> = FOLLOWED_PREDICATES
        .iter()
        .filter_map(|p| ctx.graph.find_predicate(p))
        .collect();

    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
    seen.insert(start);
    queue.push_back((start, 0));

    while let Some((node, depth)) = queue.pop_front() {
        // Column pattern (tested before the Table pattern so that an attribute
        // entry point keeps its column focus).
        if anchor.column.is_none() && matcher.matches(ctx.patterns.column(), node) {
            if let Some((table, column)) = column_name(ctx.graph, node, ctx.db) {
                if anchor.table.is_none() {
                    anchor.table = Some(table.clone());
                }
                if !anchor.discovered.contains(&table) {
                    anchor.discovered.push(table.clone());
                }
                anchor.column = Some((table, column));
            }
        }
        // Table pattern.
        if matcher.matches(ctx.patterns.table(), node) {
            if let Some(table) = table_name(ctx.graph, node, ctx.db) {
                if anchor.table.is_none() {
                    anchor.table = Some(table.clone());
                }
                if !anchor.discovered.contains(&table) {
                    anchor.discovered.push(table);
                }
            }
        }

        if depth >= ctx.config.traversal_depth {
            continue;
        }
        for (pred, obj) in ctx.graph.outgoing(node) {
            if !followed.contains(pred) {
                continue;
            }
            if let Some(next) = obj.as_node() {
                if seen.insert(next) {
                    queue.push_back((next, depth + 1));
                }
            }
        }
    }
}
