//! Step 2 — Rank and top N.
//!
//! Every combination of entry points (one candidate per matched term) is a
//! potential interpretation of the query.  Each combination is scored by the
//! provenance of its entry points — domain-ontology hits rank above schema
//! hits, which rank above base-data and DBpedia hits — and only the best N
//! continue into the expensive table/join discovery.

use crate::config::RankingWeights;
use crate::pipeline::lookup::{EntryPoint, LookupResult, TermMatch, TermRole};

/// One interpretation of the query: exactly one entry point per matched term.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Solution {
    /// Chosen entry point per term (same order as the lookup matches).
    pub entries: Vec<EntryPoint>,
    /// Roles of the corresponding terms.
    pub roles: Vec<TermRole>,
    /// Ranking score (average provenance weight).
    pub score: f64,
}

impl Solution {
    /// The entry point matching a phrase, if any.
    pub fn entry_for(&self, phrase: &str) -> Option<&EntryPoint> {
        self.entries.iter().find(|e| e.phrase == phrase)
    }
}

/// Enumerates the combinatorial product of candidate entry points (capped at
/// `cap` combinations), scores each combination and returns the best `top_n`
/// in descending score order.
pub fn enumerate_and_rank(
    lookup: &LookupResult,
    weights: &RankingWeights,
    top_n: usize,
    cap: usize,
) -> Vec<Solution> {
    enumerate_and_rank_boosted(lookup, weights, top_n, cap, |_| 0.0)
}

/// Like [`enumerate_and_rank`] but with a per-entry-point score boost on top
/// of the provenance weight.  The boost is how relevance feedback
/// ([`crate::FeedbackStore`]) is folded into Step 2 without changing the
/// algorithm: liked interpretation choices gain score, disliked ones lose it.
pub fn enumerate_and_rank_boosted(
    lookup: &LookupResult,
    weights: &RankingWeights,
    top_n: usize,
    cap: usize,
    boost: impl Fn(&EntryPoint) -> f64,
) -> Vec<Solution> {
    let terms: Vec<&TermMatch> = lookup
        .matches
        .iter()
        .filter(|m| !m.candidates.is_empty())
        .collect();
    if terms.is_empty() {
        return Vec::new();
    }

    let mut solutions: Vec<Solution> = Vec::new();
    let mut indices = vec![0usize; terms.len()];
    loop {
        let entries: Vec<EntryPoint> = terms
            .iter()
            .zip(&indices)
            .map(|(t, &i)| t.candidates[i].clone())
            .collect();
        let roles: Vec<TermRole> = terms.iter().map(|t| t.role).collect();
        let score = entries
            .iter()
            .map(|e| weights.weight(e.provenance) + boost(e))
            .sum::<f64>()
            / entries.len() as f64;
        solutions.push(Solution {
            entries,
            roles,
            score,
        });
        if solutions.len() >= cap {
            break;
        }
        // Advance the mixed-radix counter.
        let mut pos = terms.len();
        loop {
            if pos == 0 {
                break;
            }
            pos -= 1;
            indices[pos] += 1;
            if indices[pos] < terms[pos].candidates.len() {
                break;
            }
            indices[pos] = 0;
            if pos == 0 {
                // Wrapped around completely: enumeration finished.
                pos = usize::MAX;
                break;
            }
        }
        if pos == usize::MAX {
            break;
        }
    }

    solutions.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    solutions.truncate(top_n);
    solutions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::lookup::TermMatch;
    use crate::provenance::Provenance;
    use soda_metagraph::MetaGraph;

    fn entry(phrase: &str, provenance: Provenance, node: soda_metagraph::NodeId) -> EntryPoint {
        EntryPoint {
            phrase: phrase.into(),
            node,
            provenance,
            base_filter: None,
        }
    }

    fn lookup_fixture() -> (LookupResult, MetaGraph) {
        let mut g = MetaGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let lookup = LookupResult {
            matches: vec![
                TermMatch {
                    phrase: "customers".into(),
                    role: TermRole::Keyword,
                    candidates: vec![entry("customers", Provenance::DomainOntology, a)],
                },
                TermMatch {
                    phrase: "financial instruments".into(),
                    role: TermRole::Keyword,
                    candidates: vec![
                        entry("financial instruments", Provenance::ConceptualSchema, b),
                        entry("financial instruments", Provenance::LogicalSchema, c),
                    ],
                },
            ],
            ..Default::default()
        };
        (lookup, g)
    }

    #[test]
    fn enumerates_the_combinatorial_product() {
        let (lookup, _g) = lookup_fixture();
        assert_eq!(lookup.complexity(), 2);
        let sols = enumerate_and_rank(&lookup, &RankingWeights::default(), 10, 1000);
        assert_eq!(sols.len(), 2);
        // The conceptual-schema interpretation outranks the logical one.
        assert!(sols[0].score > sols[1].score);
        assert_eq!(sols[0].entries[1].provenance, Provenance::ConceptualSchema);
    }

    #[test]
    fn top_n_truncates_and_cap_bounds_enumeration() {
        let (lookup, _g) = lookup_fixture();
        let sols = enumerate_and_rank(&lookup, &RankingWeights::default(), 1, 1000);
        assert_eq!(sols.len(), 1);
        let sols = enumerate_and_rank(&lookup, &RankingWeights::default(), 10, 1);
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn empty_lookup_produces_no_solutions() {
        let lookup = LookupResult::default();
        assert!(enumerate_and_rank(&lookup, &RankingWeights::default(), 10, 100).is_empty());
        assert_eq!(lookup.complexity(), 1);
    }

    #[test]
    fn uniform_weights_keep_enumeration_order() {
        let (lookup, _g) = lookup_fixture();
        let sols = enumerate_and_rank(&lookup, &RankingWeights::uniform(), 10, 1000);
        assert_eq!(sols.len(), 2);
        assert!((sols[0].score - sols[1].score).abs() < f64::EPSILON);
    }

    #[test]
    fn boost_can_override_the_provenance_order() {
        let (lookup, _g) = lookup_fixture();
        // Without a boost the conceptual-schema interpretation wins; a strong
        // boost on the logical-schema candidate flips the order.
        let sols = enumerate_and_rank_boosted(&lookup, &RankingWeights::default(), 10, 1000, |e| {
            if e.provenance == Provenance::LogicalSchema {
                0.5
            } else {
                0.0
            }
        });
        assert_eq!(sols.len(), 2);
        assert_eq!(sols[0].entries[1].provenance, Provenance::LogicalSchema);
    }

    #[test]
    fn entry_for_finds_the_chosen_entry() {
        let (lookup, _g) = lookup_fixture();
        let sols = enumerate_and_rank(&lookup, &RankingWeights::default(), 10, 1000);
        assert!(sols[0].entry_for("customers").is_some());
        assert!(sols[0].entry_for("missing").is_none());
    }
}
