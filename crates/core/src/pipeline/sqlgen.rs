//! Step 5 — SQL generation.
//!
//! Everything collected by the earlier steps — tables, join conditions,
//! filters, aggregations, grouping and the `top N` limit — is combined into a
//! single executable `SELECT` statement in the style the paper uses
//! (comma-separated FROM list, join predicates in the WHERE clause).

use soda_relation::{
    CompareOp, DataType, Expr, OrderByItem, SelectItem, SelectStatement, TableRef,
};

use crate::pipeline::lookup::{LookupResult, TermRole};
use crate::pipeline::tables::TablePlan;
use crate::pipeline::PipelineContext;

/// Builds the SQL statement for one solution.  Returns `None` when the plan
/// has no tables at all (nothing to select from).
pub fn run(
    ctx: &PipelineContext<'_>,
    plan: &TablePlan,
    filters: &[Expr],
    lookup: &LookupResult,
) -> Option<SelectStatement> {
    if plan.tables.is_empty() {
        return None;
    }

    let from: Vec<TableRef> = plan.tables.iter().map(TableRef::new).collect();

    // WHERE clause: join conditions followed by filters.
    let mut conjuncts: Vec<Expr> = plan
        .joins
        .iter()
        .map(|j| {
            Expr::compare(
                CompareOp::Eq,
                Expr::qualified(j.fk_table.clone(), j.fk_column.clone()),
                Expr::qualified(j.pk_table.clone(), j.pk_column.clone()),
            )
        })
        .collect();
    conjuncts.extend(filters.iter().cloned());
    let selection = Expr::and_all(conjuncts);

    // Aggregations and grouping.
    let mut projection: Vec<SelectItem> = Vec::new();
    let mut group_by: Vec<Expr> = Vec::new();
    let mut order_by: Vec<OrderByItem> = Vec::new();

    for phrase in &lookup.group_by {
        // An interpretation that cannot resolve a requested group-by attribute
        // cannot express the user's query — drop it so that a resolving
        // interpretation surfaces instead.
        let col = resolve_attribute(ctx, plan, phrase, TermRole::GroupByAttribute)?;
        group_by.push(col.clone());
        projection.push(SelectItem::expr(col));
    }

    let mut aggregate_exprs: Vec<Expr> = Vec::new();
    for agg in &lookup.aggregations {
        let arg = match agg.attribute.as_ref() {
            None => None,
            Some(phrase) => {
                // Same reasoning as for group-by attributes.
                Some(resolve_attribute(
                    ctx,
                    plan,
                    phrase,
                    TermRole::AggregationAttribute,
                )?)
            }
        };
        let expr = Expr::Aggregate {
            func: agg.func,
            arg: arg.map(Box::new),
        };
        aggregate_exprs.push(expr.clone());
        projection.push(SelectItem::expr(expr));
    }

    let is_aggregate = !aggregate_exprs.is_empty() || !group_by.is_empty();
    if !is_aggregate {
        projection = vec![SelectItem::expr(Expr::Star)];
    }

    // Top N: order by the first aggregate (descending) when aggregating.
    let limit = lookup.top_n;
    if limit.is_some() {
        if let Some(first_agg) = aggregate_exprs.first() {
            order_by.push(OrderByItem {
                expr: first_agg.clone(),
                descending: true,
            });
        }
    }

    Some(SelectStatement {
        distinct: false,
        projection,
        from,
        selection,
        group_by,
        order_by,
        limit,
    })
}

/// Resolves an aggregation / group-by attribute phrase to a column expression.
///
/// Preference order: the anchor created for exactly this phrase and role; any
/// anchor for the phrase with a column focus; a table-level anchor (then a
/// representative column of that table is chosen — its primary key if textual,
/// otherwise its first text column, otherwise its first column).
fn resolve_attribute(
    ctx: &PipelineContext<'_>,
    plan: &TablePlan,
    phrase: &str,
    role: TermRole,
) -> Option<Expr> {
    let anchors: Vec<_> = plan.anchors.iter().filter(|a| a.phrase == phrase).collect();
    let preferred = anchors
        .iter()
        .find(|a| a.role == role && a.column.is_some())
        .or_else(|| anchors.iter().find(|a| a.column.is_some()))
        .or_else(|| anchors.first());
    let anchor = preferred?;
    if let Some((table, column)) = &anchor.column {
        return Some(Expr::qualified(table.clone(), column.clone()));
    }
    let table = anchor.table.as_ref()?;
    let schema = ctx.db.table(table).ok()?.schema().clone();
    let column = schema
        .primary_key
        .iter()
        .find(|pk| {
            schema
                .column(pk)
                .map(|c| c.data_type == DataType::Text)
                .unwrap_or(false)
        })
        .cloned()
        .or_else(|| {
            schema
                .columns
                .iter()
                .find(|c| c.data_type == DataType::Text)
                .map(|c| c.name.clone())
        })
        .or_else(|| schema.columns.first().map(|c| c.name.clone()))?;
    Some(Expr::qualified(table.clone(), column))
}
