//! Step 4 — Filters.
//!
//! Filter conditions come from three places (§3, Step 4):
//!
//! * base-data hits from the lookup step ("Zürich" → `address.city = 'Zurich'`),
//! * comparison / range / like operators written in the input query, applied
//!   to the column of the keyword phrase preceding them,
//! * metadata-defined business terms ("wealthy customers" → the filter stored
//!   on the ontology concept).

use soda_metagraph::builder::preds;
use soda_relation::{CompareOp, Date, Expr, Value};

use crate::pipeline::lookup::{Constraint, ConstraintKind};
use crate::pipeline::rank::Solution;
use crate::pipeline::tables::TablePlan;
use crate::pipeline::PipelineContext;
use crate::provenance::Provenance;
use crate::resolve::column_name;

/// Runs the filters step, possibly extending the plan with the table of a
/// metadata-defined filter.  Returns the filter expressions plus human-readable
/// notes about anything that had to be skipped.
pub fn run(
    ctx: &PipelineContext<'_>,
    solution: &Solution,
    plan: &mut TablePlan,
    constraints: &[Constraint],
) -> (Vec<Expr>, Vec<String>) {
    let mut filters = Vec::new();
    let mut notes = Vec::new();

    // --- base-data filters ----------------------------------------------------
    for anchor in &plan.anchors {
        if let Some(base) = &anchor.base_filter {
            let column = Expr::qualified(base.table.clone(), base.column.clone());
            let expr = if base.exact {
                Expr::compare(CompareOp::Eq, column, Expr::literal(base.value.as_str()))
            } else {
                Expr::Like {
                    expr: Box::new(column),
                    pattern: format!("%{}%", base.value),
                }
            };
            filters.push(expr);
        }
    }

    // --- metadata-defined filters ----------------------------------------------
    for entry in &solution.entries {
        if entry.provenance != Provenance::DomainOntology {
            continue;
        }
        for filter_node in ctx.graph.objects_of(entry.node, preds::DEFINED_FILTER) {
            let Some(column_node) = ctx
                .graph
                .objects_of(filter_node, preds::FILTER_COLUMN)
                .into_iter()
                .next()
            else {
                notes.push(format!(
                    "metadata filter of '{}' has no column",
                    entry.phrase
                ));
                continue;
            };
            let Some((table, column)) = column_name(ctx.graph, column_node, ctx.db) else {
                continue;
            };
            let op_text = ctx
                .graph
                .text_of(filter_node, preds::FILTER_OP)
                .unwrap_or("=")
                .to_string();
            let value_text = ctx
                .graph
                .text_of(filter_node, preds::FILTER_VALUE)
                .unwrap_or_default()
                .to_string();
            // Make sure the filtered table participates in the query.
            if !plan.tables.iter().any(|t| t.eq_ignore_ascii_case(&table)) {
                if let Some(anchor_table) = plan.tables.iter().next().cloned() {
                    if let Some(path) = ctx.joins.path_within(
                        &table,
                        &anchor_table,
                        ctx.config.max_join_path_length,
                    ) {
                        for edge in path {
                            plan.tables.insert(edge.fk_table.clone());
                            plan.tables.insert(edge.pk_table.clone());
                            if !plan.joins.iter().any(|e| e.condition() == edge.condition()) {
                                plan.joins.push(edge);
                            }
                        }
                    }
                }
                plan.tables.insert(table.clone());
            }
            let column_expr = Expr::qualified(table, column);
            let expr = if op_text.eq_ignore_ascii_case("like") {
                Expr::Like {
                    expr: Box::new(column_expr),
                    pattern: format!("%{value_text}%"),
                }
            } else {
                let op = CompareOp::parse(&op_text).unwrap_or(CompareOp::Eq);
                Expr::compare(op, column_expr, Expr::Literal(parse_literal(&value_text)))
            };
            filters.push(expr);
        }
    }

    // --- input constraints -------------------------------------------------------
    for constraint in constraints {
        // Temporal `valid at` constraints (historization extension) do not
        // attach to a keyword column; they constrain the validity interval of
        // every annotated history table participating in the plan.
        if let ConstraintKind::ValidAt(date) = &constraint.kind {
            if !ctx.config.use_historization {
                notes.push("valid at ignored: historization support disabled".into());
                continue;
            }
            let mut applied = false;
            for table in plan.tables.clone() {
                let Some(link) = ctx.joins.historization_of(&table) else {
                    continue;
                };
                let from = Expr::qualified(link.hist_table.clone(), link.valid_from_column.clone());
                let to = Expr::qualified(link.hist_table.clone(), link.valid_to_column.clone());
                filters.push(Expr::compare(
                    CompareOp::LtEq,
                    from,
                    Expr::Literal(date.clone()),
                ));
                filters.push(Expr::compare(
                    CompareOp::GtEq,
                    to,
                    Expr::Literal(date.clone()),
                ));
                applied = true;
            }
            if !applied {
                notes.push(
                    "valid at ignored: no annotated history table participates in this result"
                        .into(),
                );
            }
            continue;
        }
        let target = constraint
            .target_phrase
            .as_ref()
            .and_then(|phrase| {
                plan.anchors
                    .iter()
                    .find(|a| a.phrase == *phrase && a.column.is_some())
            })
            .and_then(|a| a.column.clone());
        let Some((table, column)) = target else {
            notes.push(format!(
                "constraint {:?} could not be attached to a column",
                constraint.kind
            ));
            continue;
        };
        let column_expr = Expr::qualified(table, column);
        match &constraint.kind {
            ConstraintKind::Compare { op, value } => {
                filters.push(Expr::compare(
                    *op,
                    column_expr,
                    Expr::Literal(value.clone()),
                ));
            }
            ConstraintKind::Between { low, high } => {
                filters.push(Expr::compare(
                    CompareOp::GtEq,
                    column_expr.clone(),
                    Expr::Literal(low.clone()),
                ));
                filters.push(Expr::compare(
                    CompareOp::LtEq,
                    column_expr,
                    Expr::Literal(high.clone()),
                ));
            }
            ConstraintKind::Like(pattern) => {
                filters.push(Expr::Like {
                    expr: Box::new(column_expr),
                    pattern: format!("%{pattern}%"),
                });
            }
            // Handled before the column resolution above.
            ConstraintKind::ValidAt(_) => unreachable!("valid-at handled earlier"),
        }
    }

    (filters, notes)
}

/// Parses a metadata filter value: number, date or text.
fn parse_literal(text: &str) -> Value {
    if let Ok(i) = text.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = text.parse::<f64>() {
        return Value::Float(f);
    }
    if let Some(d) = Date::parse(text) {
        return Value::Date(d);
    }
    Value::Text(text.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_parsing_prefers_numbers_then_dates() {
        assert_eq!(parse_literal("500000"), Value::Int(500000));
        assert_eq!(parse_literal("1.5"), Value::Float(1.5));
        assert_eq!(
            parse_literal("2011-09-01"),
            Value::Date(Date::new(2011, 9, 1))
        );
        assert_eq!(parse_literal("Zurich"), Value::Text("Zurich".into()));
    }
}
