//! Process-global probe-thread budget.
//!
//! The lookup step fans each heavy base-data probe out across inverted-index
//! shards on scoped helper threads (`pipeline::lookup`).  When many service
//! workers — or many tenants — probe concurrently, each fan-out sized for a
//! quiet machine would oversubscribe the cores.  [`ProbeBudget`] is a shared
//! counting semaphore over the host's spare cores: a probe *tries* to
//! acquire helper permits before spawning and spawns only as many helpers as
//! it was granted, degrading gracefully to an inline scan (which is always
//! correct — fan-out is a pure latency optimization) when the budget is
//! exhausted.
//!
//! Acquisition never blocks: probing inline is always an acceptable
//! fallback, so a depleted budget costs latency, never correctness or
//! deadlock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A non-blocking counting semaphore bounding concurrent probe helper
/// threads across every snapshot, service and tenant in the process.
#[derive(Debug)]
pub struct ProbeBudget {
    permits: AtomicUsize,
    capacity: usize,
}

impl ProbeBudget {
    /// Creates a budget with `capacity` permits (at least 0; a zero-capacity
    /// budget grants nothing and forces every probe inline).
    pub fn new(capacity: usize) -> Self {
        ProbeBudget {
            permits: AtomicUsize::new(capacity),
            capacity,
        }
    }

    /// The process-wide budget: one permit per core beyond the first, so
    /// the sum of all concurrent helper threads never exceeds the host's
    /// spare parallelism.
    pub fn global() -> &'static ProbeBudget {
        static GLOBAL: OnceLock<ProbeBudget> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            ProbeBudget::new(cores.saturating_sub(1))
        })
    }

    /// Tries to take up to `wanted` permits; returns how many were granted
    /// (possibly zero).  Never blocks.  Every granted permit must be
    /// returned with [`ProbeBudget::release`].
    pub fn try_acquire(&self, wanted: usize) -> usize {
        if wanted == 0 {
            return 0;
        }
        let mut available = self.permits.load(Ordering::Relaxed);
        loop {
            let take = wanted.min(available);
            if take == 0 {
                return 0;
            }
            match self.permits.compare_exchange_weak(
                available,
                available - take,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(current) => available = current,
            }
        }
    }

    /// Returns `granted` permits to the budget.
    pub fn release(&self, granted: usize) {
        if granted > 0 {
            self.permits.fetch_add(granted, Ordering::Release);
        }
    }

    /// The total number of permits when fully idle.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Permits currently available (racy snapshot, for metrics only).
    pub fn available(&self) -> usize {
        self.permits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_up_to_capacity_and_restores_on_release() {
        let budget = ProbeBudget::new(3);
        assert_eq!(budget.try_acquire(2), 2);
        assert_eq!(budget.try_acquire(5), 1, "only the remainder is granted");
        assert_eq!(budget.try_acquire(1), 0, "budget exhausted");
        budget.release(3);
        assert_eq!(budget.available(), 3);
        assert_eq!(budget.try_acquire(3), 3);
        budget.release(3);
    }

    #[test]
    fn zero_capacity_budget_grants_nothing() {
        let budget = ProbeBudget::new(0);
        assert_eq!(budget.try_acquire(4), 0);
        budget.release(0); // no-op, must not underflow anything
        assert_eq!(budget.available(), 0);
    }

    #[test]
    fn concurrent_acquisition_never_oversubscribes() {
        let budget = ProbeBudget::new(4);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        let got = budget.try_acquire(2);
                        if got > 0 {
                            let in_use = budget.capacity() - budget.available();
                            peak.fetch_max(in_use, Ordering::Relaxed);
                            budget.release(got);
                        }
                    }
                });
            }
        });
        assert_eq!(budget.available(), 4, "all permits returned");
        assert!(peak.load(Ordering::Relaxed) <= 4, "never oversubscribed");
    }

    #[test]
    fn global_budget_matches_host_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(ProbeBudget::global().capacity(), cores.saturating_sub(1));
    }
}
