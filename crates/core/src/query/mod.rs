//! SODA's input query language: keywords, comparison operators, aggregation
//! operators, `group by`, `top N`, `between` and `date(…)` values (§4.3).

pub mod ast;
pub mod normalize;
pub mod parser;

pub use ast::{QueryTerm, QueryValue, SodaQuery};
pub use normalize::{normalize_parsed, normalize_query};
pub use parser::parse_query;
