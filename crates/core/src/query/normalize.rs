//! Canonical normalization of input queries, used as the cache key of the
//! serving layer (`soda-service`).
//!
//! Two inputs that normalize identically are guaranteed to produce the same
//! [`ResultPage`](crate::result::ResultPage): the only rewrites applied are
//! ones the engine itself is invariant under.
//!
//! * Keyword groups, aggregation attributes and group-by attributes are
//!   folded through the same tokenizer the lookup step uses
//!   ([`normalize_phrase`]): lower-cased, split on punctuation, re-joined
//!   with single spaces.  `"Trade Order TD"`, `trade_order_td` and
//!   `"trade   order  td"` all normalize to `trade order td`.
//! * Values are printed canonically: integral numbers lose their fraction
//!   (`100000.0` → `100000`), dates always render as `date(YYYY-MM-DD)`.
//! * A `top N` term is hoisted to the front — the pipeline reads it with a
//!   position-independent accessor, so its placement never affects output.
//! * Connector words (`and`/`or`), the meaningless `select` prefix and stray
//!   punctuation are already erased by the parser; adjacent keyword groups
//!   are re-separated with a canonical `and`.
//!
//! Deliberately **not** rewritten, because the engine is *not* invariant
//! under them: the order of keyword groups (comparison operators attach to
//! the group before them), the order of constraints (it shows in the
//! generated `WHERE` clause), the case of comparison / `like` values (they
//! flow verbatim into SQL literals) and the order of group-by attributes.

use soda_relation::index::tokenizer::normalize_phrase;
use soda_relation::{AggFunc, CompareOp};

use crate::error::Result;
use crate::query::ast::{QueryTerm, QueryValue, SodaQuery};
use crate::query::parser::parse_query;

/// Parses an input query and renders its canonical form.
///
/// Returns the parse error of [`parse_query`] for inputs the engine would
/// reject anyway — callers can surface it without running the pipeline.
pub fn normalize_query(input: &str) -> Result<String> {
    Ok(normalize_parsed(&parse_query(input)?))
}

/// Renders the canonical form of an already-parsed query.
pub fn normalize_parsed(query: &SodaQuery) -> String {
    let mut parts: Vec<String> = Vec::new();
    // The *last* `top N` term, because that is the one the lookup step
    // applies (it overwrites on every occurrence) — hoisting any other one
    // would collide inputs the engine answers differently.
    let top_n = query.terms.iter().rev().find_map(|t| match t {
        QueryTerm::TopN(n) => Some(*n),
        _ => None,
    });
    if let Some(n) = top_n {
        parts.push(format!("top {n}"));
    }
    let mut prev_was_keywords = false;
    for term in &query.terms {
        match term {
            // Hoisted to the front above.
            QueryTerm::TopN(_) => continue,
            QueryTerm::Keywords(group) => {
                let group = normalize_phrase(group);
                if group.is_empty() {
                    continue;
                }
                if prev_was_keywords {
                    parts.push("and".to_string());
                }
                parts.push(group);
                prev_was_keywords = true;
                continue;
            }
            QueryTerm::Comparison { op, value } => {
                parts.push(format!("{} {}", op_text(*op), value_text(value)));
            }
            QueryTerm::Like(pattern) => parts.push(format!("like {pattern}")),
            QueryTerm::Between { low, high } => {
                parts.push(format!(
                    "between {} and {}",
                    value_text(low),
                    value_text(high)
                ));
            }
            QueryTerm::Aggregation { func, attribute } => {
                parts.push(format!(
                    "{} ({})",
                    func_text(*func),
                    normalize_phrase(attribute)
                ));
            }
            QueryTerm::GroupBy(attrs) => {
                let attrs: Vec<String> = attrs.iter().map(|a| normalize_phrase(a)).collect();
                parts.push(format!("group by ({})", attrs.join(", ")));
            }
            QueryTerm::ValidAt(value) => parts.push(format!("valid at {}", value_text(value))),
        }
        prev_was_keywords = false;
    }
    parts.join(" ")
}

fn op_text(op: CompareOp) -> &'static str {
    match op {
        CompareOp::Eq => "=",
        CompareOp::NotEq => "!=",
        CompareOp::Lt => "<",
        CompareOp::LtEq => "<=",
        CompareOp::Gt => ">",
        CompareOp::GtEq => ">=",
    }
}

fn func_text(func: AggFunc) -> &'static str {
    match func {
        AggFunc::Sum => "sum",
        AggFunc::Count => "count",
        AggFunc::Avg => "avg",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
    }
}

fn value_text(value: &QueryValue) -> String {
    match value {
        QueryValue::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        QueryValue::Date(d) => format!("date({:04}-{:02}-{:02})", d.year, d.month, d.day),
        QueryValue::Text(s) => s.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_and_whitespace_fold_together() {
        let a = normalize_query("Sara   Guttinger").unwrap();
        let b = normalize_query("sara guttinger").unwrap();
        let c = normalize_query("SARA GUTTINGER").unwrap();
        assert_eq!(a, "sara guttinger");
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn identifier_and_phrase_forms_share_a_key() {
        assert_eq!(
            normalize_query("trade_order_td").unwrap(),
            normalize_query("Trade Order TD").unwrap()
        );
    }

    #[test]
    fn numbers_and_dates_render_canonically() {
        let a = normalize_query("salary >= 100000 and birthday = date(1981-04-23)").unwrap();
        let b = normalize_query("Salary >= 100000.0 and Birthday = 1981-04-23").unwrap();
        assert_eq!(a, "salary >= 100000 birthday = date(1981-04-23)");
        assert_eq!(a, b);
    }

    #[test]
    fn top_n_is_hoisted_to_the_front() {
        let a = normalize_query("top 10 wealthy customers").unwrap();
        let b = normalize_query("wealthy customers top 10").unwrap();
        assert_eq!(a, "top 10 wealthy customers");
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_top_n_keeps_the_one_the_engine_applies() {
        // The lookup step overwrites `top_n` per occurrence, so the last one
        // wins at execution time; normalization must agree or two queries
        // the engine answers differently would share a cache key.
        let q = normalize_query("top 5 customers top 10").unwrap();
        assert_eq!(q, "top 10 customers");
        assert_ne!(q, normalize_query("top 5 customers").unwrap());
    }

    #[test]
    fn aggregation_and_group_by_fold_attribute_case() {
        let a = normalize_query("sum (Amount) group by (Transaction Date)").unwrap();
        let b = normalize_query("SUM(amount) group by (transaction_date)").unwrap();
        assert_eq!(a, "sum (amount) group by (transaction date)");
        assert_eq!(a, b);
    }

    #[test]
    fn keyword_groups_are_separated_by_canonical_and() {
        let a = normalize_query("customers and Zurich or financial instruments").unwrap();
        let b = normalize_query("Customers AND zurich AND Financial Instruments").unwrap();
        assert_eq!(a, "customers and zurich and financial instruments");
        assert_eq!(a, b);
        // A single merged group is a *different* query (different longest-word
        // segmentation), so it must not collide.
        let merged = normalize_query("customers Zurich financial instruments").unwrap();
        assert_ne!(a, merged);
    }

    #[test]
    fn comparison_values_keep_their_case() {
        // Text values flow verbatim into SQL literals, so `Zurich` and
        // `zurich` are different filters and must not share a cache slot.
        let a = normalize_query("city = Zurich").unwrap();
        let b = normalize_query("city = zurich").unwrap();
        assert_ne!(a, b);
        // The keyword part still folds.
        assert!(a.starts_with("city = "));
    }

    #[test]
    fn between_and_valid_at_render_canonically() {
        let q = normalize_query(
            "transaction date between date(2010-01-01) and date(2010-12-31) valid at date(2011-01-01)",
        )
        .unwrap();
        assert_eq!(
            q,
            "transaction date between date(2010-01-01) and date(2010-12-31) valid at date(2011-01-01)"
        );
    }

    #[test]
    fn normalized_form_reparses_to_the_same_canonical_form() {
        for input in [
            "Sara Guttinger",
            "top 10 sum (amount) group by (company name)",
            "salary >= 100000 and birthday = date(1981-04-23)",
            "customers and Zurich or financial instruments",
            "agreement like gold",
        ] {
            let once = normalize_query(input).unwrap();
            let twice = normalize_query(&once).unwrap();
            assert_eq!(once, twice, "not a fixed point for '{input}'");
        }
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(normalize_query("   ").is_err());
        assert!(normalize_query("salary >=").is_err());
    }
}
