//! Abstract syntax of the SODA input language.
//!
//! The language (§4.3) is deliberately simple: keyword groups optionally
//! refined with comparison operators, `date(YYYY-MM-DD)` values, aggregation
//! operators (`sum`, `count`, …), `group by (…)` and `top N`.  The grammar is
//! flat — the parser produces a *sequence of terms* in input order; the lookup
//! step later decides what the keyword groups mean, and comparison operators
//! attach to the keyword group immediately before them.

use soda_relation::{AggFunc, CompareOp, Date};

/// A literal value in the input query.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub enum QueryValue {
    /// A number (`100000`).
    Number(f64),
    /// A `date(YYYY-MM-DD)` value.
    Date(Date),
    /// Free text (used with `=` or `like`).
    Text(String),
}

impl QueryValue {
    /// Converts to a relational [`soda_relation::Value`].
    pub fn to_value(&self) -> soda_relation::Value {
        match self {
            QueryValue::Number(n) => {
                if n.fract() == 0.0 {
                    soda_relation::Value::Int(*n as i64)
                } else {
                    soda_relation::Value::Float(*n)
                }
            }
            QueryValue::Date(d) => soda_relation::Value::Date(*d),
            QueryValue::Text(s) => soda_relation::Value::Text(s.clone()),
        }
    }
}

/// One term of the parsed query, in input order.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub enum QueryTerm {
    /// A group of search keywords (still unsegmented — the lookup step applies
    /// longest-word-combination matching).
    Keywords(String),
    /// A comparison operator applied to the keyword group before it.
    Comparison {
        /// The operator.
        op: CompareOp,
        /// The right-hand value.
        value: QueryValue,
    },
    /// A `like` pattern applied to the keyword group before it.
    Like(String),
    /// A `between v1 v2` range applied to the keyword group before it.
    Between {
        /// Lower bound (inclusive).
        low: QueryValue,
        /// Upper bound (inclusive).
        high: QueryValue,
    },
    /// An aggregation operator with its attribute, e.g. `sum (amount)`.
    Aggregation {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated attribute (may be empty for `count()`).
        attribute: String,
    },
    /// A `group by (a, b, …)` clause.
    GroupBy(Vec<String>),
    /// A `top N` prefix.
    TopN(usize),
    /// A `valid at date(YYYY-MM-DD)` temporal operator (extension): restrict
    /// annotated history tables to rows whose validity interval contains the
    /// given date.  Ignored on metadata graphs without historization
    /// annotations.
    ValidAt(QueryValue),
}

/// A parsed SODA query.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize)]
pub struct SodaQuery {
    /// Terms in input order.
    pub terms: Vec<QueryTerm>,
    /// The original input text.
    pub input: String,
}

impl SodaQuery {
    /// All keyword groups, in order.
    pub fn keyword_groups(&self) -> Vec<&str> {
        self.terms
            .iter()
            .filter_map(|t| match t {
                QueryTerm::Keywords(k) => Some(k.as_str()),
                _ => None,
            })
            .collect()
    }

    /// All aggregations.
    pub fn aggregations(&self) -> Vec<(AggFunc, &str)> {
        self.terms
            .iter()
            .filter_map(|t| match t {
                QueryTerm::Aggregation { func, attribute } => Some((*func, attribute.as_str())),
                _ => None,
            })
            .collect()
    }

    /// The group-by attributes, if any.
    pub fn group_by(&self) -> Vec<&str> {
        self.terms
            .iter()
            .filter_map(|t| match t {
                QueryTerm::GroupBy(attrs) => Some(attrs.iter().map(|s| s.as_str())),
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// The `top N` limit, if any.
    pub fn top_n(&self) -> Option<usize> {
        self.terms.iter().find_map(|t| match t {
            QueryTerm::TopN(n) => Some(*n),
            _ => None,
        })
    }

    /// The `valid at` date, if any.
    pub fn valid_at(&self) -> Option<&QueryValue> {
        self.terms.iter().find_map(|t| match t {
            QueryTerm::ValidAt(v) => Some(v),
            _ => None,
        })
    }

    /// True if the query asks for any aggregation or grouping.
    pub fn is_aggregate(&self) -> bool {
        !self.aggregations().is_empty() || !self.group_by().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_extract_the_right_terms() {
        let q = SodaQuery {
            terms: vec![
                QueryTerm::TopN(10),
                QueryTerm::Aggregation {
                    func: AggFunc::Sum,
                    attribute: "amount".into(),
                },
                QueryTerm::Keywords("customer".into()),
                QueryTerm::GroupBy(vec!["currency".into()]),
            ],
            input: String::new(),
        };
        assert_eq!(q.keyword_groups(), vec!["customer"]);
        assert_eq!(q.aggregations().len(), 1);
        assert_eq!(q.group_by(), vec!["currency"]);
        assert_eq!(q.top_n(), Some(10));
        assert!(q.is_aggregate());
    }

    #[test]
    fn query_value_conversion() {
        assert_eq!(
            QueryValue::Number(10.0).to_value(),
            soda_relation::Value::Int(10)
        );
        assert_eq!(
            QueryValue::Number(10.5).to_value(),
            soda_relation::Value::Float(10.5)
        );
        assert_eq!(
            QueryValue::Text("Sara".into()).to_value(),
            soda_relation::Value::Text("Sara".into())
        );
        let d = Date::new(2011, 9, 1);
        assert_eq!(
            QueryValue::Date(d).to_value(),
            soda_relation::Value::Date(d)
        );
    }

    #[test]
    fn non_aggregate_query() {
        let q = SodaQuery {
            terms: vec![QueryTerm::Keywords("Sara Guttinger".into())],
            input: "Sara Guttinger".into(),
        };
        assert!(!q.is_aggregate());
        assert_eq!(q.top_n(), None);
        assert!(q.group_by().is_empty());
    }
}
