//! Parser for the SODA input language.
//!
//! The grammar (§4.3) is flat and forgiving: anything that is not an operator
//! construct is a search keyword.  Connector words (`and`, `or`) merely
//! separate keyword groups — the paper notes that "and" may be unknown and is
//! then ignored.

use soda_relation::{AggFunc, CompareOp, Date};

use crate::error::{Result, SodaError};
use crate::query::ast::{QueryTerm, QueryValue, SodaQuery};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Op(String),
    LParen,
    RParen,
    Comma,
}

fn scan(input: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut word = String::new();
    let mut chars = input.chars().peekable();
    let flush = |word: &mut String, toks: &mut Vec<Tok>| {
        if !word.is_empty() {
            toks.push(Tok::Word(std::mem::take(word)));
        }
    };
    while let Some(c) = chars.next() {
        match c {
            '(' => {
                flush(&mut word, &mut toks);
                toks.push(Tok::LParen);
            }
            ')' => {
                flush(&mut word, &mut toks);
                toks.push(Tok::RParen);
            }
            ',' => {
                flush(&mut word, &mut toks);
                toks.push(Tok::Comma);
            }
            '>' | '<' | '=' | '!' => {
                flush(&mut word, &mut toks);
                let mut op = String::new();
                op.push(c);
                if let Some('=') = chars.peek() {
                    op.push('=');
                    chars.next();
                }
                toks.push(Tok::Op(op));
            }
            c if c.is_whitespace() => flush(&mut word, &mut toks),
            _ => word.push(c),
        }
    }
    flush(&mut word, &mut toks);
    toks
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_word(&self) -> Option<&str> {
        match self.peek() {
            Some(Tok::Word(w)) => Some(w.as_str()),
            _ => None,
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.peek_word().is_some_and(|x| x.eq_ignore_ascii_case(w)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parses a value: `date(YYYY-MM-DD)`, a number, or a bare word.
    fn value(&mut self) -> Result<QueryValue> {
        match self.next() {
            Some(Tok::Word(w)) => {
                if w.eq_ignore_ascii_case("date") && self.peek() == Some(&Tok::LParen) {
                    self.pos += 1; // (
                    let inner = match self.next() {
                        Some(Tok::Word(d)) => d,
                        other => {
                            return Err(SodaError::Query(format!(
                                "expected date literal, found {other:?}"
                            )))
                        }
                    };
                    if self.peek() == Some(&Tok::RParen) {
                        self.pos += 1;
                    }
                    let d = Date::parse(&inner)
                        .ok_or_else(|| SodaError::Query(format!("invalid date '{inner}'")))?;
                    return Ok(QueryValue::Date(d));
                }
                if let Ok(n) = w.parse::<f64>() {
                    return Ok(QueryValue::Number(n));
                }
                if let Some(d) = Date::parse(&w) {
                    return Ok(QueryValue::Date(d));
                }
                Ok(QueryValue::Text(w))
            }
            other => Err(SodaError::Query(format!(
                "expected a value, found {other:?}"
            ))),
        }
    }

    /// Parses a parenthesised attribute list `( a, b c, d )`; attributes are
    /// multi-word phrases separated by commas.
    fn attribute_list(&mut self) -> Result<Vec<String>> {
        if self.peek() != Some(&Tok::LParen) {
            // Bare single attribute (lenient form).
            if let Some(Tok::Word(w)) = self.next() {
                return Ok(vec![w]);
            }
            return Err(SodaError::Query("expected an attribute list".into()));
        }
        self.pos += 1; // (
        let mut attrs = Vec::new();
        let mut current = Vec::new();
        loop {
            match self.next() {
                Some(Tok::RParen) | None => {
                    if !current.is_empty() {
                        attrs.push(current.join(" "));
                    }
                    break;
                }
                Some(Tok::Comma) => {
                    if !current.is_empty() {
                        attrs.push(std::mem::take(&mut current).join(" "));
                    }
                }
                Some(Tok::Word(w)) => current.push(w),
                Some(other) => {
                    return Err(SodaError::Query(format!(
                        "unexpected token {other:?} in attribute list"
                    )))
                }
            }
        }
        Ok(attrs)
    }
}

/// Parses an input query string into a [`SodaQuery`].
pub fn parse_query(input: &str) -> Result<SodaQuery> {
    let toks = scan(input);
    let mut p = Parser { toks, pos: 0 };
    let mut terms: Vec<QueryTerm> = Vec::new();
    let mut keywords: Vec<String> = Vec::new();

    let flush = |keywords: &mut Vec<String>, terms: &mut Vec<QueryTerm>| {
        if !keywords.is_empty() {
            terms.push(QueryTerm::Keywords(keywords.join(" ")));
            keywords.clear();
        }
    };

    while let Some(tok) = p.peek().cloned() {
        match tok {
            Tok::Op(op) => {
                p.pos += 1;
                flush(&mut keywords, &mut terms);
                let cmp = CompareOp::parse(&op)
                    .ok_or_else(|| SodaError::Query(format!("unknown operator {op}")))?;
                let value = p.value()?;
                terms.push(QueryTerm::Comparison { op: cmp, value });
            }
            Tok::Word(w) => {
                let lower = w.to_ascii_lowercase();
                match lower.as_str() {
                    "select" => {
                        // The paper writes "select count() …"; the word itself
                        // carries no meaning in the input language.
                        p.pos += 1;
                    }
                    "and" | "or" => {
                        p.pos += 1;
                        flush(&mut keywords, &mut terms);
                    }
                    "top" => {
                        p.pos += 1;
                        if let Some(n) = p.peek_word().and_then(|x| x.parse::<usize>().ok()) {
                            p.pos += 1;
                            flush(&mut keywords, &mut terms);
                            terms.push(QueryTerm::TopN(n));
                        } else {
                            keywords.push(w);
                        }
                    }
                    "group" => {
                        p.pos += 1;
                        if p.eat_word("by") {
                            flush(&mut keywords, &mut terms);
                            let attrs = p.attribute_list()?;
                            terms.push(QueryTerm::GroupBy(attrs));
                        } else {
                            keywords.push(w);
                        }
                    }
                    "between" => {
                        p.pos += 1;
                        flush(&mut keywords, &mut terms);
                        let low = p.value()?;
                        let _ = p.eat_word("and");
                        let high = p.value()?;
                        terms.push(QueryTerm::Between { low, high });
                    }
                    "valid" => {
                        // `valid at date(…)` — the temporal operator of the
                        // historization extension.  A bare "valid" without
                        // "at" stays an ordinary keyword.
                        if p.toks.get(p.pos + 1).is_some_and(
                            |t| matches!(t, Tok::Word(w) if w.eq_ignore_ascii_case("at")),
                        ) {
                            p.pos += 2;
                            flush(&mut keywords, &mut terms);
                            let value = p.value()?;
                            terms.push(QueryTerm::ValidAt(value));
                        } else {
                            p.pos += 1;
                            keywords.push(w);
                        }
                    }
                    "like" => {
                        p.pos += 1;
                        flush(&mut keywords, &mut terms);
                        match p.next() {
                            Some(Tok::Word(pat)) => terms.push(QueryTerm::Like(pat)),
                            other => {
                                return Err(SodaError::Query(format!(
                                    "expected pattern after like, found {other:?}"
                                )))
                            }
                        }
                    }
                    _ => {
                        // Aggregation operator?
                        if let Some(func) = AggFunc::parse(&lower) {
                            // Only treat it as an aggregation when followed by
                            // parentheses, so that a keyword like "count" in
                            // running text stays a keyword.
                            let next_is_paren = p.toks.get(p.pos + 1) == Some(&Tok::LParen);
                            if next_is_paren {
                                p.pos += 1;
                                flush(&mut keywords, &mut terms);
                                let attrs = p.attribute_list()?;
                                terms.push(QueryTerm::Aggregation {
                                    func,
                                    attribute: attrs.join(" "),
                                });
                                continue;
                            }
                        }
                        p.pos += 1;
                        keywords.push(w);
                    }
                }
            }
            Tok::LParen | Tok::RParen | Tok::Comma => {
                // Stray punctuation between keywords is ignored.
                p.pos += 1;
            }
        }
    }
    flush(&mut keywords, &mut terms);

    if terms.is_empty() {
        return Err(SodaError::EmptyQuery);
    }
    Ok(SodaQuery {
        terms,
        input: input.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_keywords() {
        let q = parse_query("Sara Guttinger").unwrap();
        assert_eq!(q.terms, vec![QueryTerm::Keywords("Sara Guttinger".into())]);
    }

    #[test]
    fn query2_comparisons_and_date() {
        let q = parse_query("salary >= 100000 and birthday = date(1981-04-23)").unwrap();
        assert_eq!(q.terms.len(), 4);
        assert_eq!(q.terms[0], QueryTerm::Keywords("salary".into()));
        assert_eq!(
            q.terms[1],
            QueryTerm::Comparison {
                op: CompareOp::GtEq,
                value: QueryValue::Number(100000.0)
            }
        );
        assert_eq!(q.terms[2], QueryTerm::Keywords("birthday".into()));
        assert_eq!(
            q.terms[3],
            QueryTerm::Comparison {
                op: CompareOp::Eq,
                value: QueryValue::Date(Date::new(1981, 4, 23))
            }
        );
    }

    #[test]
    fn top10_with_between_date_range() {
        let q = parse_query(
            "Top 10 trading volume customer transaction date between date(2010-01-01) date(2010-12-31)",
        )
        .unwrap();
        assert_eq!(q.top_n(), Some(10));
        assert!(q
            .terms
            .iter()
            .any(|t| matches!(t, QueryTerm::Between { .. })));
        assert_eq!(
            q.keyword_groups(),
            vec!["trading volume customer transaction date"]
        );
    }

    #[test]
    fn aggregation_with_group_by() {
        let q = parse_query("sum (amount) group by (transaction date)").unwrap();
        assert_eq!(
            q.terms[0],
            QueryTerm::Aggregation {
                func: AggFunc::Sum,
                attribute: "amount".into()
            }
        );
        assert_eq!(q.group_by(), vec!["transaction date"]);

        let q2 = parse_query("count (transactions) group by (company name)").unwrap();
        assert_eq!(q2.aggregations()[0].0, AggFunc::Count);
        assert_eq!(q2.group_by(), vec!["company name"]);
    }

    #[test]
    fn select_count_empty_parens() {
        let q = parse_query("select count() private customers Switzerland").unwrap();
        assert_eq!(
            q.terms[0],
            QueryTerm::Aggregation {
                func: AggFunc::Count,
                attribute: "".into()
            }
        );
        assert_eq!(q.keyword_groups(), vec!["private customers Switzerland"]);
    }

    #[test]
    fn sum_investments_group_by_currency() {
        let q = parse_query("sum(investments) group by (currency)").unwrap();
        assert_eq!(q.aggregations()[0].1, "investments");
        assert_eq!(q.group_by(), vec!["currency"]);
    }

    #[test]
    fn date_range_predicate_q6() {
        let q = parse_query("trade order period > date(2011-09-01)").unwrap();
        assert_eq!(q.keyword_groups(), vec!["trade order period"]);
        assert_eq!(
            q.terms[1],
            QueryTerm::Comparison {
                op: CompareOp::Gt,
                value: QueryValue::Date(Date::new(2011, 9, 1))
            }
        );
    }

    #[test]
    fn valid_at_temporal_operator() {
        let q = parse_query("Sara valid at date(2006-06-30)").unwrap();
        assert_eq!(q.keyword_groups(), vec!["Sara"]);
        assert_eq!(
            q.valid_at(),
            Some(&QueryValue::Date(Date::new(2006, 6, 30)))
        );
        // A bare "valid" stays an ordinary keyword.
        let q2 = parse_query("valid customers").unwrap();
        assert_eq!(q2.keyword_groups(), vec!["valid customers"]);
        assert_eq!(q2.valid_at(), None);
    }

    #[test]
    fn count_without_parens_stays_a_keyword() {
        let q = parse_query("transaction count per customer").unwrap();
        assert_eq!(q.keyword_groups(), vec!["transaction count per customer"]);
        assert!(q.aggregations().is_empty());
    }

    #[test]
    fn group_by_with_multiple_attributes() {
        let q = parse_query("sum (amount) group by (currency, transaction date)").unwrap();
        assert_eq!(q.group_by(), vec!["currency", "transaction date"]);
    }

    #[test]
    fn like_and_text_comparison() {
        let q = parse_query("agreement like gold").unwrap();
        assert_eq!(q.terms[1], QueryTerm::Like("gold".into()));
        let q2 = parse_query("city = Zurich").unwrap();
        assert_eq!(
            q2.terms[1],
            QueryTerm::Comparison {
                op: CompareOp::Eq,
                value: QueryValue::Text("Zurich".into())
            }
        );
    }

    #[test]
    fn empty_and_invalid_inputs() {
        assert!(matches!(parse_query("   "), Err(SodaError::EmptyQuery)));
        assert!(parse_query("salary >=").is_err());
        assert!(parse_query("birthday = date(not-a-date)").is_err());
    }

    #[test]
    fn and_or_split_keyword_groups() {
        let q = parse_query("customers and Zurich or financial instruments").unwrap();
        assert_eq!(
            q.keyword_groups(),
            vec!["customers", "Zurich", "financial instruments"]
        );
    }
}
