//! Tenant identity.
//!
//! A [`TenantId`] names one hosted warehouse inside a multi-tenant serving
//! process.  The id is an interned string (cheap to clone, hash and compare)
//! plus a stable 64-bit fingerprint that higher layers *fold* into
//! snapshot-derived cache fingerprints, so pages belonging to different
//! tenants can share one LRU without any possibility of cross-tenant
//! leakage: two cache keys collide only if both their snapshot fingerprint
//! *and* their folded tenant fingerprint collide.
//!
//! The **default tenant** is special: folding it is the identity function.
//! A single-tenant service therefore produces byte-identical cache keys —
//! and byte-compatible persisted cache files — to every release before
//! tenancy existed.

use std::fmt;
use std::sync::Arc;

/// The name of the implicit default tenant.
pub const DEFAULT_TENANT: &str = "default";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The identity of one hosted warehouse.
///
/// Cheap to clone (`Arc<str>` inside); ordering and hashing follow the
/// tenant name.  `TenantId::default()` names the implicit tenant every
/// single-tenant service serves.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(Arc<str>);

impl TenantId {
    /// Creates a tenant id from a name.  Empty or all-whitespace names are
    /// normalized to the default tenant.
    pub fn new(name: impl AsRef<str>) -> Self {
        let trimmed = name.as_ref().trim();
        if trimmed.is_empty() {
            Self::default()
        } else {
            TenantId(Arc::from(trimmed))
        }
    }

    /// The tenant name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True for the implicit default tenant.
    pub fn is_default(&self) -> bool {
        &*self.0 == DEFAULT_TENANT
    }

    /// A stable 64-bit fingerprint of the tenant name (FNV-1a over the
    /// UTF-8 bytes).  The default tenant's fingerprint is, by convention,
    /// `0` — see [`TenantId::fold`].
    pub fn fingerprint(&self) -> u64 {
        if self.is_default() {
            return 0;
        }
        let mut hash = FNV_OFFSET;
        for byte in self.0.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// Folds this tenant into a snapshot-derived fingerprint.
    ///
    /// For the default tenant this is the **identity**, so single-tenant
    /// cache keys (and persisted cache files) stay byte-compatible with
    /// pre-tenancy releases.  For named tenants the fold is an FNV-style
    /// mix of the tenant fingerprint into the input, so keys from different
    /// tenants land in disjoint fingerprint spaces.
    pub fn fold(&self, fingerprint: u64) -> u64 {
        let tenant = self.fingerprint();
        if tenant == 0 {
            return fingerprint;
        }
        let mut hash = FNV_OFFSET ^ tenant;
        for byte in fingerprint.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }
}

impl Default for TenantId {
    fn default() -> Self {
        TenantId(Arc::from(DEFAULT_TENANT))
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(name: &str) -> Self {
        TenantId::new(name)
    }
}

impl From<String> for TenantId {
    fn from(name: String) -> Self {
        TenantId::new(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tenant_folds_as_identity() {
        let tenant = TenantId::default();
        assert!(tenant.is_default());
        assert_eq!(tenant.fingerprint(), 0);
        for fp in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(tenant.fold(fp), fp);
        }
    }

    #[test]
    fn empty_names_normalize_to_default() {
        assert!(TenantId::new("").is_default());
        assert!(TenantId::new("   ").is_default());
        assert_eq!(TenantId::new("default"), TenantId::default());
        assert_eq!(TenantId::new("  acme  ").as_str(), "acme");
    }

    #[test]
    fn named_tenants_perturb_every_fingerprint() {
        let acme = TenantId::new("acme");
        let globex = TenantId::new("globex");
        assert_ne!(acme.fingerprint(), 0);
        assert_ne!(acme.fingerprint(), globex.fingerprint());
        for fp in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_ne!(acme.fold(fp), fp, "named fold must not be identity");
            assert_ne!(acme.fold(fp), globex.fold(fp), "tenants must not collide");
        }
    }

    #[test]
    fn fold_is_deterministic_and_injective_per_tenant() {
        let tenant = TenantId::new("acme");
        assert_eq!(tenant.fold(42), tenant.fold(42));
        // Different inputs keep distinct outputs (FNV over 8 bytes mixes
        // every input bit into the result).
        assert_ne!(tenant.fold(1), tenant.fold(2));
    }

    #[test]
    fn display_and_from_round_trip() {
        let tenant = TenantId::from("acme");
        assert_eq!(tenant.to_string(), "acme");
        assert_eq!(TenantId::from(String::from("acme")), tenant);
    }
}
