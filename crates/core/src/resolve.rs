//! Helpers that resolve metadata-graph nodes back to catalog names.
//!
//! The metadata graph attaches both the "business" phrasing (`trade order td`)
//! and the physical identifier (`trade_order_td`) as labels; when the pipeline
//! needs to emit SQL it must pick the label that actually exists in the
//! database catalog.

use soda_metagraph::builder::preds;
use soda_metagraph::{MetaGraph, NodeId};
use soda_relation::Database;

/// All text labels attached to `node` through `predicate`.
pub fn texts_of(graph: &MetaGraph, node: NodeId, predicate: &str) -> Vec<String> {
    let Some(pred) = graph.find_predicate(predicate) else {
        return Vec::new();
    };
    graph
        .outgoing(node)
        .iter()
        .filter_map(|(p, o)| {
            if *p == pred {
                o.as_text().map(|l| graph.label_text(l).to_string())
            } else {
                None
            }
        })
        .collect()
}

/// Resolves a physical-table node to the table name used in the catalog.
pub fn table_name(graph: &MetaGraph, node: NodeId, db: &Database) -> Option<String> {
    let labels = texts_of(graph, node, preds::TABLENAME);
    if labels.is_empty() {
        return None;
    }
    labels
        .iter()
        .find(|l| db.has_table(l))
        .or_else(|| labels.last())
        .cloned()
}

/// Resolves a physical-column node to `(table name, column name)`.
pub fn column_name(graph: &MetaGraph, node: NodeId, db: &Database) -> Option<(String, String)> {
    let table_node = graph.subjects_of(node, preds::COLUMN).into_iter().next()?;
    let table = table_name(graph, table_node, db)?;
    let labels = texts_of(graph, node, preds::COLUMNNAME);
    if labels.is_empty() {
        return None;
    }
    let column = db
        .table(&table)
        .ok()
        .and_then(|t| {
            labels
                .iter()
                .find(|l| t.schema().column_index(l).is_some())
                .cloned()
        })
        .or_else(|| labels.last().cloned())?;
    Some((table, column))
}

/// If `node` is a physical column, returns its `(table, column)`; if it is a
/// physical table, returns `None` for the column part.
pub fn node_target(
    graph: &MetaGraph,
    node: NodeId,
    db: &Database,
) -> Option<(String, Option<String>)> {
    if let Some((t, c)) = column_name(graph, node, db) {
        return Some((t, Some(c)));
    }
    table_name(graph, node, db).map(|t| (t, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_metagraph::GraphBuilder;
    use soda_relation::{DataType, TableSchema};

    fn fixtures() -> (MetaGraph, Database) {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("trade_order_td")
                .column("order_id", DataType::Int)
                .column("order_dt", DataType::Date)
                .primary_key("order_id")
                .build(),
        )
        .unwrap();
        let mut b = GraphBuilder::new();
        let t = b.physical_table("phys/trade_order_td", "trade order td");
        b.text(t, preds::TABLENAME, "trade_order_td");
        let c = b.physical_column(t, "phys/trade_order_td/order_dt", "order dt");
        b.text(c, preds::COLUMNNAME, "order_dt");
        (b.build(), db)
    }

    #[test]
    fn table_resolution_prefers_the_catalog_name() {
        let (g, db) = fixtures();
        let node = g.node("phys/trade_order_td").unwrap();
        assert_eq!(table_name(&g, node, &db), Some("trade_order_td".into()));
    }

    #[test]
    fn column_resolution_prefers_the_schema_name() {
        let (g, db) = fixtures();
        let node = g.node("phys/trade_order_td/order_dt").unwrap();
        assert_eq!(
            column_name(&g, node, &db),
            Some(("trade_order_td".into(), "order_dt".into()))
        );
        assert_eq!(
            node_target(&g, node, &db),
            Some(("trade_order_td".into(), Some("order_dt".into())))
        );
    }

    #[test]
    fn node_target_of_a_table_has_no_column() {
        let (g, db) = fixtures();
        let node = g.node("phys/trade_order_td").unwrap();
        assert_eq!(
            node_target(&g, node, &db),
            Some(("trade_order_td".into(), None))
        );
    }

    #[test]
    fn missing_labels_resolve_to_none() {
        let (mut g, db) = {
            let (g, db) = fixtures();
            (g, db)
        };
        let bare = g.add_node("phys/bare");
        assert_eq!(table_name(&g, bare, &db), None);
        assert_eq!(column_name(&g, bare, &db), None);
    }
}
