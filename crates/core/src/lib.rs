//! # soda-core
//!
//! The SODA engine — the primary contribution of *"SODA: Generating SQL for
//! Business Users"* (PVLDB 5(10), 2012).
//!
//! Business users pose queries as keywords plus a handful of operators
//! (comparisons, `date(…)`, `sum`/`count`, `group by`, `top N`).  SODA
//! translates each query into a ranked list of executable SQL statements in
//! five steps (Figure 4 of the paper):
//!
//! 1. **Lookup** — match keywords against a classification index over every
//!    metadata label (domain ontology, conceptual / logical / physical schema,
//!    DBpedia synonyms) and against the base data through an inverted index.
//! 2. **Rank and top N** — score every combination of entry points by
//!    provenance and keep the best N.
//! 3. **Tables** — traverse the metadata graph from the entry points, testing
//!    the Table / Column / Inheritance-Child *graph patterns* to find the
//!    participating tables, then select join conditions on direct paths
//!    between the entry points, add inheritance parents and bridge tables.
//! 4. **Filters** — collect filter conditions from the query, the base-data
//!    hits and metadata-defined business terms ("wealthy customers").
//! 5. **SQL** — combine everything into executable SQL.
//!
//! ```
//! use soda_core::{SodaConfig, SodaEngine};
//!
//! let warehouse = soda_warehouse::minibank::build(42);
//! let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());
//! let results = engine.search("Sara Guttinger").unwrap();
//! assert!(!results.is_empty());
//! assert!(results[0].sql.starts_with("SELECT"));
//! ```

pub mod budget;
pub mod classification;
pub mod codec;
pub mod config;
pub mod engine;
pub mod error;
pub mod feedback;
pub mod handle;
pub mod joins;
pub mod patterns;
pub mod pipeline;
pub mod provenance;
pub mod query;
pub mod resolve;
pub mod result;
pub mod shard;
pub mod snapshot;
pub mod suggest;
pub mod tenant;

pub use budget::ProbeBudget;
pub use classification::ClassificationIndex;
pub use config::{RankingWeights, SodaConfig};
pub use engine::SodaEngine;
pub use error::{Result, SodaError};
pub use feedback::FeedbackStore;
pub use handle::{AbsorbOutcome, SnapshotHandle};
pub use joins::{BridgeTable, HistorizationLink, InheritanceLink, JoinCatalog, JoinEdge};
pub use patterns::SodaPatterns;
pub use pipeline::lookup::LookupResult;
pub use provenance::Provenance;
pub use query::{normalize_query, parse_query, QueryTerm, QueryValue, SodaQuery};
pub use result::{Interpretation, QueryTrace, ResultPage, SodaResult, StepTimings};
pub use shard::{ProbeDep, ProbeRecorder, ShardProbes, ShardStats};
pub use snapshot::{EngineSnapshot, RetentionGate};
pub use suggest::TermSuggestion;
pub use tenant::TenantId;

// Re-exported so hot-swap callers (the serving layer hands new databases,
// metadata graphs and change feeds to `SnapshotHandle`) need no direct
// dependency on the lower crates.
pub use soda_ingest::{ChangeFeed, CompactionPolicy, IngestReport, RowEvent};
pub use soda_metagraph::MetaGraph;
pub use soda_relation::{Database, Value};
// Re-exported so callers of the observed search paths can name sinks and
// span trees without a direct `soda-trace` dependency.  (`QueryTrace` above
// is this crate's per-query pipeline report; the span tree a collecting
// sink folds into is `soda_trace::QueryTrace` — reach it via `trace::`.)
pub use soda_trace as trace;
pub use soda_trace::{CollectingSink, NoopSink, SpanId, TraceSink};
