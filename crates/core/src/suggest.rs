//! Query-refinement suggestions (extension).
//!
//! The paper's related-work discussion (§6.3) highlights NaLIX's behaviour of
//! telling the user *why* a query term could not be classified and suggesting
//! reformulations, and SODA's own war stories show business users iterating
//! on their keywords.  This module provides that feedback loop: for every
//! input word the lookup step could not match, it proposes the closest phrases
//! of the classification index (metadata labels across all layers), ranked by
//! a combination of prefix/substring affinity and edit distance.

use crate::classification::ClassificationIndex;

/// Suggested reformulations for one unmatched input term.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct TermSuggestion {
    /// The unmatched input word.
    pub term: String,
    /// Metadata phrases the user probably meant, best first.
    pub candidates: Vec<String>,
}

/// Levenshtein edit distance between two strings (over characters).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let substitution = prev[j] + usize::from(ca != cb);
            current[j + 1] = substitution.min(prev[j + 1] + 1).min(current[j] + 1);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// Similarity score between an unmatched term and a candidate phrase; higher
/// is better, `None` when the candidate is not worth suggesting.
fn affinity(term: &str, phrase: &str) -> Option<f64> {
    let term = term.to_lowercase();
    let phrase_lower = phrase.to_lowercase();
    if term.is_empty() || phrase_lower.is_empty() {
        return None;
    }
    // Word-level containment: "address" vs "addresses", "name" vs "family name".
    let word_hit = phrase_lower
        .split_whitespace()
        .any(|w| w.starts_with(&term) || term.starts_with(w));
    // Edit distance against the closest word of the phrase.
    let best_distance = phrase_lower
        .split_whitespace()
        .map(|w| edit_distance(&term, w))
        .min()
        .unwrap_or(usize::MAX);
    let longest = term.len().max(
        phrase_lower
            .split_whitespace()
            .map(str::len)
            .max()
            .unwrap_or(1),
    );
    let normalized = 1.0 - best_distance as f64 / longest as f64;

    // Keep candidates that share a prefix or are within ~1/3 edits of a word.
    let close_enough = word_hit || best_distance * 3 <= term.len().max(3);
    if !close_enough {
        return None;
    }
    let mut score = normalized;
    if word_hit {
        score += 0.5;
    }
    // Prefer short phrases: "addresses" over "addresses of organizations".
    score -= 0.01 * phrase_lower.split_whitespace().count() as f64;
    Some(score)
}

/// Proposes up to `limit` reformulations for one unmatched term.
pub fn suggest_for_term(
    classification: &ClassificationIndex,
    term: &str,
    limit: usize,
) -> Vec<String> {
    let mut scored: Vec<(f64, &str)> = classification
        .phrases()
        .filter_map(|phrase| affinity(term, phrase).map(|score| (score, phrase)))
        .collect();
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.len().cmp(&b.1.len()))
            .then(a.1.cmp(b.1))
    });
    scored
        .into_iter()
        .take(limit)
        .map(|(_, phrase)| phrase.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_metagraph::GraphBuilder;

    fn index() -> ClassificationIndex {
        let mut b = GraphBuilder::new();
        let addresses = b.physical_table("phys/addresses", "addresses");
        b.physical_column(addresses, "phys/addresses/city", "city");
        let individuals = b.physical_table("phys/individuals", "individuals");
        b.physical_column(individuals, "phys/individuals/family_name", "family name");
        b.ontology_concept("onto/private-customers", "private customers");
        let g = b.build();
        ClassificationIndex::build(&g, true)
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("address", "addresses"), 2);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("same", "same"), 0);
    }

    #[test]
    fn singular_term_suggests_the_plural_label() {
        let idx = index();
        let suggestions = suggest_for_term(&idx, "address", 3);
        assert_eq!(suggestions.first().map(String::as_str), Some("addresses"));
    }

    #[test]
    fn typo_suggests_the_intended_phrase() {
        let idx = index();
        let suggestions = suggest_for_term(&idx, "custmers", 3);
        assert!(
            suggestions.iter().any(|s| s == "private customers"),
            "{suggestions:?}"
        );
        // A word contained in a multi-word label is suggested too.
        let suggestions = suggest_for_term(&idx, "family", 3);
        assert!(suggestions.iter().any(|s| s == "family name"));
    }

    #[test]
    fn unrelated_terms_get_no_suggestions() {
        let idx = index();
        assert!(suggest_for_term(&idx, "xylophone", 3).is_empty());
        assert!(suggest_for_term(&idx, "", 3).is_empty());
    }

    #[test]
    fn limit_caps_the_number_of_candidates() {
        let idx = index();
        assert!(suggest_for_term(&idx, "c", 1).len() <= 1);
    }
}
