//! Relevance feedback on result interpretations (extension).
//!
//! §6.3 of the paper: "SODA presents several possible solutions to its users
//! and allows them to like (or dislike) each result", in the spirit of the
//! query-refinement work of Ortega-Binderberger et al.  This module implements
//! that feedback loop: a [`FeedbackStore`] accumulates votes on the
//! *interpretation* of a result — which metadata-graph node each phrase was
//! resolved against — and the engine folds the accumulated votes into the
//! Step 2 ranking of later queries
//! ([`crate::engine::SodaEngine::search_with_feedback`]).
//!
//! Votes are keyed by `(phrase, entry-point URI)` rather than by SQL text so
//! that feedback generalises: disliking the agreement interpretation of
//! "Credit Suisse" demotes *every* future interpretation that resolves the
//! phrase against `phys/agreement_td/agreement_name`, not just the one
//! statement the user saw — while leaving the organization interpretation of
//! the same phrase untouched.

use std::collections::HashMap;

use crate::result::SodaResult;

/// Accumulated like/dislike votes on interpretation choices.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct FeedbackStore {
    /// Net votes per (lower-cased phrase, entry-point URI): likes minus
    /// dislikes.
    votes: HashMap<(String, String), i64>,
    /// Weight of one net vote in the ranking score.
    vote_weight: f64,
    /// Cap on the absolute score adjustment per entry point.
    max_adjustment: f64,
}

impl Default for FeedbackStore {
    fn default() -> Self {
        Self::new()
    }
}

impl FeedbackStore {
    /// An empty store with the default vote weight (0.15 per net vote, capped
    /// at ±0.45 — enough for three consistent votes to outweigh one provenance
    /// tier of the default [`crate::RankingWeights`]).
    pub fn new() -> Self {
        Self {
            votes: HashMap::new(),
            vote_weight: 0.15,
            max_adjustment: 0.45,
        }
    }

    /// Overrides the per-vote weight and the adjustment cap.
    pub fn with_weights(vote_weight: f64, max_adjustment: f64) -> Self {
        Self {
            votes: HashMap::new(),
            vote_weight,
            max_adjustment: max_adjustment.abs(),
        }
    }

    /// Records that the user liked a result: every phrase → entry-point choice
    /// of its interpretation receives a positive vote.
    pub fn like(&mut self, result: &SodaResult) {
        for choice in &result.interpretation {
            self.vote(&choice.phrase, &choice.entry_uri, 1);
        }
    }

    /// Records that the user disliked a result.
    pub fn dislike(&mut self, result: &SodaResult) {
        for choice in &result.interpretation {
            self.vote(&choice.phrase, &choice.entry_uri, -1);
        }
    }

    /// Records an explicit vote (positive = like) for resolving `phrase`
    /// against the metadata node `entry_uri`.
    pub fn vote(&mut self, phrase: &str, entry_uri: &str, delta: i64) {
        *self
            .votes
            .entry((phrase.to_lowercase(), entry_uri.to_string()))
            .or_insert(0) += delta;
    }

    /// Net votes recorded for a phrase / entry-point pair.
    pub fn net_votes(&self, phrase: &str, entry_uri: &str) -> i64 {
        self.votes
            .get(&(phrase.to_lowercase(), entry_uri.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// The ranking-score adjustment for resolving `phrase` against
    /// `entry_uri`: net votes times the vote weight, clamped to the configured
    /// maximum so runaway feedback cannot drown the provenance heuristic
    /// entirely.
    pub fn adjustment(&self, phrase: &str, entry_uri: &str) -> f64 {
        let raw = self.net_votes(phrase, entry_uri) as f64 * self.vote_weight;
        raw.clamp(-self.max_adjustment, self.max_adjustment)
    }

    /// True when no votes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }

    /// Number of distinct phrase / entry-point pairs with recorded votes.
    pub fn len(&self) -> usize {
        self.votes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::Provenance;
    use crate::result::Interpretation;

    fn result_with(interpretation: Vec<Interpretation>) -> SodaResult {
        SodaResult {
            sql: "SELECT * FROM t".into(),
            statement: soda_relation::parse_select("SELECT * FROM t").unwrap(),
            score: 1.0,
            tables: vec!["t".into()],
            interpretation,
            join_path_complete: true,
            used_bridges: vec![],
            notes: vec![],
        }
    }

    fn choice(phrase: &str, uri: &str) -> Interpretation {
        Interpretation {
            phrase: phrase.into(),
            provenance: Provenance::BaseData,
            entry_uri: uri.into(),
        }
    }

    #[test]
    fn likes_and_dislikes_accumulate_per_phrase_and_entry_point() {
        let mut store = FeedbackStore::new();
        assert!(store.is_empty());
        let org = result_with(vec![choice("credit suisse", "phys/organization/org_name")]);
        store.like(&org);
        store.like(&org);
        store.dislike(&org);
        assert_eq!(
            store.net_votes("Credit Suisse", "phys/organization/org_name"),
            1
        );
        // The agreement interpretation of the same phrase is unaffected.
        assert_eq!(
            store.net_votes("credit suisse", "phys/agreement_td/agreement_name"),
            0
        );
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn adjustment_is_proportional_and_clamped() {
        let mut store = FeedbackStore::new();
        store.vote("customers", "onto/customers", 2);
        assert!((store.adjustment("customers", "onto/customers") - 0.30).abs() < 1e-9);
        store.vote("customers", "onto/customers", 10);
        assert!((store.adjustment("customers", "onto/customers") - 0.45).abs() < 1e-9);
        store.vote("customers", "onto/customers", -100);
        assert!((store.adjustment("customers", "onto/customers") + 0.45).abs() < 1e-9);
    }

    #[test]
    fn custom_weights_change_the_adjustment_scale() {
        let mut store = FeedbackStore::with_weights(0.5, 2.0);
        store.vote("sara", "phys/individual/given_name", 3);
        assert!((store.adjustment("sara", "phys/individual/given_name") - 1.5).abs() < 1e-9);
        assert_eq!(
            store.adjustment("sara", "phys/individual_name_hist/given_name"),
            0.0
        );
    }

    #[test]
    fn feedback_is_case_insensitive_on_the_phrase() {
        let mut store = FeedbackStore::new();
        let r = result_with(vec![choice(
            "Financial Instruments",
            "concept/financial_instruments",
        )]);
        store.dislike(&r);
        assert_eq!(
            store.net_votes("financial instruments", "concept/financial_instruments"),
            -1
        );
        assert!(store.adjustment("financial instruments", "concept/financial_instruments") < 0.0);
    }
}
