//! Entry-point provenance: where in the metadata graph (or base data) a
//! keyword was found.  Figure 5 of the paper classifies each keyword of the
//! example query by exactly these categories, and Step 2 ranks solutions by
//! them.

use soda_metagraph::builder::types;
use soda_metagraph::{MetaGraph, NodeId};

/// Where a keyword match was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum Provenance {
    /// The domain ontology (highest ranked: built by domain experts).
    DomainOntology,
    /// The conceptual (business) schema layer.
    ConceptualSchema,
    /// The logical schema layer.
    LogicalSchema,
    /// The physical schema layer (table/column names).
    PhysicalSchema,
    /// The base data, through the inverted index.
    BaseData,
    /// A DBpedia synonym (lowest ranked).
    DbPedia,
}

impl Provenance {
    /// Classifies a metadata-graph node by its `type` edge.  Returns `None`
    /// for nodes that are not valid lookup targets (filters, join nodes,
    /// inheritance nodes, type nodes themselves).
    pub fn of_node(graph: &MetaGraph, node: NodeId) -> Option<Provenance> {
        if graph.has_type(node, types::ONTOLOGY_CONCEPT) {
            Some(Provenance::DomainOntology)
        } else if graph.has_type(node, types::CONCEPTUAL_ENTITY)
            || graph.has_type(node, types::CONCEPTUAL_ATTRIBUTE)
        {
            Some(Provenance::ConceptualSchema)
        } else if graph.has_type(node, types::LOGICAL_ENTITY)
            || graph.has_type(node, types::LOGICAL_ATTRIBUTE)
        {
            Some(Provenance::LogicalSchema)
        } else if graph.has_type(node, types::PHYSICAL_TABLE)
            || graph.has_type(node, types::PHYSICAL_COLUMN)
        {
            Some(Provenance::PhysicalSchema)
        } else if graph.has_type(node, types::DBPEDIA_TERM) {
            Some(Provenance::DbPedia)
        } else {
            None
        }
    }

    /// Short label used in reports and traces.
    pub fn label(self) -> &'static str {
        match self {
            Provenance::DomainOntology => "domain ontology",
            Provenance::ConceptualSchema => "conceptual schema",
            Provenance::LogicalSchema => "logical schema",
            Provenance::PhysicalSchema => "physical schema",
            Provenance::BaseData => "base data",
            Provenance::DbPedia => "DBpedia",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_metagraph::GraphBuilder;

    #[test]
    fn classification_by_node_type() {
        let mut b = GraphBuilder::new();
        let table = b.physical_table("phys/t", "t");
        let col = b.physical_column(table, "phys/t/c", "c");
        let onto = b.ontology_concept("onto/x", "x");
        let logical = b.named_node("logical/y", types::LOGICAL_ENTITY, "y");
        let conceptual = b.named_node("concept/z", types::CONCEPTUAL_ENTITY, "z");
        let dbp = b.dbpedia_synonym("dbpedia/w", "w", onto);
        let inh = b.inheritance("inh/t", table, &[col, col]);
        let g = b.build();

        assert_eq!(
            Provenance::of_node(&g, table),
            Some(Provenance::PhysicalSchema)
        );
        assert_eq!(
            Provenance::of_node(&g, col),
            Some(Provenance::PhysicalSchema)
        );
        assert_eq!(
            Provenance::of_node(&g, onto),
            Some(Provenance::DomainOntology)
        );
        assert_eq!(
            Provenance::of_node(&g, logical),
            Some(Provenance::LogicalSchema)
        );
        assert_eq!(
            Provenance::of_node(&g, conceptual),
            Some(Provenance::ConceptualSchema)
        );
        assert_eq!(Provenance::of_node(&g, dbp), Some(Provenance::DbPedia));
        assert_eq!(Provenance::of_node(&g, inh), None);
    }

    #[test]
    fn labels_are_human_readable() {
        assert_eq!(Provenance::DomainOntology.label(), "domain ontology");
        assert_eq!(Provenance::BaseData.label(), "base data");
    }
}
