//! The SODA engine: ties the five pipeline steps together.
//!
//! An engine is constructed once per warehouse (it builds the inverted index
//! over the base data, the classification index over the metadata labels and
//! the join catalog) and then answers any number of keyword queries, each
//! returning a ranked list of executable SQL statements — the paper's "result
//! page" from which the business user picks.
//!
//! Two ownership modes exist:
//!
//! * [`SodaEngine`] borrows its [`Database`] and [`MetaGraph`] — the original
//!   one-shot shape, convenient for examples and experiments where the
//!   warehouse outlives the engine on the stack.
//! * [`EngineSnapshot`] owns them behind
//!   [`Arc`]s — the serving shape: `Send + Sync`, can outlive
//!   its builder and be shared across a worker pool (see the `soda-service`
//!   crate).  [`SodaEngine::into_shared`] converts the former into the latter
//!   without rebuilding the indexes.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use soda_metagraph::MetaGraph;
use soda_relation::{print_select, Database, ResultSet, ShardedInvertedIndex};
use soda_trace::{names, NoopSink, SpanId, TraceSink};

use crate::classification::ClassificationIndex;
use crate::config::SodaConfig;
use crate::error::Result;
use crate::feedback::FeedbackStore;
use crate::joins::JoinCatalog;
use crate::patterns::SodaPatterns;
use crate::pipeline::lookup::LookupResult;
use crate::pipeline::{filters, lookup, rank, sqlgen, tables, PipelineContext};
use crate::query::parse_query;
use crate::result::{Interpretation, QueryTrace, ResultPage, SodaResult, StepTimings};
use crate::shard::{ShardProbes, ShardStats};
use crate::snapshot::EngineSnapshot;
use crate::suggest::{suggest_for_term, TermSuggestion};

/// The built, immutable engine state: configuration plus every index the
/// pipeline consults.  It is deliberately independent of *how* the base data
/// and the metadata graph are owned, so the borrowed [`SodaEngine`] and the
/// owned [`EngineSnapshot`](crate::snapshot::EngineSnapshot) share one
/// implementation of the five-step pipeline.
///
/// Both indexes are partitioned into `config.shards` shards by stable hashes
/// (classification by phrase, inverted index by owning table); the lookup
/// step fans base-data probes out across the inverted-index shards and bumps
/// the per-shard [`ShardProbes`] counters.
///
/// Everything expensive sits behind [`Arc`]s (the index shards internally,
/// the join catalog and the probe counters here), so the hot-swap derive
/// paths ([`derive_with_rebuilt_tables`](Self::derive_with_rebuilt_tables),
/// [`derive_with_refreshed_graph`](Self::derive_with_refreshed_graph)) build
/// a next-generation core that shares every untouched structure with its
/// parent instead of copying it.
pub(crate) struct EngineCore {
    config: SodaConfig,
    patterns: SodaPatterns,
    classification: ClassificationIndex,
    index: Option<ShardedInvertedIndex>,
    joins: Arc<JoinCatalog>,
    probes: Arc<ShardProbes>,
    /// Per-shard index sizes, computed once at build: the indexes are
    /// immutable afterwards, and recounting postings on every metrics poll
    /// would be O(distinct tokens).
    sizes: ShardSizes,
}

/// Immutable per-shard size vectors of the built indexes (side-log gauges
/// included — the logs are immutable within one snapshot generation too).
#[derive(Clone)]
struct ShardSizes {
    classification_phrases: Vec<usize>,
    index_tokens: Vec<usize>,
    index_postings: Vec<usize>,
    log_postings: Vec<usize>,
    log_rows: Vec<usize>,
    log_masks: Vec<usize>,
}

impl ShardSizes {
    fn of(classification: &ClassificationIndex, index: Option<&ShardedInvertedIndex>) -> Self {
        let (index_tokens, index_postings, log_postings, log_rows, log_masks) = match index {
            Some(index) => (
                index.shards().iter().map(|s| s.token_count()).collect(),
                index.shards().iter().map(|s| s.posting_count()).collect(),
                index.side_log_postings(),
                index.side_log_rows(),
                index.side_log_masks(),
            ),
            None => (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new()),
        };
        Self {
            classification_phrases: classification.shard_sizes(),
            index_tokens,
            index_postings,
            log_postings,
            log_rows,
            log_masks,
        }
    }
}

impl EngineCore {
    /// Builds the sharded classification index, the sharded inverted index
    /// (when enabled) and the join catalog for a warehouse.
    pub(crate) fn build(
        db: &Database,
        graph: &MetaGraph,
        config: SodaConfig,
        patterns: SodaPatterns,
    ) -> Self {
        let shards = config.shards.max(1);
        let classification = ClassificationIndex::build_sharded(graph, config.use_dbpedia, shards);
        let index = if config.use_inverted_index {
            Some(ShardedInvertedIndex::build_sharded(db, shards))
        } else {
            None
        };
        let joins = Arc::new(JoinCatalog::build(graph, &patterns, db));
        let sizes = ShardSizes::of(&classification, index.as_ref());
        Self {
            config,
            patterns,
            classification,
            index,
            joins,
            probes: Arc::new(ShardProbes::new(shards)),
            sizes,
        }
    }

    /// Derives a next-generation core for a database in which only `tables`
    /// changed: the inverted-index partitions owning those tables are rebuilt
    /// from `db`, everything else (classification, join catalog, probe
    /// counters, the untouched index partitions) is shared with `self`.
    /// Returns the derived core plus the rebuilt partition indexes, sorted.
    ///
    /// The join catalog reads the database only to resolve schema-level
    /// names, so a data-only delta cannot change it — which is what makes
    /// sharing it here sound.
    pub(crate) fn derive_with_rebuilt_tables(
        &self,
        db: &Database,
        tables: &[String],
    ) -> (Self, Vec<usize>) {
        let affected = self.shards_for_tables(tables);
        (self.derive_with_rebuilt_partitions(db, &affected), affected)
    }

    /// The partitions owning `tables`, sorted and deduplicated.
    pub(crate) fn shards_for_tables(&self, tables: &[String]) -> Vec<usize> {
        let shard_count = self.config.shards.max(1);
        let mut affected: Vec<usize> = tables
            .iter()
            .map(|t| soda_relation::shard_for_table(t, shard_count))
            .collect();
        affected.sort_unstable();
        affected.dedup();
        affected
    }

    /// Derives a next-generation core in which exactly the inverted-index
    /// partitions named by `affected` are rebuilt from `db` (folding — and
    /// clearing — their side logs); everything else is shared with `self`.
    /// This is both the tail of [`derive_with_rebuilt_tables`] and the whole
    /// of a side-log compaction, where `db` is the *current* database (its
    /// rows already include everything the logs index).
    /// A structurally identical core sharing every built structure with
    /// `self` — the indexes clone by `Arc` internally, so this is cheap.
    /// Used by recovery to restamp a snapshot's generation vector without
    /// rebuilding anything.
    pub(crate) fn share(&self) -> Self {
        Self {
            config: self.config.clone(),
            patterns: self.patterns.clone(),
            classification: self.classification.clone(),
            index: self.index.clone(),
            joins: Arc::clone(&self.joins),
            probes: Arc::clone(&self.probes),
            sizes: self.sizes.clone(),
        }
    }

    pub(crate) fn derive_with_rebuilt_partitions(&self, db: &Database, affected: &[usize]) -> Self {
        let index = self
            .index
            .as_ref()
            .map(|index| index.with_rebuilt_shards(db, affected));
        let sizes = ShardSizes::of(&self.classification, index.as_ref());
        Self {
            config: self.config.clone(),
            patterns: self.patterns.clone(),
            classification: self.classification.clone(),
            index,
            joins: Arc::clone(&self.joins),
            probes: Arc::clone(&self.probes),
            sizes,
        }
    }

    /// Derives a next-generation core that has absorbed a row-level change
    /// feed: the events are applied to a copy of `db` and their indexed
    /// consequences routed into per-shard side logs — **no frozen partition
    /// is rebuilt**, queries merge log and partition on the fly.  Returns
    /// the new database, the derived core and the ingest report (sizes plus
    /// touched shards).  With the inverted index disabled only the base data
    /// moves.
    ///
    /// The feed is consumed: appended rows move by value into the
    /// copy-on-write database derive, and the derive itself shares every
    /// table (and side log) the feed does not touch, so the cost is
    /// proportional to the delta, not the warehouse.
    pub(crate) fn derive_with_ingested(
        &self,
        db: &Database,
        feed: soda_ingest::ChangeFeed,
    ) -> soda_relation::Result<(Database, Self, soda_ingest::IngestReport)> {
        let ingestor = soda_ingest::Ingestor::new(self.config.shards.max(1));
        let mut next = db.clone();
        let (index, report) = match &self.index {
            Some(index) => {
                // Clone only the logs the feed will touch (the others get
                // cheap empty placeholders and are `Arc`-shared afterwards),
                // so an ingest never copies the accumulated overlays of
                // unrelated shards.
                let will_touch: Vec<usize> = self.shards_for_tables(&feed.tables());
                let mut logs: Vec<soda_relation::SideLog> = index
                    .side_logs()
                    .iter()
                    .enumerate()
                    .map(|(i, log)| {
                        if will_touch.contains(&i) {
                            (**log).clone()
                        } else {
                            soda_relation::SideLog::default()
                        }
                    })
                    .collect();
                let report = ingestor.absorb_feed(&mut next, &mut logs, feed)?;
                debug_assert_eq!(
                    report.touched_shards, will_touch,
                    "ingestor routing must agree with shards_for_tables"
                );
                let patches: Vec<(usize, soda_relation::SideLog)> = report
                    .touched_shards
                    .iter()
                    .map(|&shard| (shard, std::mem::take(&mut logs[shard])))
                    .collect();
                (Some(index.with_patched_side_logs(patches)), report)
            }
            None => {
                let report = ingestor.apply_feed(&mut next, feed)?;
                (None, report)
            }
        };
        let sizes = ShardSizes::of(&self.classification, index.as_ref());
        Ok((
            next,
            Self {
                config: self.config.clone(),
                patterns: self.patterns.clone(),
                classification: self.classification.clone(),
                index,
                joins: Arc::clone(&self.joins),
                probes: Arc::clone(&self.probes),
                sizes,
            },
            report,
        ))
    }

    /// The shards currently carrying a non-empty side log — compaction
    /// candidates.
    pub(crate) fn shards_with_side_logs(&self) -> Vec<usize> {
        self.index
            .as_ref()
            .map(|index| {
                index
                    .side_logs()
                    .iter()
                    .enumerate()
                    .filter(|(_, log)| !log.is_empty())
                    .map(|(i, _)| i)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Derives a next-generation core for a refreshed metadata graph over an
    /// unchanged database: the classification index is rebuilt but shares
    /// every partition whose content survived the refresh
    /// ([`ClassificationIndex::rebuild_shared`]), the join catalog is rebuilt
    /// (it is graph-derived), and the inverted index and probe counters are
    /// shared.  Returns the derived core plus the per-partition `changed`
    /// vector of the classification rebuild.
    pub(crate) fn derive_with_refreshed_graph(
        &self,
        db: &Database,
        graph: &MetaGraph,
    ) -> (Self, Vec<bool>) {
        let (classification, changed) = self
            .classification
            .rebuild_shared(graph, self.config.use_dbpedia);
        let joins = Arc::new(JoinCatalog::build(graph, &self.patterns, db));
        let sizes = ShardSizes::of(&classification, self.index.as_ref());
        (
            Self {
                config: self.config.clone(),
                patterns: self.patterns.clone(),
                classification,
                index: self.index.clone(),
                joins,
                probes: Arc::clone(&self.probes),
                sizes,
            },
            changed,
        )
    }

    pub(crate) fn config(&self) -> &SodaConfig {
        &self.config
    }

    pub(crate) fn join_catalog(&self) -> &JoinCatalog {
        &self.joins
    }

    pub(crate) fn classification_index(&self) -> &ClassificationIndex {
        &self.classification
    }

    pub(crate) fn inverted_index(&self) -> Option<&ShardedInvertedIndex> {
        self.index.as_ref()
    }

    /// Per-shard sizes of both indexes (precomputed at build) plus the live
    /// probe counters — cheap enough for every metrics poll.  The generation
    /// vector is zeroed here; [`EngineSnapshot`](crate::EngineSnapshot)
    /// overlays its own.
    pub(crate) fn shard_stats(&self) -> ShardStats {
        let shards = self.config.shards.max(1);
        ShardStats {
            shards,
            classification_phrases: self.sizes.classification_phrases.clone(),
            index_tokens: self.sizes.index_tokens.clone(),
            index_postings: self.sizes.index_postings.clone(),
            log_postings: self.sizes.log_postings.clone(),
            log_rows: self.sizes.log_rows.clone(),
            log_masks: self.sizes.log_masks.clone(),
            probes: self.probes.counts(),
            generations: vec![0; shards],
        }
    }

    fn context<'a>(
        &'a self,
        db: &'a Database,
        graph: &'a MetaGraph,
        recorder: Option<&'a crate::shard::ProbeRecorder>,
        sink: &'a dyn TraceSink,
    ) -> PipelineContext<'a> {
        PipelineContext {
            db,
            graph,
            config: &self.config,
            classification: &self.classification,
            index: self.index.as_ref(),
            probes: &self.probes,
            recorder,
            sink,
            patterns: &self.patterns,
            joins: &self.joins,
        }
    }

    /// Runs only Step 1 (lookup) for an input — the shard fan-out hot path,
    /// exposed for benchmarks and diagnostics.
    pub(crate) fn lookup(
        &self,
        db: &Database,
        graph: &MetaGraph,
        input: &str,
    ) -> Result<LookupResult> {
        let ctx = self.context(db, graph, None, &NoopSink);
        let query = parse_query(input)?;
        Ok(lookup::run(&ctx, &query, SpanId::NONE))
    }

    pub(crate) fn search_paged(
        &self,
        db: &Database,
        graph: &MetaGraph,
        input: &str,
        page: usize,
        page_size: usize,
        recorder: Option<&crate::shard::ProbeRecorder>,
    ) -> Result<ResultPage> {
        self.search_paged_observed(db, graph, input, page, page_size, recorder, &NoopSink)
            .map(|(page, _)| page)
    }

    /// [`search_paged`](Self::search_paged) with the full observability
    /// surface: probe dependencies into `recorder`, spans into `sink`, and
    /// the per-stage timings returned alongside the page.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn search_paged_observed(
        &self,
        db: &Database,
        graph: &MetaGraph,
        input: &str,
        page: usize,
        page_size: usize,
        recorder: Option<&crate::shard::ProbeRecorder>,
        sink: &dyn TraceSink,
    ) -> Result<(ResultPage, StepTimings)> {
        let page_size = page_size.max(1);
        let needed = (page + 1).saturating_mul(page_size).saturating_add(1);
        let (results, trace) =
            self.search_limited_observed(db, graph, input, None, needed, recorder, sink)?;
        let total_results = results.len();
        let start = (page * page_size).min(total_results);
        let end = (start + page_size).min(total_results);
        Ok((
            ResultPage {
                results: results[start..end].to_vec(),
                page,
                page_size,
                total_results,
                has_next: total_results > end,
            },
            trace.timings,
        ))
    }

    pub(crate) fn suggestions(
        &self,
        db: &Database,
        graph: &MetaGraph,
        input: &str,
    ) -> Result<Vec<TermSuggestion>> {
        let (_, trace) =
            self.search_limited(db, graph, input, None, self.config.max_results, None)?;
        Ok(trace
            .unmatched
            .iter()
            .map(|term| TermSuggestion {
                term: term.clone(),
                candidates: suggest_for_term(&self.classification, term, 5),
            })
            .filter(|s| !s.candidates.is_empty())
            .collect())
    }

    pub(crate) fn search_limited(
        &self,
        db: &Database,
        graph: &MetaGraph,
        input: &str,
        feedback: Option<&FeedbackStore>,
        max_results: usize,
        recorder: Option<&crate::shard::ProbeRecorder>,
    ) -> Result<(Vec<SodaResult>, QueryTrace)> {
        self.search_limited_observed(db, graph, input, feedback, max_results, recorder, &NoopSink)
    }

    /// The five-step pipeline with span reporting.  Stage durations are
    /// measured unconditionally (they always were — the per-query
    /// [`StepTimings`] predate the sink); span construction is guarded by
    /// [`TraceSink::enabled`], so the [`NoopSink`] path adds one virtual
    /// call per stage over the untraced pipeline.
    ///
    /// The lookup and rank stages run once and get live spans; tables,
    /// filters and SQL generation run once *per solution*, so their
    /// accumulated durations are reported as one aggregate span each after
    /// the loop ([`TraceSink::record_span`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn search_limited_observed(
        &self,
        db: &Database,
        graph: &MetaGraph,
        input: &str,
        feedback: Option<&FeedbackStore>,
        max_results: usize,
        recorder: Option<&crate::shard::ProbeRecorder>,
        sink: &dyn TraceSink,
    ) -> Result<(Vec<SodaResult>, QueryTrace)> {
        let ctx = self.context(db, graph, recorder, sink);
        let enabled = sink.enabled();
        let root = if enabled {
            let root = sink.begin_span(names::QUERY, SpanId::NONE);
            sink.annotate(root, "input", input.into());
            root
        } else {
            SpanId::NONE
        };
        let query = parse_query(input)?;
        let mut timings = StepTimings::default();

        // Step 1 — lookup.
        let t0 = Instant::now();
        let lookup_span = if enabled {
            sink.begin_span(names::LOOKUP, root)
        } else {
            SpanId::NONE
        };
        let lookup_result = lookup::run(&ctx, &query, lookup_span);
        if enabled {
            sink.annotate(lookup_span, "terms", lookup_result.matches.len().into());
            sink.annotate(lookup_span, "complexity", lookup_result.complexity().into());
            sink.end_span(lookup_span);
        }
        timings.lookup = t0.elapsed();

        // Step 2 — rank and top N.
        let t0 = Instant::now();
        let rank_span = if enabled {
            sink.begin_span(names::RANK, root)
        } else {
            SpanId::NONE
        };
        let solutions = rank::enumerate_and_rank_boosted(
            &lookup_result,
            &self.config.weights,
            self.config.top_n.max(max_results),
            1_000,
            |entry| {
                feedback
                    .map(|f| f.adjustment(&entry.phrase, graph.uri(entry.node)))
                    .unwrap_or(0.0)
            },
        );
        if enabled {
            sink.annotate(rank_span, "solutions", solutions.len().into());
            sink.end_span(rank_span);
        }
        timings.rank = t0.elapsed();

        let mut results: Vec<SodaResult> = Vec::new();
        let mut seen_sql: HashSet<String> = HashSet::new();

        for solution in &solutions {
            // Step 3 — tables and joins.
            let t0 = Instant::now();
            let mut plan = tables::run(&ctx, solution);
            timings.tables += t0.elapsed();

            // Step 4 — filters.
            let t0 = Instant::now();
            let (filter_exprs, notes) =
                filters::run(&ctx, solution, &mut plan, &lookup_result.constraints);
            timings.filters += t0.elapsed();

            // Step 5 — SQL.
            let t0 = Instant::now();
            let statement = sqlgen::run(&ctx, &plan, &filter_exprs, &lookup_result);
            timings.sql += t0.elapsed();

            let Some(statement) = statement else { continue };
            let sql = print_select(&statement);
            if !seen_sql.insert(sql.clone()) {
                continue;
            }
            results.push(SodaResult {
                sql,
                statement,
                score: solution.score,
                tables: plan.tables.iter().cloned().collect(),
                interpretation: solution
                    .entries
                    .iter()
                    .map(|e| Interpretation {
                        phrase: e.phrase.clone(),
                        provenance: e.provenance,
                        entry_uri: graph.uri(e.node).to_string(),
                    })
                    .collect(),
                join_path_complete: plan.join_path_complete,
                used_bridges: plan.used_bridges.clone(),
                notes,
            });
            if results.len() >= max_results {
                break;
            }
        }

        // Optional compactness re-ranking (BLINKS-inspired extension): among
        // interpretations, the ones that connect their entry points with fewer
        // tables and a complete join path are more likely to reflect the
        // user's intent, so they are promoted.  The paper's default ranking is
        // provenance-only, hence the flag.
        if self.config.compactness_rerank {
            for result in &mut results {
                let extra_tables = result.tables.len().saturating_sub(1) as f64;
                let incomplete = if result.join_path_complete { 0.0 } else { 0.5 };
                result.score /= 1.0 + 0.1 * extra_tables + incomplete;
            }
            results.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }

        if enabled {
            sink.record_span(
                names::TABLES,
                root,
                timings.tables,
                vec![("solutions", solutions.len().into())],
            );
            sink.record_span(names::FILTERS, root, timings.filters, Vec::new());
            sink.record_span(
                names::SQLGEN,
                root,
                timings.sql,
                vec![("results", results.len().into())],
            );
            sink.annotate(root, "results", results.len().into());
            sink.end_span(root);
        }

        let trace = QueryTrace {
            input: input.to_string(),
            complexity: lookup_result.complexity(),
            solutions: solutions.len(),
            results: results.len(),
            classification: lookup_result
                .matches
                .iter()
                .map(|m| {
                    (
                        m.phrase.clone(),
                        m.candidates.iter().map(|c| c.provenance).collect(),
                    )
                })
                .collect(),
            unmatched: lookup_result.unmatched.clone(),
            timings,
        };
        Ok((results, trace))
    }

    pub(crate) fn execute(&self, db: &Database, result: &SodaResult) -> Result<ResultSet> {
        Ok(soda_relation::execute(db, &result.statement)?)
    }

    pub(crate) fn snippet(&self, db: &Database, result: &SodaResult) -> Result<String> {
        let rs = self.execute(db, result)?;
        Ok(rs.snippet(self.config.snippet_rows))
    }
}

/// The SODA engine (borrowed form).
pub struct SodaEngine<'a> {
    db: &'a Database,
    graph: &'a MetaGraph,
    core: EngineCore,
}

impl<'a> SodaEngine<'a> {
    /// Builds an engine over a warehouse with the default patterns.
    pub fn new(db: &'a Database, graph: &'a MetaGraph, config: SodaConfig) -> Self {
        Self::with_patterns(db, graph, config, SodaPatterns::default())
    }

    /// Builds an engine with custom metadata-graph patterns (how SODA is
    /// ported to a warehouse with different modelling conventions).
    pub fn with_patterns(
        db: &'a Database,
        graph: &'a MetaGraph,
        config: SodaConfig,
        patterns: SodaPatterns,
    ) -> Self {
        let core = EngineCore::build(db, graph, config, patterns);
        Self { db, graph, core }
    }

    /// Converts this borrowed engine into an owned, shareable
    /// [`EngineSnapshot`] without rebuilding the classification index, the
    /// inverted index or the join catalog.
    ///
    /// The base data and the metadata graph are cloned once into
    /// [`Arc`]s; the resulting snapshot is `Send + Sync` and
    /// independent of the warehouse it was built from.
    pub fn into_shared(self) -> EngineSnapshot {
        EngineSnapshot::from_parts(
            Arc::new(self.db.clone()),
            Arc::new(self.graph.clone()),
            self.core,
        )
    }

    /// The engine configuration.
    pub fn config(&self) -> &SodaConfig {
        self.core.config()
    }

    /// The join catalog (exposed for experiments and figures).
    pub fn join_catalog(&self) -> &JoinCatalog {
        self.core.join_catalog()
    }

    /// The classification index (exposed for experiments and figures).
    pub fn classification_index(&self) -> &ClassificationIndex {
        self.core.classification_index()
    }

    /// The inverted index over the base data, if enabled.
    pub fn inverted_index(&self) -> Option<&ShardedInvertedIndex> {
        self.core.inverted_index()
    }

    /// Per-shard sizes and probe counts of the lookup layer.
    pub fn shard_stats(&self) -> ShardStats {
        self.core.shard_stats()
    }

    /// Runs only Step 1 (lookup) for an input: keyword segmentation plus the
    /// per-shard classification/base-data probes, without ranking or SQL
    /// generation.  This is the fan-out hot path the `lookup_sharding`
    /// benchmark measures.
    pub fn lookup(&self, input: &str) -> Result<LookupResult> {
        self.core.lookup(self.db, self.graph, input)
    }

    /// Translates a keyword query into a ranked list of SQL statements.
    pub fn search(&self, input: &str) -> Result<Vec<SodaResult>> {
        self.search_traced(input).map(|(results, _)| results)
    }

    /// Like [`search`](Self::search) but also returns the pipeline trace
    /// (classification, complexity, step timings).
    pub fn search_traced(&self, input: &str) -> Result<(Vec<SodaResult>, QueryTrace)> {
        self.search_internal(input, None)
    }

    /// Like [`search`](Self::search) but folding accumulated relevance
    /// feedback (§6.3 — users like or dislike results) into the Step 2
    /// ranking: interpretation choices the user liked gain score, disliked
    /// ones lose it.
    pub fn search_with_feedback(
        &self,
        input: &str,
        feedback: &FeedbackStore,
    ) -> Result<Vec<SodaResult>> {
        self.search_internal(input, Some(feedback))
            .map(|(results, _)| results)
    }

    /// [`search_with_feedback`](Self::search_with_feedback) plus the trace.
    pub fn search_with_feedback_traced(
        &self,
        input: &str,
        feedback: &FeedbackStore,
    ) -> Result<(Vec<SodaResult>, QueryTrace)> {
        self.search_internal(input, Some(feedback))
    }

    /// One page of the ranked result list (the paper's "next result page"):
    /// page `0` returns the first `page_size` statements, page `1` the next
    /// ones, and so on.  The engine materialises up to
    /// `(page + 1) * page_size` statements for the request, independent of
    /// `config.max_results`.
    pub fn search_paged(&self, input: &str, page: usize, page_size: usize) -> Result<ResultPage> {
        self.core
            .search_paged(self.db, self.graph, input, page, page_size, None)
    }

    /// Reformulation suggestions for the input words the lookup step could not
    /// match anywhere (NaLIX-style feedback, §6.3): the closest metadata
    /// phrases per unmatched word.
    pub fn suggestions(&self, input: &str) -> Result<Vec<TermSuggestion>> {
        self.core.suggestions(self.db, self.graph, input)
    }

    fn search_internal(
        &self,
        input: &str,
        feedback: Option<&FeedbackStore>,
    ) -> Result<(Vec<SodaResult>, QueryTrace)> {
        self.core.search_limited(
            self.db,
            self.graph,
            input,
            feedback,
            self.core.config().max_results,
            None,
        )
    }

    /// Executes one generated statement against the base data (the paper
    /// executes the top 10 partially to produce result snippets; experiments
    /// execute them fully to compute precision and recall).
    pub fn execute(&self, result: &SodaResult) -> Result<ResultSet> {
        self.core.execute(self.db, result)
    }

    /// Executes a statement and renders the snippet of up to
    /// `config.snippet_rows` rows shown on the result page.
    pub fn snippet(&self, result: &SodaResult) -> Result<String> {
        self.core.snippet(self.db, result)
    }
}
