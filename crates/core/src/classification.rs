//! The classification index: a lookup table from normalised keyword phrases to
//! metadata-graph nodes.
//!
//! Step 1 of the pipeline matches the words of the input query against this
//! index ("we first try to match all the words in the input against our
//! classification index", §4.2.2).  The index is built once per engine from
//! every text label of the metadata graph; labels are normalised the same way
//! keywords are, so that `trade_order_td`, "Trade Order TD" and
//! "trade order td" all meet at the same key.

use std::collections::HashMap;

use soda_metagraph::{MetaGraph, NodeId};
use soda_relation::index::tokenizer::normalize_phrase;

use crate::provenance::Provenance;

/// One classification entry: a node that carries the phrase as a label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassificationEntry {
    /// The labelled node.
    pub node: NodeId,
    /// Where in the metadata the node lives.
    pub provenance: Provenance,
}

/// The classification index.
#[derive(Debug, Default, Clone)]
pub struct ClassificationIndex {
    entries: HashMap<String, Vec<ClassificationEntry>>,
}

impl ClassificationIndex {
    /// Builds the index from every text label of the graph.  Nodes without a
    /// recognised provenance (filter nodes, join nodes, …) are skipped, as are
    /// DBpedia nodes when `include_dbpedia` is false.
    pub fn build(graph: &MetaGraph, include_dbpedia: bool) -> Self {
        let mut entries: HashMap<String, Vec<ClassificationEntry>> = HashMap::new();
        for (label, holders) in graph.all_labels() {
            let key = normalize_phrase(label);
            if key.is_empty() {
                continue;
            }
            for (node, _pred) in holders {
                let Some(provenance) = Provenance::of_node(graph, *node) else {
                    continue;
                };
                if provenance == Provenance::DbPedia && !include_dbpedia {
                    continue;
                }
                let bucket = entries.entry(key.clone()).or_default();
                let entry = ClassificationEntry {
                    node: *node,
                    provenance,
                };
                if !bucket.contains(&entry) {
                    bucket.push(entry);
                }
            }
        }
        Self { entries }
    }

    /// Looks up a phrase (normalised internally).
    pub fn lookup(&self, phrase: &str) -> &[ClassificationEntry] {
        let key = normalize_phrase(phrase);
        self.entries.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// True if the phrase is present.
    pub fn contains(&self, phrase: &str) -> bool {
        !self.lookup(phrase).is_empty()
    }

    /// All distinct (normalised) phrases in the index.  Used by the
    /// query-refinement suggestions to find near-misses for unmatched words.
    pub fn phrases(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(|k| k.as_str())
    }

    /// Number of distinct phrases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_metagraph::builder::types;
    use soda_metagraph::GraphBuilder;

    fn graph() -> MetaGraph {
        let mut b = GraphBuilder::new();
        let t = b.physical_table("phys/trade_order_td", "trade order td");
        b.text(t, "tablename", "trade_order_td");
        b.physical_column(t, "phys/trade_order_td/amount", "amount");
        let onto = b.ontology_concept("onto/customers", "customers");
        b.text(onto, "name", "clients");
        let concept = b.named_node("concept/parties", types::CONCEPTUAL_ENTITY, "parties");
        b.dbpedia_synonym("dbpedia/client", "client", concept);
        b.build()
    }

    #[test]
    fn identifier_and_phrase_forms_share_a_key() {
        let g = graph();
        let idx = ClassificationIndex::build(&g, true);
        let hits = idx.lookup("Trade Order TD");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits, idx.lookup("trade_order_td"));
    }

    #[test]
    fn alt_names_are_indexed() {
        let g = graph();
        let idx = ClassificationIndex::build(&g, true);
        assert!(idx.contains("clients"));
        assert!(idx.contains("customers"));
        assert_eq!(
            idx.lookup("clients")[0].provenance,
            Provenance::DomainOntology
        );
    }

    #[test]
    fn dbpedia_can_be_excluded() {
        let g = graph();
        let with = ClassificationIndex::build(&g, true);
        let without = ClassificationIndex::build(&g, false);
        assert!(with.contains("client"));
        assert!(!without.contains("client"));
        assert!(without.len() < with.len());
    }

    #[test]
    fn unknown_phrases_return_empty() {
        let g = graph();
        let idx = ClassificationIndex::build(&g, true);
        assert!(idx.lookup("does not exist").is_empty());
        assert!(!idx.is_empty());
    }
}
