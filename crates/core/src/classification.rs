//! The classification index: a lookup table from normalised keyword phrases to
//! metadata-graph nodes, partitioned into shards.
//!
//! Step 1 of the pipeline matches the words of the input query against this
//! index ("we first try to match all the words in the input against our
//! classification index", §4.2.2).  The index is built once per engine from
//! every text label of the metadata graph; labels are normalised the same way
//! keywords are, so that `trade_order_td`, "Trade Order TD" and
//! "trade order td" all meet at the same key.
//!
//! ## Sharding
//!
//! Like the inverted index, the classification index is partitioned by a
//! stable hash ([`soda_relation::stable_shard`]) — here of the normalised
//! phrase, since a phrase (not a table) is the unit of lookup.  Every phrase
//! lives in exactly one shard, so a lookup routes directly to its owning
//! shard instead of fanning out, and the entries of each bucket keep the
//! exact order the monolithic build produces: results are byte-identical for
//! any shard count.  [`ClassificationIndex::build`] is the classic 1-shard
//! case.
//!
//! Each shard sits behind an [`Arc`]: a metadata refresh rebuilds the index
//! ([`rebuild_shared`](ClassificationIndex::rebuild_shared)) but shares every
//! partition whose content did not change with the previous build, so a hot
//! snapshot swap only replaces (and only re-ages the cache entries of) the
//! partitions the refresh actually touched.

use std::collections::HashMap;
use std::sync::Arc;

use soda_metagraph::{MetaGraph, NodeId};
use soda_relation::index::tokenizer::normalize_phrase;
use soda_relation::stable_shard;

use crate::provenance::Provenance;

/// One classification entry: a node that carries the phrase as a label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassificationEntry {
    /// The labelled node.
    pub node: NodeId,
    /// Where in the metadata the node lives.
    pub provenance: Provenance,
}

/// One partition of the classification index.
type ClassificationShard = HashMap<String, Vec<ClassificationEntry>>;

/// The classification index, partitioned by stable phrase hash.  Cloning is
/// cheap (per-shard [`Arc`]s), which is what lets derived engine snapshots
/// share the metadata lookup tables across generations.
#[derive(Debug, Clone)]
pub struct ClassificationIndex {
    shards: Vec<Arc<ClassificationShard>>,
}

impl Default for ClassificationIndex {
    fn default() -> Self {
        Self {
            shards: vec![Arc::new(HashMap::new())],
        }
    }
}

impl ClassificationIndex {
    /// Builds the classic monolithic index (one shard) from every text label
    /// of the graph.  Nodes without a recognised provenance (filter nodes,
    /// join nodes, …) are skipped, as are DBpedia nodes when
    /// `include_dbpedia` is false.
    pub fn build(graph: &MetaGraph, include_dbpedia: bool) -> Self {
        Self::build_sharded(graph, include_dbpedia, 1)
    }

    /// Builds the index partitioned into `shard_count` shards (clamped to at
    /// least 1) by the stable hash of the normalised phrase.
    pub fn build_sharded(graph: &MetaGraph, include_dbpedia: bool, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        let mut shards: Vec<ClassificationShard> = vec![HashMap::new(); shard_count];
        for (label, holders) in graph.all_labels() {
            let key = normalize_phrase(label);
            if key.is_empty() {
                continue;
            }
            let shard = &mut shards[stable_shard(&key, shard_count)];
            for (node, _pred) in holders {
                let Some(provenance) = Provenance::of_node(graph, *node) else {
                    continue;
                };
                if provenance == Provenance::DbPedia && !include_dbpedia {
                    continue;
                }
                let bucket = shard.entry(key.clone()).or_default();
                let entry = ClassificationEntry {
                    node: *node,
                    provenance,
                };
                if !bucket.contains(&entry) {
                    bucket.push(entry);
                }
            }
        }
        Self {
            shards: shards.into_iter().map(Arc::new).collect(),
        }
    }

    /// Rebuilds the index from a (possibly changed) metadata graph, sharing
    /// every partition whose content is identical to this one's with it by
    /// [`Arc`].  Returns the new index plus a per-shard `changed` vector —
    /// the hot-swap layer bumps exactly the changed partitions' generations.
    ///
    /// Equality is by content (phrase → entry list), so a graph rebuild that
    /// reproduces the same labels and node ids shares everything, while a
    /// refresh that renumbers nodes swaps every shard — correct either way,
    /// just less sharing.
    pub fn rebuild_shared(&self, graph: &MetaGraph, include_dbpedia: bool) -> (Self, Vec<bool>) {
        let fresh = Self::build_sharded(graph, include_dbpedia, self.shards.len());
        let mut changed = vec![false; self.shards.len()];
        let shards = fresh
            .shards
            .into_iter()
            .zip(&self.shards)
            .enumerate()
            .map(|(i, (new, old))| {
                if *new == **old {
                    Arc::clone(old)
                } else {
                    changed[i] = true;
                    new
                }
            })
            .collect();
        (Self { shards }, changed)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of distinct phrases per shard, in partition order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// True when partition `i` of both indexes is the same shared allocation
    /// (used by tests and diagnostics to observe cross-generation sharing).
    pub fn shares_shard_with(&self, other: &Self, i: usize) -> bool {
        match (self.shards.get(i), other.shards.get(i)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Looks up a phrase (normalised internally), routing directly to the
    /// shard that owns it.
    pub fn lookup(&self, phrase: &str) -> &[ClassificationEntry] {
        let key = normalize_phrase(phrase);
        self.shards[stable_shard(&key, self.shards.len())]
            .get(&key)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// True if the phrase is present.
    pub fn contains(&self, phrase: &str) -> bool {
        !self.lookup(phrase).is_empty()
    }

    /// All distinct (normalised) phrases in the index.  Used by the
    /// query-refinement suggestions to find near-misses for unmatched words.
    pub fn phrases(&self) -> impl Iterator<Item = &str> {
        self.shards
            .iter()
            .flat_map(|s| s.keys().map(String::as_str))
    }

    /// Number of distinct phrases.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_metagraph::builder::types;
    use soda_metagraph::GraphBuilder;

    fn graph() -> MetaGraph {
        let mut b = GraphBuilder::new();
        let t = b.physical_table("phys/trade_order_td", "trade order td");
        b.text(t, "tablename", "trade_order_td");
        b.physical_column(t, "phys/trade_order_td/amount", "amount");
        let onto = b.ontology_concept("onto/customers", "customers");
        b.text(onto, "name", "clients");
        let concept = b.named_node("concept/parties", types::CONCEPTUAL_ENTITY, "parties");
        b.dbpedia_synonym("dbpedia/client", "client", concept);
        b.build()
    }

    #[test]
    fn identifier_and_phrase_forms_share_a_key() {
        let g = graph();
        let idx = ClassificationIndex::build(&g, true);
        let hits = idx.lookup("Trade Order TD");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits, idx.lookup("trade_order_td"));
    }

    #[test]
    fn alt_names_are_indexed() {
        let g = graph();
        let idx = ClassificationIndex::build(&g, true);
        assert!(idx.contains("clients"));
        assert!(idx.contains("customers"));
        assert_eq!(
            idx.lookup("clients")[0].provenance,
            Provenance::DomainOntology
        );
    }

    #[test]
    fn dbpedia_can_be_excluded() {
        let g = graph();
        let with = ClassificationIndex::build(&g, true);
        let without = ClassificationIndex::build(&g, false);
        assert!(with.contains("client"));
        assert!(!without.contains("client"));
        assert!(without.len() < with.len());
    }

    #[test]
    fn unknown_phrases_return_empty() {
        let g = graph();
        let idx = ClassificationIndex::build(&g, true);
        assert!(idx.lookup("does not exist").is_empty());
        assert!(!idx.is_empty());
    }

    #[test]
    fn rebuild_shared_reuses_unchanged_partitions() {
        let g = graph();
        let idx = ClassificationIndex::build_sharded(&g, true, 4);

        // Same graph: every partition is shared, nothing is marked changed.
        let (same, changed) = idx.rebuild_shared(&g, true);
        assert_eq!(changed, vec![false; 4]);
        for i in 0..4 {
            assert!(same.shares_shard_with(&idx, i), "shard {i} must be shared");
        }

        // Extend the graph with one new label: only the partitions whose
        // phrase set actually changed are replaced.
        let mut b = GraphBuilder::new();
        let t = b.physical_table("phys/trade_order_td", "trade order td");
        b.text(t, "tablename", "trade_order_td");
        b.physical_column(t, "phys/trade_order_td/amount", "amount");
        let onto = b.ontology_concept("onto/customers", "customers");
        b.text(onto, "name", "clients");
        let concept = b.named_node("concept/parties", types::CONCEPTUAL_ENTITY, "parties");
        b.dbpedia_synonym("dbpedia/client", "client", concept);
        b.text(onto, "name", "patrons"); // the refresh: one extra synonym
        let g2 = b.build();

        let (refreshed, changed) = idx.rebuild_shared(&g2, true);
        assert!(refreshed.contains("patrons"));
        let fresh = ClassificationIndex::build_sharded(&g2, true, 4);
        for phrase in ["patrons", "clients", "customers", "amount"] {
            assert_eq!(refreshed.lookup(phrase), fresh.lookup(phrase));
        }
        let touched: Vec<usize> = changed
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| c.then_some(i))
            .collect();
        assert!(!touched.is_empty());
        for (i, &was_changed) in changed.iter().enumerate() {
            assert_eq!(
                refreshed.shares_shard_with(&idx, i),
                !was_changed,
                "sharing must be the complement of the changed vector (shard {i})"
            );
        }
    }

    #[test]
    fn sharded_build_matches_monolithic_lookups() {
        let g = graph();
        let mono = ClassificationIndex::build(&g, true);
        for shards in [2usize, 3, 8] {
            let idx = ClassificationIndex::build_sharded(&g, true, shards);
            assert_eq!(idx.shard_count(), shards);
            assert_eq!(idx.len(), mono.len());
            assert_eq!(idx.shard_sizes().iter().sum::<usize>(), mono.len());
            for phrase in [
                "Trade Order TD",
                "trade_order_td",
                "customers",
                "clients",
                "client",
                "amount",
                "does not exist",
            ] {
                assert_eq!(
                    mono.lookup(phrase),
                    idx.lookup(phrase),
                    "'{phrase}' diverged at {shards} shards"
                );
            }
            // The phrase sets agree (order is hash-map arbitrary either way).
            let mut a: Vec<&str> = mono.phrases().collect();
            let mut b: Vec<&str> = idx.phrases().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }
}
