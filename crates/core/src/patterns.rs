//! The default metadata-graph patterns (§4.2.1).
//!
//! The pattern texts below are taken directly from the paper: the Table
//! pattern, the Column pattern, the Foreign-Key pattern (which references the
//! Column pattern), the Credit-Suisse-style Join-Relationship pattern with an
//! explicit join node, and the Inheritance-Child pattern.  They are parsed
//! with [`soda_metagraph::parser`] and stored in a [`PatternRegistry`], so a
//! deployment can swap in different patterns without touching the algorithm —
//! exactly the portability argument of §4.1.

use soda_metagraph::{Pattern, PatternRegistry};

/// The named patterns used by the pipeline.
#[derive(Debug, Clone)]
pub struct SodaPatterns {
    registry: PatternRegistry,
}

/// Pattern text for the Table pattern (Figure 7).
pub const TABLE_PATTERN: &str = "( x tablename t:y ) & ( x type physical_table )";

/// Pattern text for the Column pattern.
pub const COLUMN_PATTERN: &str =
    "( x columnname t:y ) & ( x type physical_column ) & ( z column x )";

/// Pattern text for the Foreign-Key pattern (Figure 8).
pub const FOREIGN_KEY_PATTERN: &str =
    "( x foreign_key y ) & ( x matches-column ) & ( y matches-column )";

/// Pattern text for the Join-Relationship pattern (explicit join node).
pub const JOIN_RELATIONSHIP_PATTERN: &str = "( x type join_node ) & \
     ( x join_foreign_key f ) & ( x join_primary_key p ) & \
     ( f matches-column ) & ( p matches-column )";

/// Pattern text for the Inheritance-Child pattern.
pub const INHERITANCE_CHILD_PATTERN: &str = "( y inheritance_child x ) & \
     ( y type inheritance_node ) & ( y inheritance_parent p ) & \
     ( y inheritance_child c1 ) & ( y inheritance_child c2 )";

/// Pattern text for the metadata-filter pattern ("wealthy customers").
pub const METADATA_FILTER_PATTERN: &str = "( x defined_filter f ) & \
     ( f type metadata_filter ) & ( f filter_column c1 ) & \
     ( f filter_op t:o ) & ( f filter_value t:v )";

/// Pattern text for the Historization pattern (extension): an annotation node
/// that declares `x` to be a bi-temporal history table of another table, with
/// named validity columns.  The paper leaves these relationships unannotated
/// (the cause of the Q2.1/Q2.2 recall loss) and proposes the annotation as
/// future work (§5.2.1, §7).
pub const HISTORIZATION_PATTERN: &str = "( h type historization_node ) & \
     ( h hist_table x ) & ( h current_table c ) & \
     ( h valid_from_column t:f ) & ( h valid_to_column t:v )";

impl Default for SodaPatterns {
    fn default() -> Self {
        let mut registry = PatternRegistry::new();
        registry.register(Pattern::parse("table", TABLE_PATTERN).expect("table pattern"));
        registry.register(Pattern::parse("column", COLUMN_PATTERN).expect("column pattern"));
        registry.register(
            Pattern::parse("foreign_key", FOREIGN_KEY_PATTERN).expect("foreign key pattern"),
        );
        registry.register(
            Pattern::parse("join_relationship", JOIN_RELATIONSHIP_PATTERN)
                .expect("join relationship pattern"),
        );
        registry.register(
            Pattern::parse("inheritance_child", INHERITANCE_CHILD_PATTERN)
                .expect("inheritance child pattern"),
        );
        registry.register(
            Pattern::parse("metadata_filter", METADATA_FILTER_PATTERN)
                .expect("metadata filter pattern"),
        );
        registry.register(
            Pattern::parse("historization", HISTORIZATION_PATTERN).expect("historization pattern"),
        );
        Self { registry }
    }
}

impl SodaPatterns {
    /// The underlying registry (used by the matcher to resolve references).
    pub fn registry(&self) -> &PatternRegistry {
        &self.registry
    }

    /// Registers or replaces a pattern — this is how SODA is ported to a
    /// warehouse with different modelling conventions.
    pub fn register(&mut self, pattern: Pattern) {
        self.registry.register(pattern);
    }

    /// The Table pattern.
    pub fn table(&self) -> &Pattern {
        self.registry
            .get("table")
            .expect("table pattern registered")
    }

    /// The Column pattern.
    pub fn column(&self) -> &Pattern {
        self.registry
            .get("column")
            .expect("column pattern registered")
    }

    /// The Foreign-Key pattern.
    pub fn foreign_key(&self) -> &Pattern {
        self.registry
            .get("foreign_key")
            .expect("foreign key pattern registered")
    }

    /// The Join-Relationship pattern.
    pub fn join_relationship(&self) -> &Pattern {
        self.registry
            .get("join_relationship")
            .expect("join relationship pattern registered")
    }

    /// The Inheritance-Child pattern.
    pub fn inheritance_child(&self) -> &Pattern {
        self.registry
            .get("inheritance_child")
            .expect("inheritance child pattern registered")
    }

    /// The metadata-filter pattern.
    pub fn metadata_filter(&self) -> &Pattern {
        self.registry
            .get("metadata_filter")
            .expect("metadata filter pattern registered")
    }

    /// The Historization pattern (extension — see [`HISTORIZATION_PATTERN`]).
    pub fn historization(&self) -> &Pattern {
        self.registry
            .get("historization")
            .expect("historization pattern registered")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_default_patterns_parse_and_register() {
        let p = SodaPatterns::default();
        assert_eq!(p.registry().len(), 7);
        assert_eq!(p.table().items.len(), 2);
        assert_eq!(p.column().items.len(), 3);
        assert_eq!(p.foreign_key().references(), vec!["column", "column"]);
        assert_eq!(p.join_relationship().references().len(), 2);
        assert_eq!(p.inheritance_child().items.len(), 5);
        assert_eq!(p.metadata_filter().items.len(), 5);
        assert_eq!(p.historization().items.len(), 5);
    }

    #[test]
    fn custom_patterns_can_replace_defaults() {
        let mut p = SodaPatterns::default();
        let custom = Pattern::parse(
            "table",
            "( x table_name t:y ) & ( x type relational_table )",
        )
        .unwrap();
        p.register(custom);
        assert_eq!(p.table().items[0].to_string(), "( x table_name t:y )");
    }
}
