//! Vendored stand-in for the subset of the `criterion` API used by the
//! `soda-bench` crate: `Criterion`, `BenchmarkGroup`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Statistical machinery (outlier analysis, HTML reports) is out of scope; the
//! harness warms each benchmark up, runs `sample_size` timed samples and
//! prints mean / min / max wall-clock per iteration.  Bench *registration* is
//! identical to real criterion (`harness = false` targets calling
//! `criterion_main!`), so swapping in the real crate later is a one-line
//! `Cargo.toml` change.
//!
//! Two environment knobs support CI perf tracking:
//!
//! * `SODA_BENCH_QUICK=1` — caps every benchmark at
//!   [`QUICK_SAMPLES`] samples × [`QUICK_MAX_ITERS`] iterations (the
//!   `--quick`-style mode the `bench-regression` job uses so perf smoke
//!   stays within PR latency).
//! * `SODA_BENCH_JSON=<path>` — after all groups run, `criterion_main!`
//!   writes every benchmark's estimates (mean/min/max ns, sample shape) as
//!   one small JSON file, one benchmark object per line, which
//!   `soda-bench`'s `bench-check` binary diffs against a checked-in
//!   baseline.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Samples per benchmark in quick mode.
pub const QUICK_SAMPLES: usize = 3;
/// Iteration cap per sample in quick mode.  The 5ms per-sample target in
/// [`Bencher::iter`] already bounds wall-clock, so the cap's job is only to
/// limit iterations of routines with heavy *per-iteration* side effects
/// (cache clears, rebuilds).  Microsecond-scale routines need far more than
/// ten iterations per sample for a noise-resistant floor — at 10, a single
/// scheduler preemption in a ~100µs sample inflated the minimum by 20%+,
/// which is fatal to tight per-benchmark regression limits.
pub const QUICK_MAX_ITERS: u64 = 200;

fn quick_mode() -> bool {
    std::env::var("SODA_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One benchmark's estimates, accumulated for the JSON report.
#[derive(Debug, Clone)]
pub struct BenchEstimate {
    /// Full benchmark path (`group/function/parameter`).
    pub name: String,
    /// Mean wall-clock per iteration, nanoseconds.
    pub mean_ns: u128,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: u128,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: u128,
    /// Timed samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

/// Estimates of every benchmark run so far in this process (all
/// `criterion_group!` functions share it).
static ESTIMATES: Mutex<Vec<BenchEstimate>> = Mutex::new(Vec::new());

/// Writes the accumulated estimates to `$SODA_BENCH_JSON` (no-op when the
/// variable is unset).  Called by `criterion_main!` after every group ran;
/// exposed for harnesses that assemble their own `main`.
pub fn write_json_report() {
    let Ok(path) = std::env::var("SODA_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let estimates = ESTIMATES.lock().expect("estimate registry poisoned");
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, e) in estimates.iter().enumerate() {
        let comma = if i + 1 < estimates.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
             \"samples\": {}, \"iters\": {}}}{comma}\n",
            e.name.replace('"', "'"),
            e.mean_ns,
            e.min_ns,
            e.max_ns,
            e.samples,
            e.iters
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote bench estimates to {path}");
}

/// Identifier for a benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Benchmark id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: fmt::Display>(function: S, parameter: P) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Benchmark id from a parameter value alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(param)) => write!(f, "{func}/{param}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(param)) => write!(f, "{param}"),
            (None, None) => write!(f, "benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Times one benchmark routine, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: if quick_mode() {
                sample_count.min(QUICK_SAMPLES)
            } else {
                sample_count
            },
        }
    }

    /// Runs the routine repeatedly and records per-iteration wall-clock.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call, also used to size the sample batches so
        // fast routines are not dominated by timer overhead.
        let warmup_start = Instant::now();
        std::hint::black_box(routine());
        let warmup = warmup_start.elapsed();
        let target = Duration::from_millis(5);
        let max_iters = if quick_mode() { QUICK_MAX_ITERS } else { 1000 };
        self.iters_per_sample = if warmup.is_zero() {
            max_iters
        } else {
            (target.as_nanos() / warmup.as_nanos().max(1)).clamp(1, u128::from(max_iters)) as u64
        };
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted for API compatibility; the
    /// stub sizes its batches internally).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a routine under an id.
    pub fn bench_function<I, O, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher) -> O,
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.criterion.report(&self.name, &id, &bencher);
        self
    }

    /// Benchmarks a routine parameterised by a borrowed input.
    pub fn bench_with_input<I, In, O, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In) -> O,
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.criterion.report(&self.name, &id, &bencher);
        self
    }

    /// Finishes the group (prints a trailing separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Benchmark harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<O, F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher) -> O,
    {
        let mut bencher = Bencher::new(10);
        f(&mut bencher);
        let id = BenchmarkId::from(name);
        self.report("", &id, &bencher);
        self
    }

    fn report(&mut self, group: &str, id: &BenchmarkId, bencher: &Bencher) {
        self.benchmarks_run += 1;
        if bencher.samples.is_empty() {
            println!("  {id}: no samples recorded");
            return;
        }
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / bencher.samples.len() as u32;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let max = bencher.samples.iter().max().copied().unwrap_or_default();
        let label = if group.is_empty() {
            format!("{id}")
        } else {
            format!("{group}/{id}")
        };
        println!(
            "  {label}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples x {} iters)",
            bencher.samples.len(),
            bencher.iters_per_sample
        );
        ESTIMATES
            .lock()
            .expect("estimate registry poisoned")
            .push(BenchEstimate {
                name: label,
                mean_ns: mean.as_nanos(),
                min_ns: min.as_nanos(),
                max_ns: max.as_nanos(),
                samples: bencher.samples.len(),
                iters: bencher.iters_per_sample,
            });
    }
}

/// Re-export for parity with `criterion::black_box` call sites.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags such as `--bench`; a plain
            // binary harness ignores them.
            $($group();)+
            // Emits the estimates of every group above when SODA_BENCH_JSON
            // names a path (no-op otherwise).
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("incr", |b| b.iter(|| calls = calls.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("add", 7), &7u64, |b, n| {
            b.iter(|| std::hint::black_box(n + 1))
        });
        group.finish();
        assert!(calls > 0);
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn estimates_accumulate_in_the_registry() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("registry");
        group.sample_size(2);
        group.bench_function("spin", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.finish();
        let estimates = ESTIMATES.lock().unwrap();
        let entry = estimates
            .iter()
            .find(|e| e.name == "registry/spin")
            .expect("estimate recorded");
        assert!(entry.samples >= 1);
        assert!(entry.min_ns <= entry.mean_ns && entry.mean_ns <= entry.max_ns);
    }

    #[test]
    fn benchmark_id_formatting() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
