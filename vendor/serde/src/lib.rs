//! Vendored stand-in for `serde`, sufficient for this offline workspace.
//!
//! The SODA crates use `#[derive(serde::Serialize)]` (and `#[serde(skip)]`
//! field attributes) purely to keep their public types serialization-ready;
//! nothing in the workspace serializes yet, so `Serialize`/`Deserialize` are
//! empty marker traits here.  Swapping in the real serde later is a
//! one-line `Cargo.toml` change — no source edits required.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
