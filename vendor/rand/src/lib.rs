//! Vendored stand-in for the subset of the `rand` 0.8 API used by the SODA
//! workspace: `StdRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool`.
//!
//! The generator is a xoshiro256**-style mixer seeded through SplitMix64 —
//! deterministic for a given seed, which is all the synthetic data generator
//! needs (the paper's warehouses are reproduced from fixed seeds).  Swapping
//! in the real `rand` later is a one-line `Cargo.toml` change.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic 64-bit generator mirroring `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        pub(crate) fn from_seed_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }

        /// xoshiro256** step.
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding constructor trait mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_seed_u64(seed)
    }
}

/// Uniform sampling from a range type, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe core of [`Rng`].
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        rngs::StdRng::next_u64(self)
    }
}

/// User-facing generator trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `low..high` or `low..=high`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (unit as f32) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
