//! Vendored stand-in for `serde_derive`, sufficient for this offline workspace.
//!
//! The SODA crates only ever *derive* `serde::Serialize` (no code in the
//! workspace serializes anything yet — there is no `serde_json` and no bound
//! on the trait), so the derive here simply emits a marker-trait impl for the
//! deriving type and swallows the `#[serde(...)]` helper attributes.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(type_name, generics_tokens)` from a `struct`/`enum` item.
///
/// Only the generic *parameter names* are retained (bounds and defaults are
/// dropped), which is all the emitted marker impl needs.
fn type_header(input: TokenStream) -> Option<(String, Vec<String>)> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes, doc comments and visibility until `struct` / `enum`.
    for tree in tokens.by_ref() {
        match tree {
            TokenTree::Ident(ident)
                if ident.to_string() == "struct" || ident.to_string() == "enum" =>
            {
                break
            }
            _ => continue,
        }
    }
    let name = match tokens.next()? {
        TokenTree::Ident(ident) => ident.to_string(),
        _ => return None,
    };
    let mut params = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut expect_param = true;
            while let Some(tree) = tokens.next() {
                match tree {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
                    TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expect_param => {
                        // Lifetime parameter: consume its identifier.
                        if let Some(TokenTree::Ident(ident)) = tokens.next() {
                            params.push(format!("'{ident}"));
                        }
                        expect_param = false;
                    }
                    TokenTree::Ident(ident) if depth == 1 && expect_param => {
                        params.push(ident.to_string());
                        expect_param = false;
                    }
                    _ => {}
                }
            }
        }
    }
    Some((name, params))
}

/// Derives the (empty) `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, "Serialize")
}

/// Derives the (empty) `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, "Deserialize")
}

fn expand(input: TokenStream, trait_name: &str) -> TokenStream {
    let Some((name, params)) = type_header(input) else {
        return TokenStream::new();
    };
    let generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    let impl_block = format!("impl{generics} ::serde::{trait_name} for {name}{generics} {{}}");
    impl_block.parse().unwrap_or_else(|_| TokenStream::new())
}
