//! Vendored stand-in for the subset of the `proptest` API used by the SODA
//! workspace.
//!
//! Supported surface: the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` inner attribute), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, `prop_oneof!`, `Just`, `any`,
//! strategies over integer and float ranges, string strategies from a small
//! regex subset, tuples, `prop_map` / `prop_flat_map`, `collection::vec` and
//! `option::of`.
//!
//! The implementation samples deterministically (seeded per test name and
//! case index) and does **not** shrink failing inputs — failures report the
//! case number so the exact inputs can be regenerated.  Swapping in the real
//! `proptest` later is a one-line `Cargo.toml` change.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `proptest! { ... }` macro: declares deterministic property tests.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by any
/// number of `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::TestRunner::new(__config).run(stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                let __result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __result
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __left, __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __left,
                __right,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Fails the current test case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if *__left == *__right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __left, __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$left, &$right);
        if *__left == *__right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __left,
                __right,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_strategy($strat)),+
        ])
    };
}
