//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Some` of the inner strategy three times out of four, `None`
/// otherwise.
pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
    OptionStrategy { strategy }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    strategy: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_bool(0.75) {
            Some(self.strategy.sample(rng))
        } else {
            None
        }
    }
}
