//! The [`Strategy`] trait and the combinators used by the workspace.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply samples a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each produced value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy; used by `prop_oneof!` so element types unify.
pub fn boxed_strategy<S>(strategy: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Uniform choice between strategies, built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let index = rng.next_below(self.options.len() as u64) as usize;
        self.options[index].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_unit_f64() as f32) * (self.end - self.start)
    }
}

/// String strategies from regex-like patterns (see [`crate::string`]).
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}
