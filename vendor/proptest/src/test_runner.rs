//! Deterministic test-case runner and RNG.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Configuration mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self(message.into())
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Outcome of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test name and case index.
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        case.hash(&mut hasher);
        0x5355_4f44_4153_4f44u64.hash(&mut hasher);
        Self {
            state: hasher.finish(),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Random coin flip with probability `p` of `true`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_unit_f64() < p.clamp(0.0, 1.0)
    }
}

/// Runs a property over many deterministic cases.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner for the given configuration.  The `PROPTEST_CASES`
    /// environment variable overrides the configured case count.
    pub fn new(config: ProptestConfig) -> Self {
        Self { config }
    }

    /// Runs `f` once per case, panicking (and thereby failing the enclosing
    /// `#[test]`) on the first case whose check fails.
    pub fn run<F>(&self, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.config.cases);
        for case in 0..cases {
            let mut rng = TestRng::deterministic(name, case);
            if let Err(error) = f(&mut rng) {
                panic!("property `{name}` failed at case {case}/{cases}: {error}");
            }
        }
    }
}
