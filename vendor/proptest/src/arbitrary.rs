//! The [`any`] strategy over types with a canonical distribution.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range distribution, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_unit_f64() * 2e6 - 1e6
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from(0x20u8 + rng.next_below(0x5F) as u8)
    }
}
