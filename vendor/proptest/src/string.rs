//! Sampling strings from a small regex subset.
//!
//! Supported syntax — enough for every pattern in the workspace's tests:
//!
//! * literal characters,
//! * `.` (any printable ASCII character),
//! * character classes `[...]` with ranges (`a-z`, ` -~`) and literal members
//!   (a `-` first or last is literal; a leading `^` is not supported),
//! * escapes `\d`, `\w`, `\s` and escaped literals (`\.`, `\[`, …),
//! * quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (`*`/`+` capped at 8 repeats).

use crate::test_runner::TestRng;

const UNBOUNDED_CAP: usize = 8;

/// One repeatable unit of the pattern: a set of candidate characters plus a
/// repetition range (inclusive).
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..=0x7E).map(char::from).collect()
}

fn escape_class(escape: char) -> Vec<char> {
    match escape {
        'd' => ('0'..='9').collect(),
        'w' => ('a'..='z')
            .chain('A'..='Z')
            .chain('0'..='9')
            .chain(std::iter::once('_'))
            .collect(),
        's' => vec![' ', '\t', '\n'],
        other => vec![other],
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut members: Vec<char> = Vec::new();
    let mut closed = false;
    while let Some(c) = chars.next() {
        match c {
            ']' => {
                closed = true;
                break;
            }
            '\\' => {
                let escape = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                members.extend(escape_class(escape));
            }
            '-' if !members.is_empty() && chars.peek().is_some_and(|&next| next != ']') => {
                let start = *members.last().unwrap();
                let end = chars.next().unwrap();
                assert!(
                    start <= end,
                    "invalid class range {start:?}-{end:?} in pattern {pattern:?}"
                );
                members.pop();
                members.extend(start..=end);
            }
            other => members.push(other),
        }
    }
    assert!(
        closed,
        "unterminated character class in pattern {pattern:?}"
    );
    assert!(
        !members.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    members
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                body.push(c);
            }
            let (min, max) = match body.split_once(',') {
                Some((min, max)) => (
                    min.trim().parse().expect("bad quantifier"),
                    max.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            };
            assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
            (min, max)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_CAP)
        }
        _ => (1, 1),
    }
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => parse_class(&mut chars, pattern),
            '\\' => {
                let escape = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                escape_class(escape)
            }
            '.' => printable_ascii(),
            other => vec![other],
        };
        let (min, max) = parse_quantifier(&mut chars, pattern);
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

/// Samples one string matching `pattern`.
pub(crate) fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let span = (atom.max - atom.min + 1) as u64;
        let count = atom.min + rng.next_below(span) as usize;
        for _ in 0..count {
            let index = rng.next_below(atom.choices.len() as u64) as usize;
            out.push(atom.choices[index]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string-tests", 0)
    }

    #[test]
    fn class_with_range_and_count() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = sample_regex("[a-z_]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn space_to_tilde_covers_printables() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = sample_regex("[ -~]{0,60}", &mut rng);
            assert!(s.len() <= 60);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn concatenated_atoms() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = sample_regex("[a-zA-Z][a-zA-Z0-9_]{0,30}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 31);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
        }
    }

    #[test]
    fn literal_and_quantifiers() {
        let mut rng = rng();
        let s = sample_regex("ab{3}c?", &mut rng);
        assert!(s.starts_with('a'));
        assert!(s.contains("bbb"));
    }
}
