//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive-exclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi_exclusive, "empty collection size range");
        self.lo + rng.next_below((self.hi_exclusive - self.lo) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        Self {
            lo: range.start,
            hi_exclusive: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        Self {
            lo: *range.start(),
            hi_exclusive: range.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi_exclusive: exact + 1,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length falls
/// in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
