//! Vendored stand-in for the subset of the `arc-swap` API the workspace
//! uses: [`ArcSwap`] — a cell holding an [`Arc`] that readers can load and a
//! writer can atomically replace, without ever invalidating an `Arc` a
//! reader already holds.
//!
//! The real crate achieves lock-free reads with a hazard-pointer-style
//! debt-tracking protocol; that machinery is out of scope for this offline
//! stand-in.  Here the cell is a mutex that is only ever held for the
//! duration of one `Arc` refcount bump or pointer swap — never across user
//! code — so readers cannot block behind anything slower than another
//! reader's clone.  The API mirrors `arc_swap::ArcSwap` (`new`, `load_full`,
//! `store`, `swap`, `into_inner`), so swapping in the real crate later is a
//! one-line `Cargo.toml` change.

use std::sync::{Arc, Mutex};

/// An atomically swappable [`Arc`] cell.
///
/// Readers call [`load_full`](Self::load_full) and get a clone of the current
/// `Arc` — a coherent reference that stays valid (and keeps its pointee
/// alive) no matter how many times the cell is swapped afterwards.  Writers
/// call [`store`](Self::store) or [`swap`](Self::swap); the previous value is
/// dropped when its last outstanding reader drops it.
///
/// ```
/// use std::sync::Arc;
/// use arc_swap::ArcSwap;
///
/// let cell = ArcSwap::new(Arc::new(1));
/// let before = cell.load_full();
/// cell.store(Arc::new(2));
/// assert_eq!(*before, 1); // the old reference stays coherent
/// assert_eq!(*cell.load_full(), 2);
/// ```
#[derive(Debug)]
pub struct ArcSwap<T> {
    current: Mutex<Arc<T>>,
}

impl<T> ArcSwap<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            current: Mutex::new(value),
        }
    }

    /// Returns a clone of the current `Arc`.
    ///
    /// The clone is coherent: concurrent [`store`](Self::store)s replace what
    /// *future* loads see, never what this load returned.
    pub fn load_full(&self) -> Arc<T> {
        Arc::clone(&self.current.lock().expect("arc-swap cell poisoned"))
    }

    /// Replaces the current value, dropping the cell's reference to the old
    /// one (readers that already loaded it keep it alive).
    pub fn store(&self, value: Arc<T>) {
        *self.current.lock().expect("arc-swap cell poisoned") = value;
    }

    /// Replaces the current value and returns the previous one.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        std::mem::replace(
            &mut self.current.lock().expect("arc-swap cell poisoned"),
            value,
        )
    }

    /// Consumes the cell, returning the held `Arc`.
    pub fn into_inner(self) -> Arc<T> {
        self.current.into_inner().expect("arc-swap cell poisoned")
    }
}

impl<T> From<Arc<T>> for ArcSwap<T> {
    fn from(value: Arc<T>) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_swap_round_trip() {
        let cell = ArcSwap::new(Arc::new("a"));
        assert_eq!(*cell.load_full(), "a");
        cell.store(Arc::new("b"));
        assert_eq!(*cell.load_full(), "b");
        let old = cell.swap(Arc::new("c"));
        assert_eq!(*old, "b");
        assert_eq!(*cell.into_inner(), "c");
    }

    #[test]
    fn loaded_references_survive_swaps() {
        let cell = ArcSwap::new(Arc::new(vec![1, 2, 3]));
        let held = cell.load_full();
        cell.store(Arc::new(vec![4]));
        assert_eq!(*held, vec![1, 2, 3]);
        assert_eq!(*cell.load_full(), vec![4]);
        // The old value is kept alive solely by the outstanding reader.
        assert_eq!(Arc::strong_count(&held), 1);
    }

    #[test]
    fn concurrent_readers_and_a_writer_stay_coherent() {
        let cell = Arc::new(ArcSwap::new(Arc::new(0u64)));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    let mut last = 0;
                    for _ in 0..1000 {
                        let v = *cell.load_full();
                        assert!(v >= last, "observed value went backwards");
                        last = v;
                    }
                });
            }
            scope.spawn(|| {
                for i in 1..=100 {
                    cell.store(Arc::new(i));
                }
            });
        });
        assert_eq!(*cell.load_full(), 100);
    }
}
