//! # soda
//!
//! Facade crate for the reproduction of *"SODA: Generating SQL for Business
//! Users"* (Blunschi, Jossen, Kossmann, Mori, Stockinger — PVLDB 5(10), 2012).
//!
//! SODA lets business users pose keyword + operator queries against a complex
//! enterprise data warehouse and generates ranked, executable SQL by matching
//! *metadata-graph patterns* against a graph that spans the conceptual,
//! logical and physical schema, domain ontologies, DBpedia synonyms and the
//! base data (via an inverted index).
//!
//! This crate simply re-exports the workspace crates under stable paths and
//! hosts the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`):
//!
//! * [`metagraph`] — RDF-like metadata graph, pattern language, matcher.
//! * [`relation`] — in-memory relational engine with a SQL subset and an
//!   inverted index over the base data.
//! * [`warehouse`] — the paper's mini-bank running example and a synthetic
//!   enterprise warehouse mirroring the Credit Suisse schema statistics.
//! * [`core`] — the SODA engine itself: query language, five-step pipeline,
//!   ranking and SQL generation.
//! * [`baselines`] — capability-level re-implementations of DBExplorer,
//!   DISCOVER, BANKS, SQAK and Keymantic.
//! * [`eval`] — workload, gold standard, precision/recall metrics and the
//!   experiment drivers that regenerate every table and figure of the paper.
//! * [`explorer`] — schema browser and legacy-system reverse engineering (the
//!   war-story use cases of §5.3.2).
//! * [`ingest`] — streaming delta ingestion: row-level change feeds routed
//!   into per-shard side logs that queries merge on the fly, plus the
//!   compaction policy that folds grown logs back into rebuilt partitions.
//! * [`journal`] — the crash-safety layer: an append-only, checksummed feed
//!   journal with checkpoint truncation, replayed by
//!   [`QueryService::recover`](soda_service::QueryService::recover) into
//!   byte-identical answers after a crash.
//! * [`service`] — the serving layer: a thread-safe
//!   [`QueryService`](soda_service::QueryService) worker pool over a shared
//!   [`EngineSnapshot`](soda_core::EngineSnapshot), with an LRU
//!   interpretation cache keyed by canonicalized queries and live service
//!   metrics.
//! * [`trace`] — the observability kernel: a [`TraceSink`](soda_trace::TraceSink)
//!   threaded through every pipeline stage (span trees with per-shard probe
//!   sub-spans), fixed-memory log-bucketed latency histograms and a
//!   Prometheus text-exposition writer/validator backing
//!   [`QueryService::metrics_text`](soda_service::QueryService::metrics_text).
//!
//! ## Quickstart
//!
//! ```
//! use soda::prelude::*;
//!
//! // Build the paper's running example (Figures 1 and 2) with seeded data.
//! let warehouse = soda::warehouse::minibank::build(42);
//! let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());
//!
//! // "What is the address of Sara Guttinger?"
//! let results = engine.search("Sara Guttinger").unwrap();
//! assert!(!results.is_empty());
//! println!("{}", results[0].sql);
//! ```

pub use soda_baselines as baselines;
pub use soda_core as core;
pub use soda_eval as eval;
pub use soda_explorer as explorer;
pub use soda_ingest as ingest;
pub use soda_journal as journal;
pub use soda_metagraph as metagraph;
pub use soda_relation as relation;
pub use soda_service as service;
pub use soda_trace as trace;
pub use soda_warehouse as warehouse;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use soda_core::{
        EngineSnapshot, FeedbackStore, ResultPage, ShardStats, SnapshotHandle, SodaConfig,
        SodaEngine, SodaResult,
    };
    pub use soda_explorer::SchemaBrowser;
    pub use soda_ingest::{ChangeFeed, CompactionPolicy, Ingestor, RowEvent};
    pub use soda_metagraph::{MetaGraph, Pattern, PatternRegistry};
    pub use soda_relation::{Database, ResultSet, Value};
    pub use soda_service::{
        AlertState, BurnAlert, CompactionConfig, DurabilityConfig, FsyncPolicy, JobHandle,
        JobResult, QueryRequest, QueryResponse, QueryService, RecoveryReport, SampledTrace,
        SamplingConfig, ServiceConfig, ServiceMetrics, SloConfig, SlowQuery, TenantAdmin, TenantId,
        TenantMetrics, TracedQuery,
    };
    pub use soda_trace::{CollectingSink, NoopSink, OpEvent, QueryTrace, TraceSink};
    pub use soda_warehouse::Warehouse;
}
